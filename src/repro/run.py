"""Canonical entry point for running one (workload, configuration) pair.

Historically this lived in :mod:`repro.experiments.runner`; it moved here
because every layer — CLI, experiments, validation, benchmarks, the
:class:`repro.api.Session` facade — funnels through ``run_workload``,
which makes it core machinery rather than experiment plumbing. The old
import path still works via a deprecation shim.

The paper runs each application five times and reports averages
(Section 4.1); experiment helpers do the same over deterministic seeds —
both the machine's timing-jitter seed (run-to-run hardware variation)
and the PMU's sampling-jitter seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple, Union

from repro.core.profiler import CheetahConfig, CheetahProfiler, CheetahReport
from repro.heap.allocator import CheetahAllocator
from repro.obs import ObsConfig, Observability, current_default
from repro.pmu.sampler import PMU, PMUConfig
from repro.sim.engine import Engine, Observer, RunResult
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable
from repro.workloads.base import Workload

DEFAULT_SEEDS: Tuple[int, ...] = (11, 22, 33)


@dataclass
class RunOutcome:
    """Result of one workload run, optionally with a Cheetah report.

    When the run was observed (``obs`` passed to :func:`run_workload`, or
    an ambient default pushed via :func:`repro.obs.push_default`), the
    finalized :class:`~repro.obs.Observability` rides along and
    :attr:`metrics` exposes its registry snapshot.
    """

    result: RunResult
    report: Optional[CheetahReport] = None
    obs: Optional[Observability] = None

    @property
    def runtime(self) -> int:
        return self.result.runtime

    @property
    def metrics(self) -> Dict[str, Any]:
        """Metrics snapshot of the run (``{}`` when metrics were off)."""
        return self.obs.metrics_snapshot() if self.obs is not None else {}


def run_workload(workload: Workload, *,
                 machine_config: Optional[MachineConfig] = None,
                 jitter_seed: int = 0xC0FFEE,
                 pmu_config: Optional[PMUConfig] = None,
                 with_cheetah: bool = False,
                 cheetah_config: Optional[CheetahConfig] = None,
                 observer: Optional[Observer] = None,
                 check: bool = False,
                 obs: Optional[Union[ObsConfig, Observability]] = None,
                 ) -> RunOutcome:
    """Run ``workload`` once on a fresh machine.

    ``with_cheetah`` attaches the PMU and the Cheetah profiler;
    ``observer`` attaches a full-instrumentation tool (Predator baseline);
    ``check`` runs in sanitizer mode (every access shadowed against the
    reference MESI oracle — slow, raises
    :class:`~repro.errors.ValidationError` on divergence);
    ``obs`` attaches the observability layer — pass an
    :class:`~repro.obs.ObsConfig` (a fresh per-run
    :class:`~repro.obs.Observability` is built from it) or an unwired
    ``Observability`` instance. When ``None``, the ambient default pushed
    via :func:`repro.obs.push_default` applies, if any.
    """
    config = machine_config or MachineConfig()
    symbols = SymbolTable()
    workload.setup(symbols)
    machine = Machine(config, jitter_seed=jitter_seed, check=check)
    observability = None
    if obs is not None:
        observability = (obs if isinstance(obs, Observability)
                         else Observability(obs))
    else:
        default = current_default()
        if default is not None:
            observability = default.new_observability()
    pmu = None
    profiler = None
    if with_cheetah:
        pmu = PMU(pmu_config or PMUConfig())
    # Engine(obs=...) wires the observability before the profiler
    # attaches, so the detector picks up the promotion hook.
    engine = Engine(config=config, machine=machine, symbols=symbols,
                    pmu=pmu, observer=observer, obs=observability,
                    allocator=CheetahAllocator(line_size=config.cache_line_size))
    if with_cheetah:
        profiler = CheetahProfiler(cheetah_config)
        profiler.attach(engine)
    result = engine.run(workload.main)
    report = profiler.finalize(result) if profiler else None
    if observability is not None:
        observability.finalize(result, pmu=pmu, profiler=profiler)
    return RunOutcome(result=result, report=report, obs=observability)
