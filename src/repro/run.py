"""Canonical entry point for running one (workload, configuration) pair.

Historically this lived in :mod:`repro.experiments.runner`; it moved here
because every layer — CLI, experiments, validation, benchmarks, the
:class:`repro.api.Session` facade — funnels through ``run_workload``,
which makes it core machinery rather than experiment plumbing. The old
import path still works via a deprecation shim.

The paper runs each application five times and reports averages
(Section 4.1); experiment helpers do the same over deterministic seeds —
both the machine's timing-jitter seed (run-to-run hardware variation)
and the PMU's sampling-jitter seed.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.core.profiler import CheetahConfig, CheetahProfiler, CheetahReport
from repro.errors import SchemaError
from repro.heap.allocator import CheetahAllocator
from repro.obs import ObsConfig, Observability, current_default
from repro.pmu.sampler import PMU, PMUConfig
from repro.sim.engine import Engine, Observer, RunResult
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable
from repro.workloads.base import Workload

DEFAULT_SEEDS: Tuple[int, ...] = (11, 22, 33)

#: Version of the serialized :class:`RunOutcome` JSON schema (see
#: ``docs/api.md``). Bump whenever the dict shape produced by
#: :meth:`RunOutcome.to_dict` changes incompatibly; the result store
#: folds this number into its content hashes, so a bump naturally
#: invalidates every cached entry instead of mis-decoding it.
#:
#: v2 (the service PR) adds the top-level ``tenant`` and
#: ``streaming_findings`` fields; v1 payloads still rehydrate (tenant
#: ``None``, no findings).
SCHEMA_VERSION = 2

#: Schema versions :meth:`RunOutcome.from_dict` can still rehydrate.
READABLE_SCHEMA_VERSIONS = (1, 2)


@dataclass
class ThreadSummary:
    """Serializable per-thread statistics (the stable subset of
    :class:`~repro.runtime.thread.SimThread`)."""

    tid: int
    name: str
    core: int
    start_clock: int
    end_clock: Optional[int]
    instructions: int
    mem_accesses: int
    mem_cycles: int
    barrier_waits: int

    @property
    def runtime(self) -> int:
        end = self.end_clock if self.end_clock is not None else self.start_clock
        return end - self.start_clock

    @classmethod
    def from_thread(cls, thread: Any) -> "ThreadSummary":
        return cls(tid=thread.tid, name=thread.name, core=thread.core,
                   start_clock=thread.start_clock, end_clock=thread.end_clock,
                   instructions=thread.instructions,
                   mem_accesses=thread.mem_accesses,
                   mem_cycles=thread.mem_cycles,
                   barrier_waits=thread.barrier_waits)


@dataclass
class RunSummary:
    """The serializable view of a :class:`~repro.sim.engine.RunResult`.

    A live ``RunResult`` drags the whole simulation behind it (machine,
    allocator, symbol table, suspended generators) — none of which can
    round-trip through JSON. ``RunSummary`` keeps the stable, numeric
    surface that every downstream consumer (experiments, CLI output,
    benches) reads: runtimes, access totals, ground-truth invalidations
    and per-thread statistics. Cached outcomes served by
    :mod:`repro.service` carry one of these in :attr:`RunOutcome.result`.
    """

    runtime: int
    steps: int
    invalidations: int
    threads: Dict[int, ThreadSummary] = field(default_factory=dict)
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.threads.values())

    @property
    def total_accesses(self) -> int:
        return sum(t.mem_accesses for t in self.threads.values())

    def thread_runtime(self, tid: int) -> int:
        return self.threads[tid].runtime


def _jsonable(value: Any) -> bool:
    try:
        json.dumps(value)
        return True
    except (TypeError, ValueError):
        return False


@dataclass
class RunOutcome:
    """Result of one workload run, optionally with a Cheetah report.

    When the run was observed (``obs`` passed to :func:`run_workload`, or
    an ambient default pushed via :func:`repro.obs.push_default`), the
    finalized :class:`~repro.obs.Observability` rides along and
    :attr:`metrics` exposes its registry snapshot.

    ``result`` is a live :class:`~repro.sim.engine.RunResult` for freshly
    executed runs, or a :class:`RunSummary` when the outcome was
    rehydrated from the serialized form (:meth:`from_dict` — the format
    the :mod:`repro.service` result store persists).
    """

    result: Union[RunResult, RunSummary]
    report: Optional[CheetahReport] = None
    obs: Optional[Observability] = None
    #: Metrics snapshot carried by a deserialized outcome (live outcomes
    #: read the snapshot off ``obs`` instead).
    cached_metrics: Optional[Dict[str, Any]] = None
    #: True for outcomes freshly produced by the analytical modes
    #: (``mode="predict"``/``"sampled"``) — they carry a
    #: :class:`RunSummary` like cached outcomes do, but were computed,
    #: not rehydrated. Not serialized; rehydrated predictions read as
    #: cached (their ``predicted`` metadata survives).
    fresh_prediction: bool = False
    #: Live PMU / profiler of a freshly simulated cheetah run (for
    #: inspecting sampling state — adaptive period history, streaming
    #: findings). ``None`` on native, cached and predicted outcomes;
    #: never serialized.
    pmu: Optional[Any] = None
    profiler: Optional[Any] = None
    #: Tenant the run was executed for (schema v2). The daemon records
    #: tenancy at the job/sink level and leaves this ``None`` inside
    #: cached payloads, so one tenant's cache entries never carry
    #: another's identity; set it explicitly to stamp an outcome.
    tenant: Optional[str] = None
    #: Incremental findings carried by a deserialized outcome (live
    #: outcomes read them off the profiler's windowed detector instead).
    cached_streaming_findings: Optional[List[Dict[str, Any]]] = None

    @property
    def runtime(self) -> int:
        return self.result.runtime

    @property
    def invalidations(self) -> int:
        """Ground-truth invalidation total (live or rehydrated)."""
        result = self.result
        if isinstance(result, RunSummary):
            return result.invalidations
        return result.machine.directory.total_invalidations()

    @property
    def from_cache(self) -> bool:
        """True when this outcome was rehydrated from serialized form."""
        return (isinstance(self.result, RunSummary)
                and not self.fresh_prediction)

    @property
    def predicted(self) -> bool:
        """True when this outcome is an estimate from a non-default
        execution mode (fresh or rehydrated), not a full simulation."""
        return bool(self.result.metadata.get("predicted"))

    @property
    def metrics(self) -> Dict[str, Any]:
        """Metrics snapshot of the run (``{}`` when metrics were off)."""
        if self.obs is not None:
            return self.obs.metrics_snapshot()
        return dict(self.cached_metrics) if self.cached_metrics else {}

    @property
    def streaming_findings(self) -> List[Dict[str, Any]]:
        """Incremental windowed-detector findings, as JSON-ready dicts.

        Empty for native runs and for profiled runs using the offline
        detector. Live outcomes read the profiler's detector; rehydrated
        outcomes return the findings serialized with the payload, so a
        cached windowed run replays the same finding list the original
        simulation emitted.
        """
        if self.cached_streaming_findings is not None:
            return list(self.cached_streaming_findings)
        detector = getattr(self.profiler, "detector", None)
        findings = getattr(detector, "findings", None)
        if not findings:
            return []
        return [finding.to_dict() for finding in findings]

    # -- versioned serialization (see docs/api.md) ---------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready dict form, tagged with :data:`SCHEMA_VERSION`.

        The inverse of :meth:`from_dict`:
        ``RunOutcome.from_dict(o.to_dict()).to_dict() == o.to_dict()``
        for every outcome. Live simulation state (machine, allocator,
        symbols) is summarized, not serialized; non-JSON metadata values
        are dropped.
        """
        result = self.result
        threads: Dict[int, ThreadSummary] = {}
        if isinstance(result, RunSummary):
            threads = result.threads
            invalidations = result.invalidations
            metadata = result.metadata
        else:
            threads = {tid: ThreadSummary.from_thread(t)
                       for tid, t in result.threads.items()}
            invalidations = result.machine.directory.total_invalidations()
            metadata = result.metadata
        report_dict = None
        if self.report is not None:
            from repro.core.export import report_to_dict
            report_dict = report_to_dict(self.report)
        return {
            "schema_version": SCHEMA_VERSION,
            "tenant": self.tenant,
            "streaming_findings": self.streaming_findings,
            "result": {
                "runtime": result.runtime,
                "steps": result.steps,
                "invalidations": invalidations,
                "total_accesses": result.total_accesses,
                "total_instructions": result.total_instructions,
                "threads": {
                    str(tid): {
                        "name": t.name,
                        "core": t.core,
                        "start_clock": t.start_clock,
                        "end_clock": t.end_clock,
                        "instructions": t.instructions,
                        "mem_accesses": t.mem_accesses,
                        "mem_cycles": t.mem_cycles,
                        "barrier_waits": t.barrier_waits,
                    }
                    for tid, t in sorted(threads.items())
                },
                "metadata": {k: v for k, v in metadata.items()
                             if _jsonable(v)},
            },
            "report": report_dict,
            "metrics": self.metrics,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunOutcome":
        """Rehydrate an outcome from :meth:`to_dict` form.

        Raises :class:`~repro.errors.SchemaError` for payloads that are
        not mappings, carry no ``schema_version``, or declare a version
        this code does not understand.
        """
        if not isinstance(data, Mapping):
            raise SchemaError(
                f"RunOutcome payload must be a mapping, "
                f"got {type(data).__name__}")
        version = data.get("schema_version")
        if version is None:
            raise SchemaError("RunOutcome payload has no schema_version")
        if version not in READABLE_SCHEMA_VERSIONS:
            raise SchemaError(
                f"unsupported RunOutcome schema_version {version!r} "
                f"(this build reads versions "
                f"{', '.join(map(str, READABLE_SCHEMA_VERSIONS))}); "
                "re-run without the cache or clear it with "
                "'repro cache clear'")
        try:
            result_data = data["result"]
            threads = {
                int(tid): ThreadSummary(
                    tid=int(tid),
                    name=t["name"],
                    core=t["core"],
                    start_clock=t["start_clock"],
                    end_clock=t["end_clock"],
                    instructions=t["instructions"],
                    mem_accesses=t["mem_accesses"],
                    mem_cycles=t["mem_cycles"],
                    barrier_waits=t["barrier_waits"],
                )
                for tid, t in result_data["threads"].items()
            }
            summary = RunSummary(
                runtime=result_data["runtime"],
                steps=result_data["steps"],
                invalidations=result_data["invalidations"],
                threads=threads,
                metadata=dict(result_data.get("metadata", {})),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SchemaError(
                f"malformed RunOutcome v{version} payload: {exc!r}") from exc
        report = None
        if data.get("report") is not None:
            from repro.core.export import report_from_dict
            report = report_from_dict(data["report"])
        # v2 fields; a v1 payload simply has neither.
        tenant = data.get("tenant")
        if tenant is not None and not isinstance(tenant, str):
            raise SchemaError(
                f"malformed RunOutcome v{version} payload: tenant must be "
                f"a string or null, got {type(tenant).__name__}")
        findings = data.get("streaming_findings", [])
        if not isinstance(findings, list) or any(
                not isinstance(f, Mapping) for f in findings):
            raise SchemaError(
                f"malformed RunOutcome v{version} payload: "
                "streaming_findings must be a list of objects")
        return cls(result=summary, report=report, obs=None,
                   cached_metrics=dict(data.get("metrics") or {}) or None,
                   tenant=tenant,
                   cached_streaming_findings=[dict(f) for f in findings])


def run_workload(workload: Workload, *,
                 machine_config: Optional[MachineConfig] = None,
                 jitter_seed: int = 0xC0FFEE,
                 pmu_config: Optional[PMUConfig] = None,
                 with_cheetah: bool = False,
                 cheetah_config: Optional[CheetahConfig] = None,
                 observer: Optional[Observer] = None,
                 check: bool = False,
                 obs: Optional[Union[ObsConfig, Observability]] = None,
                 ) -> RunOutcome:
    """Run ``workload`` once on a fresh machine.

    ``with_cheetah`` attaches the PMU and the Cheetah profiler;
    ``observer`` attaches a full-instrumentation tool (Predator baseline);
    ``check`` runs in sanitizer mode (every access shadowed against the
    reference MESI oracle — slow, raises
    :class:`~repro.errors.ValidationError` on divergence);
    ``obs`` attaches the observability layer — pass an
    :class:`~repro.obs.ObsConfig` (a fresh per-run
    :class:`~repro.obs.Observability` is built from it) or an unwired
    ``Observability`` instance. When ``None``, the ambient default pushed
    via :func:`repro.obs.push_default` applies, if any.
    """
    config = machine_config or MachineConfig()
    if config.mode != "simulate":
        return _run_analytical(workload, config, jitter_seed, pmu_config,
                               with_cheetah, cheetah_config, observer,
                               check, obs)
    symbols = SymbolTable()
    workload.setup(symbols)
    machine = Machine(config, jitter_seed=jitter_seed, check=check)
    observability = None
    if obs is not None:
        observability = (obs if isinstance(obs, Observability)
                         else Observability(obs))
    else:
        default = current_default()
        if default is not None:
            observability = default.new_observability()
    pmu = None
    profiler = None
    if with_cheetah:
        pmu = PMU(pmu_config or PMUConfig())
    # Engine(obs=...) wires the observability before the profiler
    # attaches, so the detector picks up the promotion hook.
    engine = Engine(config=config, machine=machine, symbols=symbols,
                    pmu=pmu, observer=observer, obs=observability,
                    allocator=CheetahAllocator(line_size=config.cache_line_size))
    if with_cheetah:
        profiler = CheetahProfiler(cheetah_config)
        profiler.attach(engine)
    result = engine.run(workload.main)
    report = profiler.finalize(result) if profiler else None
    if observability is not None:
        observability.finalize(result, pmu=pmu, profiler=profiler)
    return RunOutcome(result=result, report=report, obs=observability,
                      pmu=pmu, profiler=profiler)


def _run_analytical(workload, config, jitter_seed, pmu_config,
                    with_cheetah, cheetah_config, observer, check,
                    obs) -> RunOutcome:
    """Route ``mode="predict"``/``"sampled"`` to :mod:`repro.predict`.

    Combinations that cannot mean anything are rejected here (the CLI
    layer rejects the flag spellings earlier, with flag names — see
    ``build_configs``): full-instrumentation observers need to see every
    access of the actual run, and the sanitizer needs a full simulation
    to shadow, which ``predict`` never performs.
    """
    from repro.errors import ConfigError
    from repro.predict import predict_outcome, sampled_outcome

    mode = config.mode
    if observer is not None:
        raise ConfigError(
            f"mode '{mode}' cannot attach a full-instrumentation "
            "observer: only a short prefix/burst is simulated, so the "
            "observer would see a sliver of the run; use mode='simulate'")
    if obs is not None:
        raise ConfigError(
            f"mode '{mode}' cannot attach observability explicitly: "
            "predicted runs have no simulation timeline to trace; use "
            "mode='simulate'")
    if mode == "predict":
        if check:
            raise ConfigError(
                "mode 'predict' cannot run the coherence sanitizer "
                "(check=True): prediction performs no full simulation "
                "to shadow; use mode='sampled' (bursts run sanitized) "
                "or mode='simulate'")
        return predict_outcome(
            workload, machine_config=config, jitter_seed=jitter_seed,
            pmu_config=pmu_config, with_cheetah=with_cheetah,
            cheetah_config=cheetah_config)
    return sampled_outcome(
        workload, machine_config=config, jitter_seed=jitter_seed,
        pmu_config=pmu_config, with_cheetah=with_cheetah,
        cheetah_config=cheetah_config, check=check)
