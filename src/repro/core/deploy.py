"""The paper's two-call deployment interface (Section 5).

    "they can connect to the Cheetah library by calling only two APIs:
    one API is to setup PMU-based registers, while the other handles
    every sampled memory access, with less than 5 lines of code change."

:func:`setup_sampling` is API #1 (programs the PMU and installs
Cheetah's handler); :func:`handle_sample` is API #2 (normally invoked by
the PMU automatically, exposed for hosts that deliver samples
themselves — e.g. replaying a recorded trace through Cheetah online).

The five-line integration::

    pmu = PMU(PMUConfig())
    engine = Engine(pmu=pmu)
    profiler = setup_sampling(engine)          # API 1
    result = engine.run(my_program)
    print(profiler.finalize(result).render())
"""

from __future__ import annotations

from typing import Optional

from repro.core.profiler import CheetahConfig, CheetahProfiler
from repro.pmu.sample import MemorySample
from repro.sim.engine import Engine


def setup_sampling(engine: Engine,
                   config: Optional[CheetahConfig] = None,
                   ) -> CheetahProfiler:
    """API 1: arm PMU-based sampling and attach Cheetah to it.

    The engine must have been constructed with a PMU; this installs
    Cheetah's sample handler on it and returns the profiler whose
    :meth:`~repro.core.profiler.CheetahProfiler.finalize` (or
    :meth:`~repro.core.profiler.CheetahProfiler.report_now`) produces
    reports.
    """
    profiler = CheetahProfiler(config)
    profiler.attach(engine)
    return profiler


def handle_sample(profiler: CheetahProfiler,
                  sample: MemorySample) -> None:
    """API 2: feed one sampled memory access into Cheetah.

    When :func:`setup_sampling` is used this is called automatically for
    every PMU sample; call it directly only when the host environment
    delivers samples itself.
    """
    profiler.handle_sample(sample)
