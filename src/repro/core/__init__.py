"""Cheetah — the paper's contribution.

- :mod:`repro.core.cacheline` — per-line state: sampled write counts, the
  two-entry access table (Section 2.3) and word-level shadow info
  (Section 2.4);
- :mod:`repro.core.detection` — the invalidation rule and the
  false-vs-true-sharing classifier;
- :mod:`repro.core.assessment` — the performance-impact prediction,
  equations (1)-(4) of Section 3;
- :mod:`repro.core.report` — report rendering in the paper's Figure 5
  format;
- :mod:`repro.core.profiler` — :class:`CheetahProfiler`, wiring PMU
  samples through detection and assessment into a report.
"""

from repro.core.advisor import PaddingAdvice, advise
from repro.core.assessment import Assessment, AssessmentConfig, assess_object
from repro.core.cacheline import DetailedLine, TwoEntryTable, WordInfo
from repro.core.detection import (
    DetectorConfig,
    FalseSharingDetector,
    ObjectProfile,
    SharingKind,
)
from repro.core.profiler import CheetahConfig, CheetahProfiler, CheetahReport
from repro.core.report import ObjectReport, render_object, render_report

__all__ = [
    "Assessment",
    "AssessmentConfig",
    "CheetahConfig",
    "CheetahProfiler",
    "CheetahReport",
    "DetailedLine",
    "DetectorConfig",
    "FalseSharingDetector",
    "ObjectProfile",
    "ObjectReport",
    "PaddingAdvice",
    "advise",
    "SharingKind",
    "TwoEntryTable",
    "WordInfo",
    "assess_object",
    "render_object",
    "render_report",
]
