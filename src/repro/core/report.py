"""Report rendering in the paper's format (Figure 5).

The paper's report for linear_regression reads::

    Detecting false sharing at the object: start 0x400004b8
    end 0x400044b8 (with size 4000).
    Accesses 1263 invalidations 27f writes 501 total
    latency 102988 cycles.
    Latency information:
    totalThreads 16
    totalThreadsAccesses 12e1
    totalThreadsCycles 106389
    totalPossibleImprovementRate 576.172748%
    (realRuntime 7738 predictedRuntime 1343).
    It is a heap object with the following callsite:
    linear_regression-pthread.c: 139

We reproduce the same fields (including the quirk that invalidations and
``totalThreadsAccesses`` are printed in hex) plus the word-level access
map that "helps programmers to decide how to pad a problematic data
structure".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.core.assessment import Assessment
from repro.core.detection import ObjectProfile, SharingKind


@dataclass
class ObjectReport:
    """One reported sharing instance: profile + assessment + verdict."""

    profile: ObjectProfile
    assessment: Assessment
    kind: SharingKind

    @property
    def is_false_sharing(self) -> bool:
        return self.kind is SharingKind.FALSE_SHARING

    @property
    def improvement(self) -> float:
        return self.assessment.improvement

    def __str__(self) -> str:
        return render_object(self)


def render_object(report: ObjectReport, include_words: bool = True) -> str:
    """Render one object's report in the Figure 5 format."""
    p = report.profile
    a = report.assessment
    lines: List[str] = []
    lines.append(
        f"Detecting {report.kind.value} at the object: start {p.start:#x}"
    )
    lines.append(f"end {p.end:#x} (with size {p.size}).")
    lines.append(
        f"Accesses {p.accesses} invalidations {p.invalidations:x} "
        f"writes {p.writes} total"
    )
    lines.append(f"latency {p.total_latency} cycles.")
    lines.append("Latency information:")
    lines.append(f"totalThreads {len(p.tids)}")
    total_accesses = sum(p.per_tid_accesses.values())
    total_cycles = sum(p.per_tid_cycles.values())
    lines.append(f"totalThreadsAccesses {total_accesses:x}")
    lines.append(f"totalThreadsCycles {total_cycles}")
    lines.append(
        f"totalPossibleImprovementRate {a.improvement_rate_percent:f}%"
    )
    lines.append(
        f"(realRuntime {a.real_runtime} "
        f"predictedRuntime {int(a.predicted_runtime)})."
    )
    if p.kind == "heap":
        lines.append("It is a heap object with the following callsite:")
        lines.append(p.label)
    elif p.kind == "global":
        lines.append(f"It is the global variable '{p.label}'.")
    else:
        lines.append(f"It is an unattributed region: {p.label}.")
    if include_words and p.word_summary:
        lines.append("Word-level accesses (offset: threads reads/writes):")
        for rel_word, info in sorted(p.word_summary.items()):
            marker = " [shared word]" if info["shared"] else ""
            tids = ",".join(str(t) for t in info["tids"])
            lines.append(
                f"  word {rel_word * 4:+5d}: threads [{tids}] "
                f"reads {info['reads']} writes {info['writes']}{marker}"
            )
    return "\n".join(lines)


def render_report(reports: List[ObjectReport], runtime: int,
                  fork_join_ok: bool = True) -> str:
    """Render the full end-of-run report."""
    header = [
        "=" * 64,
        "Cheetah false sharing report",
        f"application runtime: {runtime} cycles",
        f"fork-join model: {'verified' if fork_join_ok else 'NOT fork-join'}",
        f"significant instances: {len(reports)}",
        "=" * 64,
    ]
    if not reports:
        header.append("No significant false sharing detected.")
        return "\n".join(header)
    body = []
    for index, report in enumerate(reports, start=1):
        body.append(f"--- instance {index} ---")
        body.append(render_object(report))
    return "\n".join(header + body)
