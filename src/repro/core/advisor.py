"""Padding advisor: turn word-level reports into concrete fixes.

The paper argues that "word-based information also helps programmers to
decide how to pad a problematic data structure" (Section 2.4) but leaves
the deciding to the programmer. This module automates it: from an
object's word-level access map it infers the per-thread element layout
(start offset and extent per thread), estimates the element stride, and
recommends the smallest padded stride that puts every thread's element
on its own cache line.

For the paper's two bugs the advice reproduces the published fixes:
56-byte ``lreg_args`` -> pad to 64; streamcluster's 32-byte slots ->
pad to 64.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.report import ObjectReport


@dataclass(frozen=True)
class ThreadExtent:
    """Byte range of one thread's accesses within the object."""

    tid: int
    start: int  # byte offset of first accessed word
    end: int  # byte offset one past the last accessed byte

    @property
    def span(self) -> int:
        return self.end - self.start


@dataclass
class PaddingAdvice:
    """A concrete layout fix for a falsely-shared object."""

    object_label: str
    line_size: int
    inferred_stride: Optional[int]  # bytes between per-thread elements
    recommended_stride: int  # pad each element to this many bytes
    extents: List[ThreadExtent] = field(default_factory=list)
    already_line_aligned: bool = False

    @property
    def extra_bytes_per_element(self) -> int:
        if self.inferred_stride is None:
            return self.recommended_stride
        return self.recommended_stride - self.inferred_stride

    def render(self) -> str:
        lines = [f"Padding advice for {self.object_label}:"]
        if self.already_line_aligned:
            lines.append(
                f"  layout already uses {self.inferred_stride}-byte "
                "line-aligned elements; padding will not help")
            return "\n".join(lines)
        if self.inferred_stride is not None:
            lines.append(
                f"  inferred per-thread element stride: "
                f"{self.inferred_stride} bytes")
        lines.append(
            f"  recommended stride: {self.recommended_stride} bytes "
            f"(+{self.extra_bytes_per_element} padding per element, "
            f"one {self.line_size}-byte line multiple)")
        lines.append(
            f"  e.g. add 'char pad[{self.extra_bytes_per_element}];' at "
            "the end of the element struct, or align allocations with "
            f"aligned_alloc({self.line_size}, ...)")
        return "\n".join(lines)


def thread_extents(report: ObjectReport,
                   word_size: int = 4) -> List[ThreadExtent]:
    """Per-thread byte ranges from the report's word-level summary."""
    ranges: Dict[int, Tuple[int, int]] = {}
    for rel_word, info in report.profile.word_summary.items():
        byte = rel_word * word_size
        for tid in info["tids"]:
            lo, hi = ranges.get(tid, (byte, byte + word_size))
            ranges[tid] = (min(lo, byte), max(hi, byte + word_size))
    return [ThreadExtent(tid=tid, start=lo, end=hi)
            for tid, (lo, hi) in sorted(ranges.items(),
                                        key=lambda kv: kv[1][0])]


def infer_stride(extents: List[ThreadExtent]) -> Optional[int]:
    """Median gap between consecutive threads' element starts."""
    starts = sorted(e.start for e in extents)
    gaps = [b - a for a, b in zip(starts, starts[1:]) if b > a]
    if not gaps:
        return None
    return int(statistics.median(gaps))


def advise(report: ObjectReport, line_size: int = 64,
           word_size: int = 4) -> Optional[PaddingAdvice]:
    """Produce padding advice for a reported instance.

    Returns None when the report has no word-level data (nothing to
    infer from).
    """
    extents = thread_extents(report, word_size)
    if not extents:
        return None
    stride = infer_stride(extents)
    widest = max(e.span for e in extents)
    basis = max(stride or 0, widest, word_size)
    recommended = -(-basis // line_size) * line_size  # round up
    aligned = (stride is not None and stride % line_size == 0
               and all(e.start % line_size + e.span <= line_size
                       for e in extents))
    return PaddingAdvice(
        object_label=report.profile.label,
        line_size=line_size,
        inferred_stride=stride,
        recommended_stride=recommended,
        extents=extents,
        already_line_aligned=aligned,
    )
