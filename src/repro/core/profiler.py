"""The Cheetah profiler: PMU samples in, false-sharing report out.

Mirrors the runtime-library architecture of the paper's Figure 2: the
*data collection* module (the PMU handler installed here) filters samples
to heap and global addresses and feeds the *FS detection* module; at the
end of the execution the *FS assessment* module predicts the impact of
each instance and the *FS report* module keeps only the significant ones.

Typical use::

    profiler = CheetahProfiler()
    engine = Engine(pmu=PMU(PMUConfig()))
    profiler.attach(engine)
    result = engine.run(my_program)
    report = profiler.finalize(result)
    print(report.render())
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.assessment import (
    Assessment,
    AssessmentConfig,
    ThreadObservation,
    assess_object,
    serial_average,
)
from repro.config import ConfigBase
from repro.core.detection import DetectorConfig, FalseSharingDetector, SharingKind
from repro.core.report import ObjectReport, render_report
from repro.core.streaming import StreamingConfig, StreamingDetector
from repro.errors import ConfigError, ProfilerError
from repro.pmu.sample import MemorySample
from repro.sim.engine import Engine, RunResult


@dataclass(frozen=True)
class CheetahConfig(ConfigBase):
    """End-to-end profiler configuration.

    Attributes:
        detector: detection thresholds.
        assessment: assessment parameters.
        min_improvement: only instances whose predicted improvement is at
            least this factor are reported as significant (the paper rules
            out "trivial instances ... leading to little or no performance
            improvement").
        report_true_sharing: include true-sharing instances in the full
            report (they are never in the significant list).
        detector_mode: ``"offline"`` (the classic whole-run detector) or
            ``"windowed"`` (the :class:`StreamingDetector`, which emits
            incremental findings mid-run while producing the identical
            end-of-run report).
        streaming: windowed-detector policy, used only when
            ``detector_mode == "windowed"``.
    """

    detector: DetectorConfig = field(default_factory=DetectorConfig)
    assessment: AssessmentConfig = field(default_factory=AssessmentConfig)
    min_improvement: float = 1.01
    report_true_sharing: bool = False
    detector_mode: str = "offline"
    streaming: StreamingConfig = field(default_factory=StreamingConfig)

    def __post_init__(self) -> None:
        if self.detector_mode not in ("offline", "windowed"):
            raise ConfigError(
                f"detector_mode must be 'offline' or 'windowed', "
                f"got {self.detector_mode!r}")


@dataclass
class CheetahReport:
    """Full output of a profiled run."""

    significant: List[ObjectReport]
    all_instances: List[ObjectReport]
    runtime: int
    fork_join_ok: bool
    aver_nofs_cycles: float
    serial_samples: int
    total_samples: int

    def render(self) -> str:
        """Text report in the paper's Figure 5 format."""
        return render_report(self.significant, self.runtime,
                             self.fork_join_ok)

    def false_sharing_instances(self) -> List[ObjectReport]:
        return [r for r in self.all_instances if r.is_false_sharing]

    def best(self) -> Optional[ObjectReport]:
        """The most impactful significant instance, if any."""
        return self.significant[0] if self.significant else None


class CheetahProfiler:
    """Wires the PMU into detection and assessment.

    The profiler must be :meth:`attach`\\ ed to an engine *before* the run
    so it can install the sample handler and observe phase state; after
    ``engine.run`` returns, :meth:`finalize` produces the report.
    """

    def __init__(self, config: Optional[CheetahConfig] = None):
        self.config = config or CheetahConfig()
        self.detector: Optional[FalseSharingDetector] = None
        self._engine: Optional[Engine] = None
        # Per-thread sampled totals (Section 3.2: Accesses_t, Cycles_t).
        self._thread_accesses: Dict[int, int] = {}
        self._thread_cycles: Dict[int, int] = {}
        # Serial-phase latency statistics (Section 3.1). Latencies are
        # retained (bounded) so the estimator can be robust; see
        # AssessmentConfig.serial_estimator.
        self._serial_latencies: List[int] = []
        self._serial_cycles = 0
        self._total_samples = 0
        self._filtered_samples = 0

    # -- wiring ---------------------------------------------------------------

    def attach(self, engine: Engine) -> None:
        """Install this profiler's sample handler on the engine's PMU."""
        if engine.pmu is None:
            raise ProfilerError(
                "engine has no PMU; construct it with Engine(pmu=PMU(...))"
            )
        if self._engine is not None:
            raise ProfilerError("profiler is already attached")
        self._engine = engine
        if self.config.detector_mode == "windowed":
            self.detector = StreamingDetector(
                self.config.detector,
                streaming=self.config.streaming,
                line_size=engine.config.cache_line_size,
                word_size=engine.config.word_size,
            )
        else:
            self.detector = FalseSharingDetector(
                self.config.detector,
                line_size=engine.config.cache_line_size,
                word_size=engine.config.word_size,
            )
        self.detector.obs = getattr(engine, "obs", None)
        engine.pmu.install_handler(self.handle_sample)

    def handle_sample(self, sample: MemorySample) -> None:
        """The PMU "signal handler": filter, then feed detection.

        Cheetah "filters out memory accesses associated with heap or
        globals" from everything else (kernel, libraries, stack); here
        that means dropping samples outside the heap arena and the globals
        segment.
        """
        engine = self._engine
        assert engine is not None and self.detector is not None
        self._total_samples += 1
        addr = sample.addr
        if not (engine.allocator.contains(addr)
                or engine.symbols.contains(addr)):
            self._filtered_samples += 1
            return
        in_parallel = engine.phase_tracker.in_parallel_phase
        if not in_parallel:
            if len(self._serial_latencies) < self._SERIAL_CAP:
                self._serial_latencies.append(sample.latency)
            self._serial_cycles += sample.latency
        tid = sample.tid
        self._thread_accesses[tid] = self._thread_accesses.get(tid, 0) + 1
        self._thread_cycles[tid] = (
            self._thread_cycles.get(tid, 0) + sample.latency)
        self.detector.on_sample(sample, in_parallel)

    # -- reporting ---------------------------------------------------------------

    def finalize(self, result: RunResult) -> CheetahReport:
        """Assess every detected instance and build the end-of-run report."""
        if self._engine is None or self.detector is None:
            raise ProfilerError("profiler was never attached to an engine")
        if isinstance(self.detector, StreamingDetector):
            # Final sweep: emit any window that crossed its thresholds
            # in the tail of the run after the last in-band flush.
            self.detector.flush(result.runtime, force=True)
        return self._build_report(result.threads, result.phases,
                                  result.runtime)

    def report_now(self, now: Optional[int] = None) -> CheetahReport:
        """Build a report from the state observed so far, mid-run.

        The paper's Cheetah reports "either at the end of an execution,
        or when interrupted by the user"; this is the interruption path.
        Typically invoked from an engine checkpoint::

            engine.add_checkpoint(500_000,
                                  lambda eng, t: print(
                                      profiler.report_now(t).render()))
        """
        if self._engine is None or self.detector is None:
            raise ProfilerError("profiler was never attached to an engine")
        engine = self._engine
        if now is None:
            now = max((t.clock for t in engine.threads.values()), default=0)
        phases = engine.phase_tracker.snapshot(now)
        return self._build_report(engine.threads, phases, now,
                                  clock_floor=now)

    def _build_report(self, threads, phases, runtime: int,
                      clock_floor: Optional[int] = None) -> CheetahReport:
        engine = self._engine
        observations = {}
        for tid, thread in threads.items():
            if thread.end_clock is not None:
                rt = thread.runtime
            else:
                # Live thread at interruption time: runtime so far.
                end = clock_floor if clock_floor is not None else thread.clock
                rt = max(0, min(end, thread.clock) - thread.start_clock)
            overhead = 0
            if engine.pmu is not None:
                overhead = engine.pmu.overhead_by_tid.get(tid, 0)
            observations[tid] = ThreadObservation(
                tid=tid,
                runtime=rt,
                accesses=self._thread_accesses.get(tid, 0),
                cycles=self._thread_cycles.get(tid, 0),
                barrier_waits=getattr(thread, "barrier_waits", 0),
                profiler_overhead=overhead,
            )
        aver_nofs = serial_average(self._serial_latencies,
                                   self.config.assessment)
        sampling_period = None
        if engine.pmu is not None:
            sampling_period = self._effective_period(engine.pmu, threads)

        profiles = self.detector.build_objects(engine.allocator,
                                               engine.symbols)
        all_instances: List[ObjectReport] = []
        for profile in profiles:
            kind = profile.classify(self.config.detector.true_sharing_fraction)
            if kind is SharingKind.NO_SHARING:
                continue
            assessment = assess_object(profile, observations, phases,
                                       aver_nofs, self.config.assessment,
                                       sampling_period=sampling_period)
            all_instances.append(ObjectReport(profile=profile,
                                              assessment=assessment,
                                              kind=kind))

        significant = [
            r for r in all_instances
            if r.is_false_sharing
            and r.assessment.improvement >= self.config.min_improvement
        ]
        significant.sort(key=lambda r: r.assessment.improvement, reverse=True)
        if not self.config.report_true_sharing:
            visible = [r for r in all_instances if r.is_false_sharing]
        else:
            visible = list(all_instances)
        visible.sort(key=lambda r: r.assessment.improvement, reverse=True)

        return CheetahReport(
            significant=significant,
            all_instances=visible,
            runtime=runtime,
            fork_join_ok=phases.fork_join_ok,
            aver_nofs_cycles=aver_nofs,
            serial_samples=len(self._serial_latencies),
            total_samples=self._total_samples,
        )

    @staticmethod
    def _effective_period(pmu, threads) -> float:
        """Scale factor from sampled volumes to real volumes.

        A fixed-period run uses the configured period (matching the
        paper's assessment, which multiplies sampled counts by the
        period). Once the adaptive controller has retuned the live
        period or the rotation schedule has discarded deliveries, the
        configured value no longer describes the run; the observed rate
        does: fires land once per ``total_instructions /
        samples_fired`` instructions, and of the fires on memory
        accesses only ``memory_samples`` out of ``memory_samples +
        rotation_skipped`` were delivered.
        """
        if not (getattr(pmu, "period_changes", 0)
                or getattr(pmu, "rotation_skipped", 0)):
            return float(pmu.config.period)
        total_instructions = sum(
            getattr(t, "instructions", 0) for t in threads.values())
        if not (total_instructions and pmu.samples_fired
                and pmu.memory_samples):
            return float(pmu.config.period)
        memory_fires = pmu.memory_samples + pmu.rotation_skipped
        return (total_instructions / pmu.samples_fired
                * memory_fires / pmu.memory_samples)

    # -- introspection helpers (used by tests) ------------------------------------

    _SERIAL_CAP = 100_000

    @property
    def serial_samples(self) -> int:
        return len(self._serial_latencies)

    @property
    def total_samples(self) -> int:
        return self._total_samples

    @property
    def filtered_samples(self) -> int:
        return self._filtered_samples
