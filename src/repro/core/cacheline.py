"""Per-cache-line detection state (paper Sections 2.3 and 2.4).

Zhao et al.'s ownership approach needs one bit per thread per line, which
"cannot easily scale to more than 32 threads because of excessive memory
consumption". Cheetah's replacement is the **two-entry table**: each line
keeps at most two (thread id, access type) entries, and each thread
occupies at most one entry. That bounded structure is enough to decide,
for every sampled write, whether it invalidates some other core's copy.

On top of that, *susceptible* lines (more than two sampled writes) get
word-granularity shadow info: per 4-byte word, per thread, the number of
sampled reads/writes and their total latency. Words touched by more than
one thread indicate true sharing; disjoint per-thread word sets indicate
false sharing; the latency totals feed the assessment.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


class TwoEntryTable:
    """The per-line two-entry access table of Section 2.3.

    Entries are ``(tid, is_write)`` pairs; at most two, from two distinct
    threads. The public methods implement the paper's rules verbatim:

    Read access:
        recorded only when the table is not full and no existing entry
        comes from the same thread; otherwise ignored.
    Write access:
        - table full -> invalidation (the two entries are from two
          distinct threads, so at least one differs from the writer);
        - one entry, same thread -> ignored (nothing to update);
        - one entry, different thread -> invalidation;
        - empty table -> recorded without an invalidation (there is no
          other copy to invalidate; this happens only for the first
          sampled access to a line, before the table becomes non-empty).

    On invalidation the table is flushed and the write recorded, so the
    table is never empty afterwards.
    """

    __slots__ = ("entries",)

    def __init__(self) -> None:
        self.entries: List[Tuple[int, bool]] = []

    def record_read(self, tid: int) -> None:
        entries = self.entries
        if len(entries) >= 2:
            return
        for entry_tid, _ in entries:
            if entry_tid == tid:
                return
        entries.append((tid, False))

    def record_write(self, tid: int) -> bool:
        """Apply a write; returns True when it incurs an invalidation."""
        entries = self.entries
        if len(entries) == 1 and entries[0][0] == tid:
            return False
        if not entries:
            entries.append((tid, True))
            return False
        # Full table, or a single entry from a different thread.
        self.entries = [(tid, True)]
        return True

    @property
    def tids(self) -> List[int]:
        return [tid for tid, _ in self.entries]

    def __len__(self) -> int:
        return len(self.entries)


@dataclass
class WordInfo:
    """Sampled access counts for one 4-byte word, per thread."""

    reads: Dict[int, int] = field(default_factory=dict)
    writes: Dict[int, int] = field(default_factory=dict)
    cycles: Dict[int, int] = field(default_factory=dict)

    def record(self, tid: int, is_write: bool, latency: int) -> None:
        counter = self.writes if is_write else self.reads
        counter[tid] = counter.get(tid, 0) + 1
        self.cycles[tid] = self.cycles.get(tid, 0) + latency

    @property
    def tids(self) -> Set[int]:
        return set(self.reads) | set(self.writes)

    @property
    def is_shared(self) -> bool:
        """True when more than one thread accessed this word."""
        return len(self.tids) > 1

    @property
    def total_accesses(self) -> int:
        return sum(self.reads.values()) + sum(self.writes.values())

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles.values())


class DetailedLine:
    """Full shadow state for a susceptible cache line (>2 sampled writes)."""

    __slots__ = ("table", "invalidations", "accesses", "writes",
                 "total_latency", "words", "per_tid_accesses",
                 "per_tid_cycles")

    def __init__(self) -> None:
        self.table = TwoEntryTable()
        self.invalidations = 0
        self.accesses = 0
        self.writes = 0
        self.total_latency = 0
        self.words: Dict[int, WordInfo] = {}
        self.per_tid_accesses: Dict[int, int] = {}
        self.per_tid_cycles: Dict[int, int] = {}

    def apply_table(self, tid: int, is_write: bool) -> bool:
        """Run the two-entry-table rule; returns True on invalidation."""
        if is_write:
            if self.table.record_write(tid):
                self.invalidations += 1
                return True
            return False
        self.table.record_read(tid)
        return False

    def record_detail(self, word_offset: int, tid: int, is_write: bool,
                      latency: int) -> None:
        """Record word-level detail (only called inside parallel phases)."""
        self.accesses += 1
        if is_write:
            self.writes += 1
        self.total_latency += latency
        info = self.words.get(word_offset)
        if info is None:
            info = WordInfo()
            self.words[word_offset] = info
        info.record(tid, is_write, latency)
        self.per_tid_accesses[tid] = self.per_tid_accesses.get(tid, 0) + 1
        self.per_tid_cycles[tid] = self.per_tid_cycles.get(tid, 0) + latency

    @property
    def tids(self) -> Set[int]:
        tids: Set[int] = set()
        for info in self.words.values():
            tids |= info.tids
        return tids

    def shared_word_accesses(self) -> int:
        """Accesses landing on words touched by more than one thread."""
        return sum(w.total_accesses for w in self.words.values() if w.is_shared)

    def word_summary(self) -> Dict[int, Dict[str, object]]:
        """Per-word digest used by reports and tests."""
        summary = {}
        for offset, info in sorted(self.words.items()):
            summary[offset] = {
                "tids": sorted(info.tids),
                "reads": sum(info.reads.values()),
                "writes": sum(info.writes.values()),
                "shared": info.is_shared,
            }
        return summary
