"""Performance-impact assessment (paper Section 3, equations (1)-(4)).

Cheetah's headline contribution: predict the speedup of fixing a false
sharing instance *without fixing it*, from sampled latencies alone.

The prediction proceeds in the paper's three steps:

1. **Object level** (Section 3.1, EQ 1): the cycles the object's accesses
   *would* cost without false sharing are
   ``PredCycles_O = AverCycles_nofs * Accesses_O``, where
   ``AverCycles_nofs`` is approximated by the average sampled latency in
   serial phases (no false sharing can occur there), or a configured
   default when no serial samples exist.
2. **Thread level** (Section 3.2, EQ 2-3): each related thread's sampled
   access cycles are corrected by swapping the object's observed cycles
   for the predicted ones, and its runtime is scaled proportionally
   (the model assumes execution time is proportional to access cycles).
3. **Application level** (Section 3.3, EQ 4): under the fork-join model,
   each parallel phase is as long as its slowest thread; the predicted
   application runtime replaces each phase's slowest measured thread
   runtime with the slowest *predicted* runtime, serial phases unchanged.
   ``PerfImprove = RT_App / PredRT_App``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.detection import ObjectProfile
from repro.config import ConfigBase
from repro.errors import ConfigError
from repro.runtime.phases import PhaseTracker


@dataclass(frozen=True)
class AssessmentConfig(ConfigBase):
    """Assessment parameters.

    Attributes:
        default_nofs_cycles: fallback for ``AverCycles_nofs`` when the
            profiler saw too few serial-phase samples (the paper's
            "default value learned from experience").
        min_serial_samples: minimum serial samples before the measured
            serial statistic is trusted over the default.
        serial_estimator: statistic over serial-phase sample latencies
            used for ``AverCycles_nofs``: ``"median"`` (default),
            ``"mean"`` or ``"trimmed"`` (mean of the lower 90%). The paper
            uses the plain average; at its scale (millions of serial
            samples) stray coherence-latency samples are statistically
            invisible, while at simulation scale a single one can skew
            the mean several-fold, so the robust default compensates for
            the smaller sample population without changing the estimator's
            meaning.
    """

    default_nofs_cycles: float = 3.5
    min_serial_samples: int = 8
    serial_estimator: str = "median"
    #: Opt-in implementation of the paper's stated future work: model
    #: synchronisation waiting time and non-memory compute explicitly
    #: instead of assuming runtime is proportional to access cycles.
    #: Per-thread memory time is estimated as sampled cycles times the
    #: sampling period (an unbiased estimator: each instruction is
    #: sampled with probability 1/period); compute time is the runtime
    #: remainder after memory and barrier waits, and is preserved by the
    #: prediction rather than scaled away.
    model_sync_and_compute: bool = False

    def __post_init__(self) -> None:
        if self.default_nofs_cycles <= 0:
            raise ConfigError("default_nofs_cycles must be positive")
        if self.min_serial_samples < 1:
            raise ConfigError("min_serial_samples must be >= 1")
        if self.serial_estimator not in ("median", "mean", "trimmed"):
            raise ConfigError(
                f"unknown serial_estimator {self.serial_estimator!r}")


@dataclass
class ThreadObservation:
    """Per-thread runtime information Cheetah collects (Section 3.2)."""

    tid: int
    runtime: int  # RT_t, from RDTSC-analogue thread clocks
    accesses: int  # Accesses_t, sampled
    cycles: int  # Cycles_t, sampled access latency sum
    barrier_waits: int = 0  # cycles spent waiting at barriers
    profiler_overhead: int = 0  # cycles the profiler charged this thread


@dataclass
class Assessment:
    """Result of assessing one falsely-shared object."""

    improvement: float  # PerfImprove = RT_App / PredRT_App
    real_runtime: int  # RT_App (from measured phase lengths)
    predicted_runtime: float  # PredRT_App
    aver_nofs_cycles: float  # the AverCycles_nofs used
    pred_rt_per_thread: Dict[int, float] = field(default_factory=dict)
    fork_join_ok: bool = True

    @property
    def improvement_rate_percent(self) -> float:
        """The paper's ``totalPossibleImprovementRate`` (e.g. 576.17%)."""
        return self.improvement * 100.0


def serial_average(serial_latencies: List[int],
                   config: AssessmentConfig) -> float:
    """``AverCycles_nofs``: serial-phase latency statistic or the default."""
    if len(serial_latencies) < config.min_serial_samples:
        return config.default_nofs_cycles
    if config.serial_estimator == "median":
        ordered = sorted(serial_latencies)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return float(ordered[mid])
        return (ordered[mid - 1] + ordered[mid]) / 2.0
    if config.serial_estimator == "trimmed":
        ordered = sorted(serial_latencies)
        keep = max(1, int(len(ordered) * 0.9))
        kept = ordered[:keep]
        return sum(kept) / len(kept)
    return sum(serial_latencies) / len(serial_latencies)


def assess_object(profile: ObjectProfile,
                  threads: Dict[int, ThreadObservation],
                  phases: PhaseTracker,
                  aver_nofs: float,
                  config: Optional[AssessmentConfig] = None,
                  sampling_period: Optional[float] = None) -> Assessment:
    """Predict the speedup of fixing false sharing in ``profile``.

    Args:
        profile: the object's sharing profile (per-thread sampled accesses
            and cycles on the object).
        threads: per-thread observations for every thread that ran.
        phases: the fork-join phase timeline of the execution.
        aver_nofs: ``AverCycles_nofs`` (see :func:`serial_average`).
        sampling_period: mean instructions per PMU sample; required by
            the ``model_sync_and_compute`` extension (total memory time
            is estimated as sampled cycles x period).
    """
    config = config or AssessmentConfig()
    extended = (config.model_sync_and_compute
                and sampling_period is not None and sampling_period > 0)

    # Step 2 (EQ 2 and 3): predicted runtime per related thread.
    pred_rt: Dict[int, float] = {}
    for tid, obs in threads.items():
        cycles_o = profile.per_tid_cycles.get(tid, 0)
        accesses_o = profile.per_tid_accesses.get(tid, 0)
        if obs.cycles <= 0 or accesses_o == 0:
            pred_rt[tid] = float(obs.runtime)
            continue
        pred_cycles_o = aver_nofs * accesses_o  # EQ (1), per thread
        pred_cycles_t = obs.cycles - cycles_o + pred_cycles_o  # EQ (2)
        pred_cycles_t = max(pred_cycles_t, 1.0)
        if extended:
            # Future-work model: split the thread's runtime into barrier
            # waiting, memory time (estimated as sampled cycles x
            # period) and compute. Only memory time shrinks with the
            # fix; compute is preserved; waiting is *excluded* — waits
            # are a consequence of other threads' busy time, and the
            # phase-level maximum over predicted busy times rebuilds the
            # post-fix critical path.
            mem_time = obs.cycles * sampling_period
            waits = min(obs.barrier_waits, obs.runtime)
            compute = max(0.0, obs.runtime - waits - mem_time
                          - obs.profiler_overhead)
            pred_mem = pred_cycles_t * sampling_period
            pred_rt[tid] = compute + pred_mem
        else:
            pred_rt[tid] = pred_cycles_t / obs.cycles * obs.runtime  # EQ 3

    # Step 3 (EQ 4): recompute phase lengths; a phase is as long as its
    # slowest thread.
    real_total = 0
    predicted_total = 0.0
    for phase in phases.phases:
        if phase.end is None:
            continue
        if not phase.is_parallel:
            real_total += phase.length
            predicted_total += phase.length
            continue
        members = [tid for tid in phase.threads if tid in threads]
        if not members:
            real_total += phase.length
            predicted_total += phase.length
            continue
        real_len = max(threads[tid].runtime for tid in members)
        pred_len = max(pred_rt[tid] for tid in members)
        real_total += real_len
        predicted_total += pred_len

    if predicted_total <= 0 or real_total <= 0:
        improvement = 1.0
    else:
        improvement = real_total / predicted_total
    return Assessment(
        improvement=improvement,
        real_runtime=real_total,
        predicted_runtime=predicted_total,
        aver_nofs_cycles=aver_nofs,
        pred_rt_per_thread=pred_rt,
        fork_join_ok=phases.fork_join_ok,
    )
