"""False-sharing detection over sampled accesses (paper Section 2).

The detector consumes PMU samples and maintains, per cache line, the
sampled write count, the two-entry invalidation table and — for
susceptible lines, inside parallel phases only — word-level shadow
information. At report time it groups susceptible lines into *objects*
(heap allocations via the allocator's metadata, globals via the symbol
table) and classifies each object as false or true sharing by whether
multiple threads touch the *same* words (true sharing) or *disjoint*
words of shared lines (false sharing).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.config import ConfigBase
from repro.core.cacheline import DetailedLine
from repro.errors import ConfigError
from repro.heap.allocator import AllocationInfo
from repro.pmu.sample import MemorySample
from repro.symbols.table import GlobalSymbol


class SharingKind(enum.Enum):
    FALSE_SHARING = "false sharing"
    TRUE_SHARING = "true sharing"
    NO_SHARING = "no sharing"


@dataclass(frozen=True)
class DetectorConfig(ConfigBase):
    """Detection thresholds.

    Attributes:
        detail_threshold_writes: a line becomes *susceptible* (gets
            detailed tracking) once its sampled write count strictly
            exceeds this — the paper tracks detail for lines "with more
            than two writes", so with the default of 2 the third sampled
            write promotes the line.
        min_invalidations: sampled invalidations an object needs before
            it is considered at all (``>=`` — an object with exactly
            this many is reported).
        true_sharing_fraction: an object whose shared-word accesses
            reach this fraction of its total accesses (``>=``) is
            classified as true sharing rather than false sharing — word
            overlap at exactly the threshold counts as "threads access
            the same words". The boundary semantics of all three
            thresholds are pinned by ``tests/test_detection_edges.py``.
    """

    detail_threshold_writes: int = 2
    min_invalidations: int = 4
    true_sharing_fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.detail_threshold_writes < 0:
            raise ConfigError("detail_threshold_writes must be >= 0")
        if self.min_invalidations < 1:
            raise ConfigError("min_invalidations must be >= 1")
        if not 0.0 < self.true_sharing_fraction <= 1.0:
            raise ConfigError("true_sharing_fraction must be in (0, 1]")


@dataclass
class ObjectProfile:
    """Aggregated sharing profile of one object (heap or global).

    ``key`` identifies the object: ``("heap", allocation serial)`` or
    ``("global", name)`` or ``("region", line)`` for accesses outside both
    (reported so nothing is silently dropped).
    """

    key: Tuple[str, object]
    kind: str  # "heap" | "global" | "region"
    start: int
    end: int
    size: int
    label: str  # callsite for heap objects, name for globals
    lines: Set[int] = field(default_factory=set)
    accesses: int = 0
    writes: int = 0
    invalidations: int = 0
    total_latency: int = 0
    shared_word_accesses: int = 0
    per_tid_accesses: Dict[int, int] = field(default_factory=dict)
    per_tid_cycles: Dict[int, int] = field(default_factory=dict)
    word_summary: Dict[int, Dict[str, object]] = field(default_factory=dict)

    @property
    def tids(self) -> Set[int]:
        return set(self.per_tid_accesses)

    def classify(self, true_sharing_fraction: float) -> SharingKind:
        """False vs true sharing, per the word-granularity rule.

        True sharing when the shared-word fraction is **at or above**
        ``true_sharing_fraction``; strictly below is false sharing.
        """
        if len(self.tids) < 2:
            return SharingKind.NO_SHARING
        if not self.accesses:
            return SharingKind.NO_SHARING
        shared_fraction = self.shared_word_accesses / self.accesses
        if shared_fraction >= true_sharing_fraction:
            return SharingKind.TRUE_SHARING
        return SharingKind.FALSE_SHARING


class FalseSharingDetector:
    """Maintains per-line state and produces object profiles."""

    def __init__(self, config: Optional[DetectorConfig] = None,
                 line_size: int = 64, word_size: int = 4):
        self.config = config or DetectorConfig()
        if line_size <= 0 or line_size & (line_size - 1):
            raise ConfigError(
                f"line_size must be a power of two, got {line_size}")
        if word_size <= 0 or word_size & (word_size - 1):
            raise ConfigError(
                f"word_size must be a power of two, got {word_size}")
        if word_size > line_size:
            raise ConfigError(
                f"word_size ({word_size}) cannot exceed line_size "
                f"({line_size})")
        self.line_size = line_size
        self.word_size = word_size
        self._line_shift = line_size.bit_length() - 1
        self._line_writes: Dict[int, int] = {}
        self._detailed: Dict[int, DetailedLine] = {}
        # Samples that arrived before a line crossed the detail threshold,
        # replayed into the detailed record once it exists. At the paper's
        # scale the first two writes are noise; at simulation scale they
        # are a measurable fraction of all samples, and dropping them
        # would leave false-sharing latency mis-attributed to the
        # "unrelated" remainder of each thread's cycles.
        self._pending: Dict[int, List[Tuple[int, bool, int, int, bool]]] = {}
        # Last sample timestamp per pending line, for expiry/eviction.
        self._pending_seen: Dict[int, int] = {}
        self.samples_seen = 0
        self.samples_recorded = 0
        # Buffered samples discarded without ever reaching a detailed
        # record: per-line cap overflow, idle-line expiry and
        # oldest-line eviction all count here (surfaced in RunOutcome
        # metrics as detector_samples_total{stage="dropped"}).
        self.samples_dropped = 0
        # Pending lines discarded wholesale by expiry or eviction.
        self.pending_evicted = 0
        # Observability hook (set by CheetahProfiler.attach when the
        # engine is wired): notified when a line is promoted to detailed
        # tracking.
        self.obs = None

    # -- online path ---------------------------------------------------------

    _PENDING_CAP = 24
    #: Hard bound on the number of lines buffering pre-threshold samples.
    #: A sparse address space with millions of cold lines previously grew
    #: ``_pending`` without limit; once this many lines are buffered the
    #: oldest-seen quarter is evicted to make room.
    _PENDING_LINES_CAP = 4096
    #: A pending line idle for this many cycles is expired at the next
    #: eviction pass — a line that has not produced a sample for this
    #: long will not plausibly cross the detail threshold soon, and its
    #: first few samples matter less and less to latency attribution.
    _PENDING_WINDOW = 2_000_000

    def on_sample(self, sample: MemorySample, in_parallel_phase: bool) -> None:
        """Feed one PMU sample into the per-line state machine."""
        self.samples_seen += 1
        line = sample.addr >> self._line_shift
        word_offset = (sample.addr - (line << self._line_shift)) // self.word_size
        if sample.is_write:
            count = self._line_writes.get(line, 0) + 1
            self._line_writes[line] = count
            if (count > self.config.detail_threshold_writes
                    and line not in self._detailed):
                detail = DetailedLine()
                self._detailed[line] = detail
                if self.obs is not None:
                    self.obs.on_detector_promotion(line, count, sample)
                self._pending_seen.pop(line, None)
                for entry in self._pending.pop(line, ()):
                    self._apply(detail, *entry)
        detail = self._detailed.get(line)
        if detail is None:
            pending = self._pending.get(line)
            if pending is None:
                if len(self._pending) >= self._PENDING_LINES_CAP:
                    self._evict_pending(sample.timestamp)
                pending = self._pending[line] = []
            self._pending_seen[line] = sample.timestamp
            if len(pending) < self._PENDING_CAP:
                pending.append((sample.tid, sample.is_write, word_offset,
                                sample.latency, in_parallel_phase))
            else:
                self.samples_dropped += 1
            return
        self._apply(detail, sample.tid, sample.is_write, word_offset,
                    sample.latency, in_parallel_phase)

    def _evict_pending(self, now: int) -> None:
        """Bound ``_pending``: expire idle lines, then evict the oldest.

        Called when a new cold line would push the buffered-line count
        past ``_PENDING_LINES_CAP``. First drops every line that has been
        idle longer than ``_PENDING_WINDOW``; if that frees nothing, the
        oldest-seen quarter goes, so the amortised cost per insertion
        stays logarithmic and the table size stays hard-bounded.
        """
        horizon = now - self._PENDING_WINDOW
        stale = [line for line, seen in self._pending_seen.items()
                 if seen <= horizon]
        if len(self._pending) - len(stale) >= self._PENDING_LINES_CAP:
            by_age = sorted(self._pending_seen, key=self._pending_seen.get)
            need = max(1, self._PENDING_LINES_CAP // 4)
            stale = by_age[:need]
        for line in stale:
            self.samples_dropped += len(self._pending.pop(line, ()))
            self._pending_seen.pop(line, None)
            self.pending_evicted += 1

    def _apply(self, detail: DetailedLine, tid: int, is_write: bool,
               word_offset: int, latency: int, in_parallel: bool) -> None:
        detail.apply_table(tid, is_write)
        if not in_parallel:
            # Section 2.4: detailed accesses are recorded only inside
            # parallel phases, so initialisation by the main thread is not
            # misreported as sharing.
            return
        detail.record_detail(word_offset, tid, is_write, latency)
        self.samples_recorded += 1

    # -- report-time aggregation ------------------------------------------------

    def susceptible_lines(self) -> Dict[int, DetailedLine]:
        """Detailed lines with at least ``min_invalidations`` sampled
        invalidations."""
        minimum = self.config.min_invalidations
        return {line: d for line, d in self._detailed.items()
                if d.invalidations >= minimum}

    def line_writes(self, line: int) -> int:
        return self._line_writes.get(line, 0)

    def detailed_line(self, line: int) -> Optional[DetailedLine]:
        return self._detailed.get(line)

    def build_objects(self, allocator, symbols) -> List[ObjectProfile]:
        """Group detailed lines into object profiles.

        Two-pass scheme matching the paper's reporting: *susceptible*
        lines (invalidations at or above the threshold) select which
        objects are reported, but each selected object's statistics —
        accesses, cycles, per-thread breakdown — aggregate over **all** of
        its tracked lines, because the assessment's ``Cycles_O`` /
        ``Accesses_O`` are "on a specific object O" (Section 3.1), not on
        the hot line alone. Figure 5 likewise reports the whole 4000-byte
        object, not one line.

        Word-level records are attributed to the heap allocation or global
        symbol containing the word's address; a line spanning two objects
        contributes to both (each word goes to its own object).
        """
        minimum = self.config.min_invalidations
        profiles: Dict[Tuple[str, object], ObjectProfile] = {}
        selected: set = set()
        for line, detail in self._detailed.items():
            line_base = line << self._line_shift
            # Attribute the line's invalidations to the object owning the
            # plurality of its accesses.
            touched: Dict[Tuple[str, object], int] = {}
            for word_offset, info in detail.words.items():
                addr = line_base + word_offset * self.word_size
                profile = self._profile_for(addr, allocator, symbols,
                                            profiles, line)
                if profile is None:
                    continue
                profile.lines.add(line)
                accesses = info.total_accesses
                profile.accesses += accesses
                profile.writes += sum(info.writes.values())
                profile.total_latency += info.total_cycles
                if info.is_shared:
                    profile.shared_word_accesses += accesses
                for tid in info.tids:
                    reads = info.reads.get(tid, 0)
                    writes = info.writes.get(tid, 0)
                    profile.per_tid_accesses[tid] = (
                        profile.per_tid_accesses.get(tid, 0) + reads + writes)
                    profile.per_tid_cycles[tid] = (
                        profile.per_tid_cycles.get(tid, 0)
                        + info.cycles.get(tid, 0))
                rel_word = (addr - profile.start) // self.word_size
                profile.word_summary[rel_word] = {
                    "tids": sorted(info.tids),
                    "reads": sum(info.reads.values()),
                    "writes": sum(info.writes.values()),
                    "shared": info.is_shared,
                }
                touched[profile.key] = touched.get(profile.key, 0) + accesses
            if touched:
                # Explicit tie-break on (accesses, kind, identifier):
                # ``max(touched, key=touched.get)`` alone resolves ties by
                # dict insertion order, which differs between the
                # simulate, predict-profile and trace-replay feeding
                # orders. Keys mix int and str identifiers (heap serials
                # vs global names), so compare them as strings.
                owner = max(touched,
                            key=lambda k: (touched[k], k[0], str(k[1])))
                profiles[owner].invalidations += detail.invalidations
                if detail.invalidations >= minimum:
                    selected.add(owner)
        chosen = [profiles[key] for key in selected]
        return sorted(chosen, key=lambda p: p.total_latency, reverse=True)

    def _profile_for(self, addr: int, allocator, symbols,
                     profiles: Dict[Tuple[str, object], ObjectProfile],
                     line: int) -> Optional[ObjectProfile]:
        key: Tuple[str, object]
        if allocator is not None and allocator.contains(addr):
            info: Optional[AllocationInfo] = allocator.find(addr)
            if info is None:
                return None
            key = ("heap", info.serial)
            if key not in profiles:
                profiles[key] = ObjectProfile(
                    key=key, kind="heap", start=info.addr, end=info.end,
                    size=info.requested_size, label=info.callsite,
                )
            return profiles[key]
        if symbols is not None and symbols.contains(addr):
            symbol: Optional[GlobalSymbol] = symbols.find(addr)
            if symbol is None:
                return None
            key = ("global", symbol.name)
            if key not in profiles:
                profiles[key] = ObjectProfile(
                    key=key, kind="global", start=symbol.addr,
                    end=symbol.end, size=symbol.size, label=symbol.name,
                )
            return profiles[key]
        # Unknown region (e.g. simulated stack): keep it visible.
        key = ("region", line)
        if key not in profiles:
            line_base = line << self._line_shift
            profiles[key] = ObjectProfile(
                key=key, kind="region", start=line_base,
                end=line_base + self.line_size, size=self.line_size,
                label=f"region@{line_base:#x}",
            )
        return profiles[key]
