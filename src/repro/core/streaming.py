"""Online windowed false-sharing detection (ROADMAP item 4).

The offline :class:`~repro.core.detection.FalseSharingDetector` consumes
a whole run's samples and only speaks at report time. The
:class:`StreamingDetector` here keeps the exact same word-attribution
machinery (it *is* a ``FalseSharingDetector`` — every sample still feeds
the superclass, so report-time verdicts are identical to the offline
path) and adds a windowed per-line table in the style of MicroSentinel's
``fs_detector.cpp``:

- each sampled line gets a window entry counting hits, writes and
  per-thread breakdowns since the window opened;
- entries idle for longer than ``window`` cycles expire (swept every
  ``flush_interval`` cycles of sample time);
- when an entry crosses the hit/write thresholds *and* survives the
  active-thread and writer-dominance filters, an incremental
  :class:`StreamingFinding` is emitted immediately — mid-run — through
  the observability hooks (a tracer instant event plus a
  ``streaming_findings_total`` counter), and recorded on
  ``detector.findings``.

The filters mirror the reference implementation: a line needs at least
``min_active_threads`` distinct sampled threads in the window (one
thread touching a line is private traffic, not sharing), and no single
thread may account for ``max_dominance`` or more of the window's sampled
writes (a line written almost exclusively by one thread — e.g. main
during initialisation — is not contended even if others read it once).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.config import ConfigBase
from repro.core.detection import DetectorConfig, FalseSharingDetector
from repro.errors import ConfigError
from repro.obs.hooks import current_finding_listeners
from repro.pmu.sample import MemorySample


@dataclass(frozen=True)
class StreamingConfig(ConfigBase):
    """Windowed-detector policy knobs.

    Attributes:
        window: cycles a line's window entry survives without a new
            sample before it expires (and the line may re-fire later).
        flush_interval: cycles of sample time between expiry sweeps.
        min_hits: sampled accesses a window needs before it can emit.
        min_writes: sampled writes a window needs before it can emit.
        min_active_threads: distinct sampled threads required in the
            window (``>=``).
        max_dominance: emission requires the busiest writer's share of
            the window's sampled writes to be strictly below this.
        max_lines: hard cap on concurrently-tracked window entries; at
            the cap the least-recently-seen entry is evicted.
        max_findings: findings recorded per run before further emissions
            are suppressed (counted in ``findings_suppressed``).
    """

    window: int = 60_000
    flush_interval: int = 5_000
    min_hits: int = 8
    min_writes: int = 3
    min_active_threads: int = 2
    max_dominance: float = 0.95
    max_lines: int = 65_536
    max_findings: int = 10_000

    def __post_init__(self) -> None:
        if self.window < 1:
            raise ConfigError("window must be >= 1")
        if self.flush_interval < 1:
            raise ConfigError("flush_interval must be >= 1")
        if self.min_hits < 1:
            raise ConfigError("min_hits must be >= 1")
        if self.min_writes < 1:
            raise ConfigError("min_writes must be >= 1")
        if self.min_active_threads < 1:
            raise ConfigError("min_active_threads must be >= 1")
        if not 0.0 < self.max_dominance <= 1.0:
            raise ConfigError("max_dominance must be in (0, 1]")
        if self.max_lines < 1:
            raise ConfigError("max_lines must be >= 1")
        if self.max_findings < 1:
            raise ConfigError("max_findings must be >= 1")


@dataclass(frozen=True)
class StreamingFinding:
    """One incremental mid-run detection event for a cache line."""

    line: int
    timestamp: int       # sample timestamp at which the window fired
    first_seen: int      # when the current window opened
    hits: int            # sampled accesses in the window so far
    writes: int          # sampled writes in the window so far
    active_threads: int
    dominance: float     # busiest writer's share of sampled writes
    tids: Tuple[int, ...]

    def to_dict(self) -> Dict[str, object]:
        return {
            "line": self.line,
            "timestamp": self.timestamp,
            "first_seen": self.first_seen,
            "hits": self.hits,
            "writes": self.writes,
            "active_threads": self.active_threads,
            "dominance": self.dominance,
            "tids": list(self.tids),
        }


class _LineWindow:
    """Mutable per-line window entry."""

    __slots__ = ("first_seen", "last_seen", "hits", "writes",
                 "tid_hits", "writer_hits", "emitted")

    def __init__(self, now: int) -> None:
        self.first_seen = now
        self.last_seen = now
        self.hits = 0
        self.writes = 0
        self.tid_hits: Dict[int, int] = {}
        self.writer_hits: Dict[int, int] = {}
        self.emitted = False


class StreamingDetector(FalseSharingDetector):
    """Windowed online detector over the offline word-attribution core.

    Every sample is forwarded to the superclass first, so
    ``build_objects`` / report verdicts are exactly those of the offline
    detector; the windowed table is purely additive.
    """

    def __init__(self, config: Optional[DetectorConfig] = None,
                 streaming: Optional[StreamingConfig] = None,
                 line_size: int = 64, word_size: int = 4):
        super().__init__(config, line_size, word_size)
        self.streaming = streaming or StreamingConfig()
        self._window: Dict[int, _LineWindow] = {}
        self._last_flush = 0
        self.findings: List[StreamingFinding] = []
        self.findings_suppressed = 0
        self.windows_expired = 0

    # -- online path ---------------------------------------------------------

    def on_sample(self, sample: MemorySample, in_parallel_phase: bool) -> None:
        super().on_sample(sample, in_parallel_phase)
        now = sample.timestamp
        line = sample.addr >> self._line_shift
        entry = self._window.get(line)
        if entry is not None and now - entry.last_seen > self.streaming.window:
            # The line went idle past the window and is now hot again:
            # a flush only sweeps between samples, so expiry must also
            # be checked on access or a once-emitted line could never
            # re-fire.
            self.windows_expired += 1
            entry = None
        if entry is None:
            if len(self._window) >= self.streaming.max_lines:
                oldest = min(self._window,
                             key=lambda ln: self._window[ln].last_seen)
                del self._window[oldest]
                self.windows_expired += 1
            entry = self._window[line] = _LineWindow(now)
        entry.last_seen = now
        entry.hits += 1
        tid = sample.tid
        entry.tid_hits[tid] = entry.tid_hits.get(tid, 0) + 1
        if sample.is_write:
            entry.writes += 1
            entry.writer_hits[tid] = entry.writer_hits.get(tid, 0) + 1
        if not entry.emitted:
            self._maybe_emit(line, entry, now)
        if now - self._last_flush >= self.streaming.flush_interval:
            self.flush(now)

    def _maybe_emit(self, line: int, entry: _LineWindow, now: int) -> None:
        cfg = self.streaming
        if entry.hits < cfg.min_hits or entry.writes < cfg.min_writes:
            return
        if len(entry.tid_hits) < cfg.min_active_threads:
            return
        dominance = max(entry.writer_hits.values()) / entry.writes
        if dominance >= cfg.max_dominance:
            return
        entry.emitted = True
        if len(self.findings) >= cfg.max_findings:
            self.findings_suppressed += 1
            return
        finding = StreamingFinding(
            line=line, timestamp=now, first_seen=entry.first_seen,
            hits=entry.hits, writes=entry.writes,
            active_threads=len(entry.tid_hits), dominance=dominance,
            tids=tuple(sorted(entry.tid_hits)),
        )
        self.findings.append(finding)
        if self.obs is not None:
            self.obs.on_streaming_finding(finding)
        listeners = current_finding_listeners()
        for listener in listeners:
            listener(finding)

    def flush(self, now: int, force: bool = False) -> None:
        """Expire idle window entries; with ``force`` (end of run),
        evaluate every surviving entry one final time."""
        self._last_flush = now
        horizon = now - self.streaming.window
        expired = [line for line, entry in self._window.items()
                   if entry.last_seen < horizon]
        for line in expired:
            del self._window[line]
            self.windows_expired += 1
        if force:
            for line, entry in self._window.items():
                if not entry.emitted:
                    self._maybe_emit(line, entry, now)
