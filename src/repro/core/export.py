"""Structured (JSON-ready) export of Cheetah reports.

Text reports are for humans; tooling (CI gates, dashboards, diffing two
profiling runs) wants structured data. ``report_to_dict`` flattens a
:class:`~repro.core.profiler.CheetahReport` into plain dicts/lists that
``json.dumps`` accepts unchanged.
"""

from __future__ import annotations

import json
from typing import Any, Dict

from repro.core.profiler import CheetahReport
from repro.core.report import ObjectReport


def instance_to_dict(report: ObjectReport) -> Dict[str, Any]:
    """One sharing instance as a JSON-ready dict."""
    p = report.profile
    a = report.assessment
    return {
        "kind": report.kind.value,
        "object": {
            "type": p.kind,
            "label": p.label,
            "start": p.start,
            "end": p.end,
            "size": p.size,
            "lines": sorted(p.lines),
        },
        "sampled": {
            "accesses": p.accesses,
            "writes": p.writes,
            "invalidations": p.invalidations,
            "total_latency": p.total_latency,
            "shared_word_accesses": p.shared_word_accesses,
            "threads": sorted(p.tids),
            "per_thread_accesses": dict(p.per_tid_accesses),
            "per_thread_cycles": dict(p.per_tid_cycles),
        },
        "assessment": {
            "improvement": a.improvement,
            "improvement_rate_percent": a.improvement_rate_percent,
            "real_runtime": a.real_runtime,
            "predicted_runtime": a.predicted_runtime,
            "aver_nofs_cycles": a.aver_nofs_cycles,
            "fork_join_ok": a.fork_join_ok,
        },
        "words": {
            str(rel_word * 4): {
                "threads": info["tids"],
                "reads": info["reads"],
                "writes": info["writes"],
                "shared": info["shared"],
            }
            for rel_word, info in sorted(p.word_summary.items())
        },
    }


def report_to_dict(report: CheetahReport) -> Dict[str, Any]:
    """A whole report as a JSON-ready dict."""
    return {
        "tool": "cheetah-repro",
        "runtime_cycles": report.runtime,
        "fork_join_model": report.fork_join_ok,
        "aver_nofs_cycles": report.aver_nofs_cycles,
        "serial_samples": report.serial_samples,
        "total_samples": report.total_samples,
        "significant": [instance_to_dict(r) for r in report.significant],
        "all_instances": [instance_to_dict(r)
                          for r in report.all_instances],
    }


def report_to_json(report: CheetahReport, indent: int = 2) -> str:
    """Serialize a report to a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent,
                      sort_keys=True)
