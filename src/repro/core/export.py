"""Structured (JSON-ready) export of Cheetah reports.

Text reports are for humans; tooling (CI gates, dashboards, diffing two
profiling runs) wants structured data. ``report_to_dict`` flattens a
:class:`~repro.core.profiler.CheetahReport` into plain dicts/lists that
``json.dumps`` accepts unchanged, and ``report_from_dict`` rebuilds an
equivalent report object from that form — the round trip behind the
:mod:`repro.service` result store (a cached profiled run rehydrates its
report from JSON and renders byte-identically to the live one).
"""

from __future__ import annotations

import json
from typing import Any, Dict, Mapping

from repro.core.assessment import Assessment
from repro.core.detection import ObjectProfile, SharingKind
from repro.core.profiler import CheetahReport
from repro.core.report import ObjectReport
from repro.errors import SchemaError


def instance_to_dict(report: ObjectReport) -> Dict[str, Any]:
    """One sharing instance as a JSON-ready dict."""
    p = report.profile
    a = report.assessment
    return {
        "kind": report.kind.value,
        "object": {
            "type": p.kind,
            "label": p.label,
            "key": list(p.key),
            "start": p.start,
            "end": p.end,
            "size": p.size,
            "lines": sorted(p.lines),
        },
        "sampled": {
            "accesses": p.accesses,
            "writes": p.writes,
            "invalidations": p.invalidations,
            "total_latency": p.total_latency,
            "shared_word_accesses": p.shared_word_accesses,
            "threads": sorted(p.tids),
            "per_thread_accesses": dict(p.per_tid_accesses),
            "per_thread_cycles": dict(p.per_tid_cycles),
        },
        "assessment": {
            "improvement": a.improvement,
            "improvement_rate_percent": a.improvement_rate_percent,
            "real_runtime": a.real_runtime,
            "predicted_runtime": a.predicted_runtime,
            "aver_nofs_cycles": a.aver_nofs_cycles,
            "fork_join_ok": a.fork_join_ok,
            "pred_rt_per_thread": {str(tid): value for tid, value
                                   in a.pred_rt_per_thread.items()},
        },
        "words": {
            str(rel_word * 4): {
                "threads": info["tids"],
                "reads": info["reads"],
                "writes": info["writes"],
                "shared": info["shared"],
            }
            for rel_word, info in sorted(p.word_summary.items())
        },
    }


def report_to_dict(report: CheetahReport) -> Dict[str, Any]:
    """A whole report as a JSON-ready dict."""
    return {
        "tool": "cheetah-repro",
        "runtime_cycles": report.runtime,
        "fork_join_model": report.fork_join_ok,
        "aver_nofs_cycles": report.aver_nofs_cycles,
        "serial_samples": report.serial_samples,
        "total_samples": report.total_samples,
        "significant": [instance_to_dict(r) for r in report.significant],
        "all_instances": [instance_to_dict(r)
                          for r in report.all_instances],
    }


def report_to_json(report: CheetahReport, indent: int = 2) -> str:
    """Serialize a report to a JSON string."""
    return json.dumps(report_to_dict(report), indent=indent,
                      sort_keys=True)


# -- the inverse direction (service result store rehydration) ----------------

def _int_keyed(mapping: Mapping[Any, Any]) -> Dict[int, Any]:
    """Re-int the keys JSON stringified."""
    return {int(k): v for k, v in mapping.items()}


def instance_from_dict(data: Mapping[str, Any]) -> ObjectReport:
    """Rebuild one sharing instance from :func:`instance_to_dict` form."""
    try:
        obj = data["object"]
        sampled = data["sampled"]
        assessed = data["assessment"]
        key = obj["key"]
        profile = ObjectProfile(
            key=(key[0], key[1]),
            kind=obj["type"],
            start=obj["start"],
            end=obj["end"],
            size=obj["size"],
            label=obj["label"],
            lines=set(obj["lines"]),
            accesses=sampled["accesses"],
            writes=sampled["writes"],
            invalidations=sampled["invalidations"],
            total_latency=sampled["total_latency"],
            shared_word_accesses=sampled["shared_word_accesses"],
            per_tid_accesses=_int_keyed(sampled["per_thread_accesses"]),
            per_tid_cycles=_int_keyed(sampled["per_thread_cycles"]),
            word_summary={
                int(offset) // 4: {
                    "tids": list(info["threads"]),
                    "reads": info["reads"],
                    "writes": info["writes"],
                    "shared": info["shared"],
                }
                for offset, info in data.get("words", {}).items()
            },
        )
        assessment = Assessment(
            improvement=assessed["improvement"],
            real_runtime=assessed["real_runtime"],
            predicted_runtime=assessed["predicted_runtime"],
            aver_nofs_cycles=assessed["aver_nofs_cycles"],
            pred_rt_per_thread={
                int(tid): value for tid, value
                in assessed.get("pred_rt_per_thread", {}).items()},
            fork_join_ok=assessed["fork_join_ok"],
        )
        return ObjectReport(profile=profile, assessment=assessment,
                            kind=SharingKind(data["kind"]))
    except (KeyError, TypeError, ValueError, IndexError) as exc:
        raise SchemaError(
            f"malformed sharing-instance payload: {exc!r}") from exc


def report_from_dict(data: Mapping[str, Any]) -> CheetahReport:
    """Rebuild a report from :func:`report_to_dict` form.

    The rebuilt report renders byte-identically to the original and
    exposes the same ``significant`` / ``all_instances`` /
    ``best()`` surface; it is what cached profiled runs carry.
    """
    if not isinstance(data, Mapping):
        raise SchemaError(
            f"report payload must be a mapping, got {type(data).__name__}")
    try:
        return CheetahReport(
            significant=[instance_from_dict(d) for d in data["significant"]],
            all_instances=[instance_from_dict(d)
                           for d in data["all_instances"]],
            runtime=data["runtime_cycles"],
            fork_join_ok=data["fork_join_model"],
            aver_nofs_cycles=data["aver_nofs_cycles"],
            serial_samples=data["serial_samples"],
            total_samples=data["total_samples"],
        )
    except (KeyError, TypeError) as exc:
        raise SchemaError(f"malformed report payload: {exc!r}") from exc
