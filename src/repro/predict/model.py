"""The analytical fast-forward model (O(lines), no full simulation).

Prediction replaces a full simulated run with:

1. one or two short simulated **prefix** runs at reduced scale (and at
   most ``max_profile_threads`` threads), profiled access-by-access into
   :class:`~repro.predict.profile.AccessProfile` objects;
2. a closed-form extrapolation of every reported quantity —
   invalidations, PMU sample counts, per-thread clocks, application
   runtime, and the false-sharing report itself — to the target scale
   and thread count.

**Calibration.** Each extensive metric ``m`` (accesses, cycles,
invalidations, runtime, ...) is assumed affine in the workload scale,
``m(s) = a + b*s``: the intercept absorbs constant startup work (cold
misses, spawn/join, setup loops) that would otherwise be over-amplified
by a proportional rule. Two prefix points ``p1 < p2`` pin the line; if
only one point exists (tiny targets, trace-sourced profiles) the model
falls back to proportionality. Implausible fits (negative intercept, or
an intercept exceeding the value at ``p1``) also fall back — both
signal jitter noise rather than real startup cost.

**Thread extrapolation** is *weak scaling*: each added thread is assumed
to bring its own data (more contended lines, same per-line behavior), so
totals scale by ``thread_factor = target_threads / profiled_threads``
while per-line/per-thread intensities stay fixed. This matches the
registry workloads, which partition work per thread; workloads where a
*fixed* set of lines absorbs every thread would need a contention model
instead (documented in ``docs/prediction.md``). The main thread
additionally pays ``spawn_cost + join_cost`` per extra thread.

**Findings.** The prefix detector sees *every* access (period 1) while a
real profiled run samples one in ``PMUConfig.period``; predicted object
counts are therefore scaled into the PMU-sampled domain
(``x volume_factor / period``) before the standard thresholds,
classification and assessment (:mod:`repro.core`) are applied — the same
code path the online profiler uses, fed predicted numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.config import ConfigBase
from repro.core.assessment import ThreadObservation, assess_object, serial_average
from repro.core.detection import ObjectProfile, SharingKind
from repro.core.profiler import CheetahConfig, CheetahReport
from repro.core.report import ObjectReport
from repro.errors import ConfigError
from repro.pmu.sampler import PMUConfig
from repro.predict.profile import AccessProfile, extract_profile
from repro.run import RunOutcome, RunSummary, ThreadSummary
from repro.runtime.phases import MAIN_TID, Phase
from repro.sim.params import MachineConfig
from repro.workloads.base import Workload


@dataclass(frozen=True)
class PredictConfig(ConfigBase):
    """Knobs of the analytical fast-forward mode.

    Attributes:
        prefix_fraction: prefix scale as a fraction of the target scale
            (before clamping).
        min_prefix_scale: prefix scale floor — very small prefixes are
            dominated by startup noise.
        max_prefix_scale: prefix scale ceiling — the knob that makes
            huge targets cheap: a scale-1000 run is profiled at scale
            <= this, never at a fraction of 1000.
        calibrate: run a second prefix at twice the first scale and fit
            an affine model through both points (absorbs constant
            startup offsets). Off: proportional extrapolation.
        max_profile_threads: thread-count cap for prefix runs; targets
            beyond it are extrapolated with the weak-scaling rule.
        bursts: replica count for ``mode="sampled"``
            (:mod:`repro.predict.sampled`).
        burst_fraction / min_burst_scale / max_burst_scale: burst scale
            selection, analogous to the prefix knobs.
    """

    prefix_fraction: float = 0.1
    min_prefix_scale: float = 0.05
    max_prefix_scale: float = 1.0
    calibrate: bool = True
    max_profile_threads: int = 64
    bursts: int = 3
    burst_fraction: float = 0.1
    min_burst_scale: float = 0.05
    max_burst_scale: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 < self.prefix_fraction <= 1.0:
            raise ConfigError("prefix_fraction must be in (0, 1]")
        if self.min_prefix_scale <= 0:
            raise ConfigError("min_prefix_scale must be positive")
        if self.max_prefix_scale < self.min_prefix_scale:
            raise ConfigError("max_prefix_scale must be >= min_prefix_scale")
        if self.max_profile_threads < 1:
            raise ConfigError("max_profile_threads must be >= 1")
        if self.bursts < 1:
            raise ConfigError("bursts must be >= 1")
        if not 0.0 < self.burst_fraction <= 1.0:
            raise ConfigError("burst_fraction must be in (0, 1]")
        if self.min_burst_scale <= 0:
            raise ConfigError("min_burst_scale must be positive")
        if self.max_burst_scale < self.min_burst_scale:
            raise ConfigError("max_burst_scale must be >= min_burst_scale")

    def prefix_scales(self, target_scale: float) -> Tuple[float, Optional[float]]:
        """The one or two prefix scales for a given target scale."""
        p1 = min(max(target_scale * self.prefix_fraction,
                     self.min_prefix_scale),
                 self.max_prefix_scale, target_scale)
        if not self.calibrate:
            return p1, None
        p2 = min(2.0 * p1, target_scale)
        if p2 <= p1:
            return p1, None
        return p1, p2

    def burst_scale(self, target_scale: float) -> float:
        return min(max(target_scale * self.burst_fraction,
                       self.min_burst_scale),
                   self.max_burst_scale, target_scale)


class _Fit:
    """Affine extrapolator through one or two (scale, value) points."""

    def __init__(self, x1: float, x2: Optional[float]):
        self.x1 = x1
        self.x2 = x2

    def __call__(self, y1: float, y2: Optional[float], x: float) -> float:
        x1, x2 = self.x1, self.x2
        if x2 is None or y2 is None or x2 == x1:
            base_x = x2 if (x2 is not None and y2 is not None) else x1
            base_y = y2 if (x2 is not None and y2 is not None) else y1
            return max(0.0, base_y * (x / base_x)) if base_x else 0.0
        b = (y2 - y1) / (x2 - x1)
        a = y1 - b * x1
        if a < 0 or a > y1:
            # Implausible intercept — jitter noise; fall back to
            # proportionality through the larger (more stable) point.
            return max(0.0, y2 * (x / x2))
        return max(0.0, a + b * x)


class _SyntheticPhases:
    """Duck-typed stand-in for :class:`PhaseTracker` built from
    predicted phase boundaries (``.phases`` + ``.fork_join_ok`` is all
    the assessment reads)."""

    def __init__(self, phases: List[Phase], fork_join_ok: bool):
        self.phases = phases
        self.fork_join_ok = fork_join_ok


def _scaled_phases(source, factor: float, fork_join_ok: bool) -> _SyntheticPhases:
    phases = []
    for phase in source.phases:
        if phase.end is None:
            continue
        phases.append(Phase(kind=phase.kind,
                            start=int(phase.start * factor),
                            end=int(phase.end * factor),
                            threads=set(phase.threads)))
    return _SyntheticPhases(phases, fork_join_ok)


def _int(value: float) -> int:
    return max(0, int(round(value)))


def predict_from_profiles(primary: AccessProfile,
                          secondary: Optional[AccessProfile] = None, *,
                          target_threads: int,
                          target_scale: float,
                          machine_config: Optional[MachineConfig] = None,
                          pmu_config: Optional[PMUConfig] = None,
                          with_cheetah: bool = False,
                          cheetah_config: Optional[CheetahConfig] = None,
                          profiled_accesses: Optional[int] = None,
                          ) -> RunOutcome:
    """Extrapolate profiles to a target (threads, scale); O(lines).

    ``primary`` is the larger-scale profile (the extrapolation anchor);
    ``secondary``, when present, is the smaller calibration point. The
    function is pure arithmetic over the profiles — no simulation — and
    fully deterministic.
    """
    config = machine_config or MachineConfig()
    cheetah = cheetah_config or CheetahConfig()
    period = float((pmu_config or PMUConfig()).period)
    pmu = pmu_config or PMUConfig()

    fit = _Fit(x1=(secondary.scale if secondary is not None else primary.scale),
               x2=(primary.scale if secondary is not None else None))

    def extrapolate(pick) -> float:
        if secondary is not None:
            return fit(pick(secondary), pick(primary), target_scale)
        return fit(pick(primary), None, target_scale)

    profiled_threads = max(1, primary.threads)
    thread_factor = max(1.0, target_threads / profiled_threads)

    # -- per-thread clocks and totals (volume extrapolation) ---------------
    sec_threads = secondary.thread_stats if secondary is not None else {}
    pred_threads: Dict[int, Dict[str, float]] = {}
    for tid, stat in primary.thread_stats.items():
        other = sec_threads.get(tid)

        def metric(name, stat=stat, other=other):
            y1 = getattr(other, name) if other is not None else None
            if secondary is not None and other is not None:
                return fit(y1, getattr(stat, name), target_scale)
            return fit(getattr(stat, name), None, target_scale)

        pred_threads[tid] = {
            "instructions": metric("instructions"),
            "mem_accesses": metric("mem_accesses"),
            "mem_cycles": metric("mem_cycles"),
            "runtime": metric("runtime"),
            "barrier_waits": metric("barrier_waits"),
            "start_clock": metric("start_clock"),
        }

    # PMU overhead: profiled runs charge sampling costs to thread clocks;
    # prefix runs carry no PMU, so predicted clocks must add it back to
    # be comparable with profiled simulate runs.
    overhead: Dict[int, float] = {}
    for tid, pred in pred_threads.items():
        if not with_cheetah:
            overhead[tid] = 0.0
            continue
        fires = pred["instructions"] / period
        mem_fraction = (pred["mem_accesses"] / pred["instructions"]
                        if pred["instructions"] else 0.0)
        overhead[tid] = (pmu.thread_setup_cost
                         + fires * (mem_fraction * pmu.handler_cost
                                    + (1.0 - mem_fraction) * pmu.trap_cost))
        pred["runtime"] += overhead[tid]

    extra_threads = max(0, target_threads - profiled_threads)
    spawn_adjust = extra_threads * (config.spawn_cost + config.join_cost)
    main_pred = pred_threads.get(MAIN_TID)
    if main_pred is not None:
        main_pred["runtime"] += spawn_adjust
        app_runtime = main_pred["runtime"]
    else:
        app_runtime = extrapolate(lambda p: p.runtime) + spawn_adjust

    # -- totals -------------------------------------------------------------
    pred_invalidations = extrapolate(lambda p: p.invalidations) * thread_factor
    pred_steps = extrapolate(lambda p: p.steps) * thread_factor
    volume_factor = 0.0
    if primary.total_accesses:
        volume_factor = (extrapolate(lambda p: p.total_accesses)
                         * thread_factor / primary.total_accesses)

    aver_nofs = serial_average(primary.serial_latencies, cheetah.assessment)

    # Predicted cycles that would disappear without false sharing
    # (paper EQ 1 applied per contended line, then volume-scaled).
    excess = 0.0
    for line_profile in primary.contended_lines().values():
        excess += max(0.0, line_profile.cycles
                      - line_profile.accesses * aver_nofs)
    pred_excess = excess * volume_factor

    # -- report (detector objects, scaled into the PMU-sampled domain) ----
    report = None
    predicted_pmu: Optional[Dict[str, float]] = None
    if with_cheetah and primary.detector is not None:
        sample_factor = volume_factor / period if period else 0.0
        runtime_factor = (app_runtime / primary.runtime
                          if primary.runtime else 1.0)

        observations: Dict[int, ThreadObservation] = {}
        for tid, pred in pred_threads.items():
            observations[tid] = ThreadObservation(
                tid=tid,
                runtime=_int(pred["runtime"]),
                accesses=_int(pred["mem_accesses"] / period),
                cycles=_int(pred["mem_cycles"] / period),
                barrier_waits=_int(pred["barrier_waits"]),
                profiler_overhead=_int(overhead.get(tid, 0.0)),
            )

        fork_join_ok = (primary.phases.fork_join_ok
                        if primary.phases is not None else True)
        if primary.phases is not None:
            phases = _scaled_phases(primary.phases, runtime_factor,
                                    fork_join_ok)
        else:
            # Trace-sourced profile: no phase timeline — model the run
            # as a single parallel phase over the worker threads.
            workers = set(primary.worker_tids())
            phases = _SyntheticPhases(
                [Phase(kind="parallel", start=0, end=_int(app_runtime),
                       threads=workers)], fork_join_ok)

        primary_objects = primary.detector.build_objects(
            primary.allocator, primary.symbols)
        secondary_objects: Dict[Tuple[str, object], ObjectProfile] = {}
        if secondary is not None and secondary.detector is not None:
            secondary_objects = {
                o.key: o for o in secondary.detector.build_objects(
                    secondary.allocator, secondary.symbols)}

        all_instances: List[ObjectReport] = []
        min_inv = cheetah.detector.min_invalidations
        for obj in primary_objects:
            twin = secondary_objects.get(obj.key)

            def counts(name, obj=obj, twin=twin):
                y2 = getattr(obj, name)
                if twin is not None:
                    return fit(getattr(twin, name), y2, target_scale)
                return fit(y2, None, target_scale)

            scaled = _scale_object(obj, counts, thread_factor,
                                   sample_period=period)
            if scaled.invalidations < min_inv:
                continue
            kind = scaled.classify(cheetah.detector.true_sharing_fraction)
            if kind is SharingKind.NO_SHARING:
                continue
            assessment = assess_object(scaled, observations, phases,
                                       aver_nofs, cheetah.assessment,
                                       sampling_period=period)
            all_instances.append(ObjectReport(profile=scaled,
                                              assessment=assessment,
                                              kind=kind))

        significant = [
            r for r in all_instances
            if r.is_false_sharing
            and r.assessment.improvement >= cheetah.min_improvement
        ]
        significant.sort(key=lambda r: r.assessment.improvement, reverse=True)
        if not cheetah.report_true_sharing:
            visible = [r for r in all_instances if r.is_false_sharing]
        else:
            visible = list(all_instances)
        visible.sort(key=lambda r: r.assessment.improvement, reverse=True)

        pred_instr = sum(p["instructions"] for p in pred_threads.values())
        pred_acc = sum(p["mem_accesses"] for p in pred_threads.values())
        samples_fired = pred_instr * thread_factor / period
        memory_samples = pred_acc * thread_factor / period
        predicted_pmu = {
            "period": pmu.period,
            "samples_fired": _int(samples_fired),
            "memory_samples": _int(memory_samples),
        }
        report = CheetahReport(
            significant=significant,
            all_instances=visible,
            runtime=_int(app_runtime),
            fork_join_ok=fork_join_ok,
            aver_nofs_cycles=aver_nofs,
            serial_samples=len(primary.serial_latencies),
            total_samples=_int(memory_samples),
        )

    # -- assemble the RunSummary -------------------------------------------
    threads: Dict[int, ThreadSummary] = {}
    worker_templates = primary.worker_tids()
    if main_pred is not None:
        threads[MAIN_TID] = _thread_summary(
            MAIN_TID, primary.thread_stats[MAIN_TID].name,
            core=primary.thread_stats[MAIN_TID].core,
            pred=main_pred, end_override=_int(app_runtime))
    if worker_templates:
        for tid in range(1, target_threads + 1):
            template = worker_templates[(tid - 1) % len(worker_templates)]
            stat = primary.thread_stats[template]
            threads[tid] = _thread_summary(
                tid, stat.name, core=tid % config.num_cores,
                pred=pred_threads[template])

    slowdown = None
    if report is not None and report.best() is not None:
        slowdown = report.best().assessment.improvement
    elif app_runtime and app_runtime > pred_excess / max(1, target_threads):
        denominator = app_runtime - pred_excess / max(1, target_threads)
        slowdown = app_runtime / denominator if denominator > 0 else None

    metadata: Dict[str, object] = {
        "kernel": "predict",
        "mode": config.mode if config.mode != "simulate" else "predict",
        "predicted": True,
        "profile": dict(primary.summary(),
                        calibration_points=1 + (secondary is not None),
                        profiled_accesses=(
                            profiled_accesses
                            if profiled_accesses is not None
                            else primary.total_accesses
                            + (secondary.total_accesses
                               if secondary is not None else 0))),
        "target": {
            "threads": target_threads,
            "scale": target_scale,
            "thread_factor": thread_factor,
        },
        "predicted_excess_cycles": _int(pred_excess),
        "predicted_slowdown": slowdown,
    }
    if predicted_pmu is not None:
        metadata["predicted_pmu"] = predicted_pmu

    summary = RunSummary(
        runtime=_int(app_runtime),
        steps=_int(pred_steps),
        invalidations=_int(pred_invalidations),
        threads=threads,
        metadata=metadata,
    )
    return RunOutcome(result=summary, report=report, obs=None,
                      fresh_prediction=True)


def _scale_object(obj: ObjectProfile, counts, thread_factor: float,
                  sample_period: float) -> ObjectProfile:
    """A fresh ObjectProfile with counts extrapolated to the target and
    rescaled into the PMU-sampled domain (``/ sample_period``)."""
    factor = thread_factor / sample_period if sample_period else 0.0
    scaled_accesses = counts("accesses") * factor
    ratio = scaled_accesses / obj.accesses if obj.accesses else 0.0
    scaled = ObjectProfile(
        key=obj.key, kind=obj.kind, start=obj.start, end=obj.end,
        size=obj.size, label=obj.label, lines=set(obj.lines),
        accesses=_int(scaled_accesses),
        writes=_int(counts("writes") * factor),
        invalidations=_int(counts("invalidations") * factor),
        total_latency=_int(counts("total_latency") * factor),
        shared_word_accesses=_int(counts("shared_word_accesses") * factor),
    )
    for tid, value in obj.per_tid_accesses.items():
        scaled.per_tid_accesses[tid] = _int(value * ratio)
    for tid, value in obj.per_tid_cycles.items():
        scaled.per_tid_cycles[tid] = _int(value * ratio)
    for word, info in obj.word_summary.items():
        scaled.word_summary[word] = {
            "tids": list(info["tids"]),
            "reads": _int(info["reads"] * ratio),
            "writes": _int(info["writes"] * ratio),
            "shared": info["shared"],
        }
    return scaled


def _thread_summary(tid: int, name: str, core: int,
                    pred: Dict[str, float],
                    end_override: Optional[int] = None) -> ThreadSummary:
    start = _int(pred["start_clock"]) if tid != MAIN_TID else 0
    end = (end_override if end_override is not None
           else start + _int(pred["runtime"]))
    return ThreadSummary(
        tid=tid, name=name, core=core,
        start_clock=start, end_clock=end,
        instructions=_int(pred["instructions"]),
        mem_accesses=_int(pred["mem_accesses"]),
        mem_cycles=_int(pred["mem_cycles"]),
        barrier_waits=_int(pred["barrier_waits"]),
    )


def predict_outcome(workload: Workload, *,
                    machine_config: Optional[MachineConfig] = None,
                    jitter_seed: int = 0xC0FFEE,
                    pmu_config: Optional[PMUConfig] = None,
                    with_cheetah: bool = False,
                    cheetah_config: Optional[CheetahConfig] = None,
                    predict_config: Optional[PredictConfig] = None,
                    ) -> RunOutcome:
    """End-to-end prediction for a workload: profile prefixes, then
    extrapolate. This is what ``mode="predict"`` routes to.

    The prefix runs are plain simulate-mode executions driven directly
    through :func:`repro.run.run_workload` — they never touch the run
    service or cache (only the *prediction* is a cacheable outcome).
    """
    config = machine_config or MachineConfig()
    predict = predict_config or PredictConfig()
    cheetah = cheetah_config or CheetahConfig()

    target_scale = workload.scale
    target_threads = workload.num_threads
    profile_threads = min(target_threads, predict.max_profile_threads)
    p1, p2 = predict.prefix_scales(target_scale)

    prefix1 = workload.clone(scale=p1, num_threads=profile_threads)
    profile1 = extract_profile(prefix1, machine_config=config,
                               jitter_seed=jitter_seed,
                               detector_config=cheetah.detector)
    profile2 = None
    if p2 is not None:
        prefix2 = workload.clone(scale=p2, num_threads=profile_threads)
        profile2 = extract_profile(prefix2, machine_config=config,
                                   jitter_seed=jitter_seed,
                                   detector_config=cheetah.detector)

    primary = profile2 if profile2 is not None else profile1
    secondary = profile1 if profile2 is not None else None
    # Clamping inside the workload ctor may reduce the thread count the
    # profile actually ran with; trust the profile.
    primary.threads = prefix1.num_threads

    profiled = profile1.total_accesses + (
        profile2.total_accesses if profile2 is not None else 0)
    outcome = predict_from_profiles(
        primary, secondary,
        target_threads=target_threads,
        target_scale=target_scale,
        machine_config=config,
        pmu_config=pmu_config,
        with_cheetah=with_cheetah,
        cheetah_config=cheetah,
        profiled_accesses=profiled,
    )
    outcome.result.metadata["mode"] = "predict"
    outcome.result.metadata["profile"]["prefix_scales"] = (
        [p1] if p2 is None else [p1, p2])
    return outcome
