"""Analytical fast-forward prediction (``MachineConfig.mode``).

Three execution modes share one entry point (:func:`repro.run.run_workload`):

- ``simulate`` — the default full simulation;
- ``predict`` — profile a short simulated prefix
  (:mod:`repro.predict.profile`), then predict invalidations, findings
  and runtime analytically in O(lines)
  (:mod:`repro.predict.model`);
- ``sampled`` — fully simulate a few representative bursts and
  extrapolate with confidence intervals
  (:mod:`repro.predict.sampled`).

:mod:`repro.predict.validate` cross-checks predictions against ground
truth (``repro predict --validate``).
"""

from repro.predict.model import (
    PredictConfig,
    predict_from_profiles,
    predict_outcome,
)
from repro.predict.profile import (
    AccessProfile,
    LineProfile,
    ProfileCollector,
    ThreadProfile,
    extract_profile,
    profile_from_trace,
)
from repro.predict.sampled import burst_seed, run_bursts, sampled_outcome

__all__ = [
    "AccessProfile",
    "LineProfile",
    "PredictConfig",
    "ProfileCollector",
    "ThreadProfile",
    "burst_seed",
    "extract_profile",
    "predict_from_profiles",
    "predict_outcome",
    "profile_from_trace",
    "run_bursts",
    "sampled_outcome",
]
