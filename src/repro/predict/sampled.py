"""Sampled-simulation mode: fully simulate representative bursts.

Where ``mode="predict"`` replaces simulation with arithmetic,
``mode="sampled"`` keeps the real machinery — every burst is an
ordinary full simulation (same thread count, reduced scale) through the
existing fused/vector kernels, the PMU, the detector, and (when
``check=True``) the coherence sanitizer — and only the *extrapolation*
to the target scale is analytical. That makes it the trustworthy middle
ground: bit-identical to simulate mode at the burst scale, with
confidence intervals quantifying the run-to-run jitter instead of a
model error.

Each burst runs under its own deterministic jitter seed (the first
burst uses the caller's seed verbatim, so a one-burst sampled run is
bit-compatible with a plain simulate run of the burst-scale clone);
means over bursts are scaled by ``target_scale / burst_scale`` and a
95% Student-t interval over the scaled values rides in the metadata.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.profiler import CheetahConfig
from repro.pmu.sampler import PMUConfig
from repro.predict.model import PredictConfig, _int
from repro.run import RunOutcome, RunSummary, ThreadSummary
from repro.runtime.phases import MAIN_TID
from repro.sim.params import MachineConfig
from repro.workloads.base import Workload

#: Two-sided 95% Student-t critical values by burst count (df = n-1);
#: beyond the table the normal approximation is close enough.
_T95 = {2: 12.706, 3: 4.303, 4: 3.182, 5: 2.776}


def burst_seed(jitter_seed: int, index: int) -> int:
    """Deterministic per-burst jitter seed; index 0 is the seed itself."""
    if index == 0:
        return jitter_seed
    return (jitter_seed + 0x9E3779B1 * index) & 0xFFFFFFFF


def _ci95(values: List[float]) -> float:
    n = len(values)
    if n < 2:
        return 0.0
    mean = sum(values) / n
    var = sum((v - mean) ** 2 for v in values) / (n - 1)
    t = _T95.get(n, 2.0)
    return t * math.sqrt(var) / math.sqrt(n)


def run_bursts(workload: Workload, burst_scale: float, count: int, *,
               machine_config: MachineConfig,
               jitter_seed: int,
               pmu_config: Optional[PMUConfig] = None,
               with_cheetah: bool = False,
               cheetah_config: Optional[CheetahConfig] = None,
               check: bool = False) -> List[RunOutcome]:
    """Simulate ``count`` bursts of ``workload`` at ``burst_scale``.

    Exposed separately so tests can assert bit-compatibility: burst 0
    is byte-identical to ``run_workload(workload.clone(scale=...))``
    with the same seed and config.
    """
    from repro.run import run_workload

    config = machine_config
    if config.mode != "simulate":
        config = config.replace(mode="simulate")
    outcomes = []
    for index in range(count):
        burst = workload.clone(scale=burst_scale)
        outcomes.append(run_workload(
            burst, machine_config=config,
            jitter_seed=burst_seed(jitter_seed, index),
            pmu_config=pmu_config, with_cheetah=with_cheetah,
            cheetah_config=cheetah_config, check=check))
    return outcomes


def sampled_outcome(workload: Workload, *,
                    machine_config: Optional[MachineConfig] = None,
                    jitter_seed: int = 0xC0FFEE,
                    pmu_config: Optional[PMUConfig] = None,
                    with_cheetah: bool = False,
                    cheetah_config: Optional[CheetahConfig] = None,
                    check: bool = False,
                    predict_config: Optional[PredictConfig] = None,
                    ) -> RunOutcome:
    """What ``mode="sampled"`` routes to: bursts + extrapolation."""
    config = machine_config or MachineConfig()
    predict = predict_config or PredictConfig()

    target_scale = workload.scale
    burst_scale = predict.burst_scale(target_scale)
    factor = target_scale / burst_scale
    count = predict.bursts

    outcomes = run_bursts(
        workload, burst_scale, count,
        machine_config=config, jitter_seed=jitter_seed,
        pmu_config=pmu_config, with_cheetah=with_cheetah,
        cheetah_config=cheetah_config, check=check)

    runtimes = [o.result.runtime * factor for o in outcomes]
    invalidations = [o.invalidations * factor for o in outcomes]
    steps = [o.result.steps * factor for o in outcomes]

    def mean(values: List[float]) -> float:
        return sum(values) / len(values)

    # Per-thread summaries: burst 0's threads, volume-scaled. Bursts run
    # at the full thread count, so the structure maps one-to-one.
    first = outcomes[0].result
    threads: Dict[int, ThreadSummary] = {}
    for tid, t in first.threads.items():
        if hasattr(t, "end_clock") and not isinstance(t, ThreadSummary):
            t = ThreadSummary.from_thread(t)
        start = 0 if tid == MAIN_TID else _int(t.start_clock * factor)
        threads[tid] = ThreadSummary(
            tid=tid, name=t.name, core=t.core,
            start_clock=start,
            end_clock=start + _int(t.runtime * factor),
            instructions=_int(t.instructions * factor),
            mem_accesses=_int(t.mem_accesses * factor),
            mem_cycles=_int(t.mem_cycles * factor),
            barrier_waits=_int(t.barrier_waits * factor),
        )

    metadata = {
        "kernel": "sampled",
        "mode": "sampled",
        "predicted": True,
        "sampled": {
            "bursts": count,
            "burst_scale": burst_scale,
            "factor": factor,
            "seeds": [burst_seed(jitter_seed, i) for i in range(count)],
            "burst_runtimes": [o.result.runtime for o in outcomes],
            "burst_invalidations": [o.invalidations for o in outcomes],
            "sanitized": bool(check),
            "ci95": {
                "runtime": round(_ci95(runtimes), 2),
                "invalidations": round(_ci95(invalidations), 2),
            },
        },
        "target": {
            "threads": workload.num_threads,
            "scale": target_scale,
            "thread_factor": 1.0,
        },
    }

    summary = RunSummary(
        runtime=_int(mean(runtimes)),
        steps=_int(mean(steps)),
        invalidations=_int(mean(invalidations)),
        threads=threads,
        metadata=metadata,
    )
    # The report reflects burst 0 (a real, fully-simulated execution);
    # improvement factors are ratio-based and carry over to the target.
    return RunOutcome(result=summary, report=outcomes[0].report, obs=None,
                      fresh_prediction=True)
