"""Cross-validation harness: predict vs full simulation.

For each workload in the validation set, run the same (threads, scale,
seed, config) pair twice — once in ``simulate`` mode (ground truth) and
once in ``predict`` mode — and compare:

- **invalidations**: relative error ``|pred - true| / true`` when the
  true count is at least :data:`NEGLIGIBLE_INVALIDATIONS`; below that
  the run has no contention to speak of, and the error is 0 when the
  prediction agrees it is negligible, 1 when it hallucinates contention;
- **runtime**: relative error (reported, not gated — the detection
  product is invalidations and findings, runtime is secondary);
- **verdict**: does the predicted Cheetah report flag significant false
  sharing exactly when the simulated one does, and (when both flag) do
  they agree on the top object?

The harness passes when the median invalidation error is at most
:data:`MEDIAN_ERROR_BUDGET` and the verdict agrees on every workload.
``repro predict --validate`` and ``tools/predict_accuracy.py`` both call
:func:`main`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.profiler import CheetahConfig
from repro.run import run_workload
from repro.sim.params import MachineConfig
from repro.workloads.base import get_workload

#: True-invalidation counts below this are "no contention"; predictions
#: are judged on agreeing with that, not on relative error against a
#: tiny denominator.
NEGLIGIBLE_INVALIDATIONS = 50

#: Acceptance bar: median relative invalidation error across the set.
MEDIAN_ERROR_BUDGET = 0.10

#: (workload, threads, scale) triples. Mixes the ground-truth positives
#: (documented false sharing) with negative controls, over both heap and
#: global objects and both micro and application-shaped access patterns.
VALIDATION_SET = (
    ("synthetic", 8, 2.0),
    ("array_increment", 8, 2.0),
    ("linear_regression", 8, 1.0),
    ("histogram", 8, 1.0),
    ("word_count", 8, 1.0),
    ("streamcluster", 8, 1.0),
    ("matrix_multiply", 4, 0.5),
    ("string_match", 4, 1.0),
)

#: The quick subset CI runs (``--smoke``).
SMOKE_SET = (
    ("synthetic", 8, 2.0),
    ("array_increment", 8, 2.0),
    ("linear_regression", 8, 1.0),
    ("matrix_multiply", 4, 0.5),
)


@dataclass
class WorkloadResult:
    """Predict-vs-simulate comparison for one workload."""

    name: str
    threads: int
    scale: float
    true_invalidations: int
    pred_invalidations: int
    invalidation_error: float
    true_runtime: int
    pred_runtime: int
    runtime_error: float
    true_verdict: bool
    pred_verdict: bool
    verdict_agrees: bool
    top_object_agrees: bool
    simulate_seconds: float
    predict_seconds: float

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


def relative_error(pred: float, true: float,
                   negligible: int = NEGLIGIBLE_INVALIDATIONS) -> float:
    """Relative error with the negligible-count rule described above."""
    if true >= negligible:
        return abs(pred - true) / true
    return 0.0 if pred < negligible else 1.0


def _top_label(report) -> Optional[str]:
    best = report.best() if report is not None else None
    return best.profile.label if best is not None else None


def validate_workload(name: str, threads: int, scale: float, *,
                      seed: int = 11) -> WorkloadResult:
    """Run one simulate-vs-predict pair and compare."""
    cls = get_workload(name)
    cheetah = CheetahConfig()

    def build():
        return cls(num_threads=threads, scale=scale)

    start = time.perf_counter()
    truth = run_workload(build(), machine_config=MachineConfig(),
                         jitter_seed=seed, with_cheetah=True,
                         cheetah_config=cheetah)
    sim_secs = time.perf_counter() - start

    start = time.perf_counter()
    pred = run_workload(build(),
                        machine_config=MachineConfig(mode="predict"),
                        jitter_seed=seed, with_cheetah=True,
                        cheetah_config=cheetah)
    pred_secs = time.perf_counter() - start

    true_inv = truth.invalidations
    pred_inv = pred.invalidations
    true_rt = truth.result.runtime
    pred_rt = pred.result.runtime
    true_verdict = bool(truth.report.significant)
    pred_verdict = bool(pred.report.significant)
    if true_verdict and pred_verdict:
        top_agrees = _top_label(truth.report) == _top_label(pred.report)
    else:
        top_agrees = true_verdict == pred_verdict
    return WorkloadResult(
        name=name, threads=threads, scale=scale,
        true_invalidations=true_inv, pred_invalidations=pred_inv,
        invalidation_error=round(relative_error(pred_inv, true_inv), 4),
        true_runtime=true_rt, pred_runtime=pred_rt,
        runtime_error=round(abs(pred_rt - true_rt) / true_rt, 4)
        if true_rt else 0.0,
        true_verdict=true_verdict, pred_verdict=pred_verdict,
        verdict_agrees=true_verdict == pred_verdict,
        top_object_agrees=top_agrees,
        simulate_seconds=round(sim_secs, 3),
        predict_seconds=round(pred_secs, 3),
    )


def run_validation(cases: Sequence[tuple], *,
                   seed: int = 11) -> List[WorkloadResult]:
    return [validate_workload(name, threads, scale, seed=seed)
            for name, threads, scale in cases]


def summarize(results: Sequence[WorkloadResult]) -> Dict[str, object]:
    errors = sorted(r.invalidation_error for r in results)
    mid = len(errors) // 2
    if not errors:
        median = 0.0
    elif len(errors) % 2:
        median = errors[mid]
    else:
        median = (errors[mid - 1] + errors[mid]) / 2.0
    verdicts_ok = all(r.verdict_agrees for r in results)
    passed = median <= MEDIAN_ERROR_BUDGET and verdicts_ok
    return {
        "workloads": len(results),
        "median_invalidation_error": round(median, 4),
        "max_invalidation_error": round(max(errors), 4) if errors else 0.0,
        "median_error_budget": MEDIAN_ERROR_BUDGET,
        "verdict_agreement": verdicts_ok,
        "verdict_disagreements": [r.name for r in results
                                  if not r.verdict_agrees],
        "passed": passed,
    }


def render_table(results: Sequence[WorkloadResult],
                 summary: Dict[str, object]) -> str:
    header = (f"{'workload':<20} {'thr':>3} {'scale':>5} "
              f"{'inv(true)':>10} {'inv(pred)':>10} {'err':>7} "
              f"{'rt err':>7} {'verdict':>8}")
    lines = [header, "-" * len(header)]
    for r in results:
        verdict = "ok" if r.verdict_agrees else "MISMATCH"
        lines.append(
            f"{r.name:<20} {r.threads:>3} {r.scale:>5g} "
            f"{r.true_invalidations:>10} {r.pred_invalidations:>10} "
            f"{r.invalidation_error:>6.1%} {r.runtime_error:>6.1%} "
            f"{verdict:>8}")
    lines.append("-" * len(header))
    lines.append(
        f"median invalidation error {summary['median_invalidation_error']:.1%}"
        f" (budget {summary['median_error_budget']:.0%}), verdict agreement "
        f"{'yes' if summary['verdict_agreement'] else 'NO'} -> "
        f"{'PASS' if summary['passed'] else 'FAIL'}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro predict --validate",
        description="cross-validate analytical prediction against full "
                    "simulation")
    parser.add_argument("--smoke", action="store_true",
                        help="quick CI subset")
    parser.add_argument("--workloads",
                        help="comma-separated workload names (overrides "
                             "the built-in set; uses each set entry's "
                             "threads/scale or 8/1.0 for new names)")
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument("--json", action="store_true",
                        help="machine-readable output")
    args = parser.parse_args(list(argv) if argv is not None else None)

    cases = list(SMOKE_SET if args.smoke else VALIDATION_SET)
    if args.workloads:
        wanted = [w.strip() for w in args.workloads.split(",") if w.strip()]
        known = {name: (name, threads, scale)
                 for name, threads, scale in VALIDATION_SET}
        cases = [known.get(w, (w, 8, 1.0)) for w in wanted]

    results = run_validation(cases, seed=args.seed)
    summary = summarize(results)
    if args.json:
        print(json.dumps({"summary": summary,
                          "results": [r.to_dict() for r in results]},
                         indent=2, sort_keys=True))
    else:
        print(render_table(results, summary))
    return 0 if summary["passed"] else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
