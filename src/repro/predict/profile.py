"""Profile extraction: per-thread, per-line access summaries.

The analytical fast-forward model (:mod:`repro.predict.model`) never
looks at individual accesses — it works from an :class:`AccessProfile`,
a compact summary of *who touched which cache line how*:

- per line: per-thread read/write counts, latency totals, writer
  interleaving (alternation) statistics, and invalidation counts
  (ground truth from the coherence directory when the profile comes
  from a simulated prefix, the two-entry-table estimate when it comes
  from a recorded trace);
- per thread: instruction/access/cycle/runtime totals;
- globally: a log2-bucketed reuse-distance histogram over the global
  interleaving order, and a bounded sample of serial-phase latencies
  (the ``AverCycles_nofs`` estimator input).

Profiles come from two sources, producing the same structure:

- :func:`extract_profile` runs a workload (typically a reduced-scale
  *prefix* clone built via :meth:`~repro.workloads.base.Workload.clone`)
  under a :class:`ProfileCollector` observer;
- :func:`profile_from_trace` replays a :mod:`repro.trace` recording —
  no simulation at all.

Both feed every access into a full-information
:class:`~repro.core.detection.FalseSharingDetector` (sampling period 1),
so the model can later build object-level findings with the exact
grouping/classification machinery the online profiler uses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.core.cacheline import TwoEntryTable
from repro.core.detection import DetectorConfig, FalseSharingDetector
from repro.pmu.sample import MemorySample
from repro.runtime.phases import MAIN_TID
from repro.sim.engine import Observer
from repro.sim.params import MachineConfig
from repro.trace.recorder import TraceRecord
from repro.workloads.base import Workload

#: Distinct cache lines tracked per profile before new lines stop
#: getting per-line records (totals keep accumulating; ``truncated``
#: reports the overflow). Generous: prefix runs touch a few thousand.
DEFAULT_MAX_LINES = 1 << 16

#: Serial-phase (main-thread) latencies retained for the
#: ``AverCycles_nofs`` estimator.
_SERIAL_LATENCY_CAP = 20_000


@dataclass
class LineProfile:
    """Access summary for one cache line."""

    line: int
    reads: Dict[int, int] = field(default_factory=dict)   # tid -> reads
    writes: Dict[int, int] = field(default_factory=dict)  # tid -> writes
    cycles: int = 0
    #: Ground-truth invalidations (prefix profiles) or the two-entry
    #: table estimate (trace profiles — no directory available).
    invalidations: int = 0
    #: Always the two-entry-table estimate, for cross-checking.
    table_invalidations: int = 0
    #: Writes whose previous writer was a different thread — the
    #: inter-thread interleaving (alternation) statistic.
    writer_switches: int = 0
    _last_writer: Optional[int] = None
    _table: TwoEntryTable = field(default_factory=TwoEntryTable)

    def record(self, tid: int, is_write: bool, latency: int) -> None:
        self.cycles += latency
        if is_write:
            self.writes[tid] = self.writes.get(tid, 0) + 1
            if self._last_writer is not None and self._last_writer != tid:
                self.writer_switches += 1
            self._last_writer = tid
            if self._table.record_write(tid):
                self.table_invalidations += 1
        else:
            self.reads[tid] = self.reads.get(tid, 0) + 1
            self._table.record_read(tid)

    @property
    def read_count(self) -> int:
        return sum(self.reads.values())

    @property
    def write_count(self) -> int:
        return sum(self.writes.values())

    @property
    def accesses(self) -> int:
        return self.read_count + self.write_count

    @property
    def tids(self) -> List[int]:
        return sorted(set(self.reads) | set(self.writes))

    @property
    def writers(self) -> List[int]:
        return sorted(self.writes)

    @property
    def alternation_rate(self) -> float:
        """Fraction of writes preceded by a different thread's write."""
        writes = self.write_count
        return self.writer_switches / writes if writes else 0.0


@dataclass
class ThreadProfile:
    """Per-thread totals over the profiled execution."""

    tid: int
    name: str
    core: int
    instructions: int
    mem_accesses: int
    mem_cycles: int
    runtime: int
    barrier_waits: int
    start_clock: int


@dataclass
class AccessProfile:
    """The complete extracted profile; input to the analytical model.

    ``detector``/``allocator``/``symbols``/``phases`` are *attribution
    context*: live objects from the profiled prefix (or a detector built
    from the trace) that let the model group lines into heap/global
    objects exactly like the online profiler. They are deliberately not
    serializable — profiles are an in-process intermediate, not an
    artifact format.
    """

    source: str  # "prefix" | "trace"
    threads: int  # worker thread count profiled
    scale: float
    jitter_seed: int
    runtime: int = 0
    steps: int = 0
    invalidations: int = 0  # total (ground truth or table estimate)
    lines: Dict[int, LineProfile] = field(default_factory=dict)
    thread_stats: Dict[int, ThreadProfile] = field(default_factory=dict)
    reuse_histogram: Dict[int, int] = field(default_factory=dict)
    serial_latencies: List[int] = field(default_factory=list)
    truncated: bool = False
    detector: Optional[FalseSharingDetector] = None
    allocator: object = None
    symbols: object = None
    phases: object = None

    @property
    def total_accesses(self) -> int:
        return sum(t.mem_accesses for t in self.thread_stats.values())

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.thread_stats.values())

    def worker_tids(self) -> List[int]:
        return sorted(t for t in self.thread_stats if t != MAIN_TID)

    def contended_lines(self, minimum: int = 1) -> Dict[int, LineProfile]:
        """Lines with at least ``minimum`` invalidations."""
        return {line: lp for line, lp in self.lines.items()
                if lp.invalidations >= minimum}

    def summary(self) -> Dict[str, object]:
        """Small JSON-able digest (rides in predicted-run metadata)."""
        return {
            "source": self.source,
            "threads": self.threads,
            "scale": self.scale,
            "accesses": self.total_accesses,
            "invalidations": self.invalidations,
            "lines": len(self.lines),
            "contended_lines": len(self.contended_lines()),
            "truncated": self.truncated,
        }


class ProfileCollector(Observer):
    """Engine observer accumulating an :class:`AccessProfile`.

    ``cost_per_access`` is zero: collection must not perturb the timing
    of the profiled prefix. Accesses by the main thread are treated as
    serial-phase (the same convention as
    :func:`repro.trace.replay.replay_into_detector` with
    ``serial_tids={0}``), which keeps prefix- and trace-sourced profiles
    byte-comparable.
    """

    cost_per_access = 0

    def __init__(self, line_size: int = 64, word_size: int = 4,
                 detector_config: Optional[DetectorConfig] = None,
                 max_lines: int = DEFAULT_MAX_LINES):
        self.detector = FalseSharingDetector(
            detector_config or DetectorConfig(),
            line_size=line_size, word_size=word_size)
        self.max_lines = max_lines
        self.lines: Dict[int, LineProfile] = {}
        self.reuse_histogram: Dict[int, int] = {}
        self.serial_latencies: List[int] = []
        self.truncated = False
        self._last_touch: Dict[int, int] = {}
        self._counter = 0

    def on_access(self, tid: int, core: int, addr: int, is_write: bool,
                  latency: int, size: int, line: int) -> None:
        counter = self._counter
        self._counter += 1
        in_parallel = tid != MAIN_TID
        self.detector.on_sample(
            MemorySample(tid=tid, core=core, addr=addr, is_write=is_write,
                         latency=latency, size=size, timestamp=counter),
            in_parallel)
        last = self._last_touch.get(line)
        if last is not None:
            bucket = (counter - last).bit_length()
            self.reuse_histogram[bucket] = (
                self.reuse_histogram.get(bucket, 0) + 1)
        self._last_touch[line] = counter
        profile = self.lines.get(line)
        if profile is None:
            if len(self.lines) >= self.max_lines:
                self.truncated = True
            else:
                profile = LineProfile(line=line)
                self.lines[line] = profile
        if profile is not None:
            profile.record(tid, is_write, latency)
        if (not in_parallel
                and len(self.serial_latencies) < _SERIAL_LATENCY_CAP):
            self.serial_latencies.append(latency)

    @property
    def accesses_seen(self) -> int:
        return self._counter


def extract_profile(workload: Workload, *,
                    machine_config: Optional[MachineConfig] = None,
                    jitter_seed: int = 0xC0FFEE,
                    detector_config: Optional[DetectorConfig] = None,
                    max_lines: int = DEFAULT_MAX_LINES) -> AccessProfile:
    """Simulate ``workload`` under a collector; return its profile.

    The workload is typically a reduced-scale prefix built with
    :meth:`Workload.clone`. The run always executes in ``simulate``
    mode regardless of ``machine_config.mode`` (profile extraction *is*
    the simulation step of prediction). Per-line invalidation counts are
    ground truth, read off the coherence directory after the run.
    """
    from repro.run import run_workload  # local: repro.run routes to us

    config = machine_config or MachineConfig()
    if config.mode != "simulate":
        config = config.replace(mode="simulate")
    collector = ProfileCollector(
        line_size=config.cache_line_size, word_size=config.word_size,
        detector_config=detector_config, max_lines=max_lines)
    outcome = run_workload(workload, machine_config=config,
                           jitter_seed=jitter_seed, observer=collector)
    result = outcome.result
    directory = result.machine.directory
    profile = AccessProfile(
        source="prefix",
        threads=workload.num_threads,
        scale=workload.scale,
        jitter_seed=jitter_seed,
        runtime=result.runtime,
        steps=result.steps,
        invalidations=directory.total_invalidations(),
        lines=collector.lines,
        reuse_histogram=collector.reuse_histogram,
        serial_latencies=collector.serial_latencies,
        truncated=collector.truncated,
        detector=collector.detector,
        allocator=result.allocator,
        symbols=result.symbols,
        phases=result.phases,
    )
    for line, line_profile in profile.lines.items():
        line_profile.invalidations = directory.invalidations_of(line)
    for tid, thread in result.threads.items():
        profile.thread_stats[tid] = ThreadProfile(
            tid=tid, name=thread.name, core=thread.core,
            instructions=thread.instructions,
            mem_accesses=thread.mem_accesses,
            mem_cycles=thread.mem_cycles,
            runtime=thread.runtime,
            barrier_waits=thread.barrier_waits,
            start_clock=thread.start_clock,
        )
    return profile


def profile_from_trace(records: Iterable[TraceRecord], *,
                       threads: Optional[int] = None,
                       scale: float = 1.0,
                       line_size: int = 64, word_size: int = 4,
                       detector_config: Optional[DetectorConfig] = None,
                       max_lines: int = DEFAULT_MAX_LINES) -> AccessProfile:
    """Build a profile from a recorded trace (no simulation).

    The records come from a :class:`~repro.trace.recorder.TraceRecorder`
    (live or reloaded via :func:`repro.trace.storage.load_trace`).
    Without a coherence directory, per-line ``invalidations`` carry the
    two-entry-table estimate; without thread clocks, per-thread
    ``instructions`` and ``runtime`` are access-count and cycle-sum
    proxies. ``threads`` defaults to the number of distinct non-main
    tids in the trace; ``scale`` should state the recorded run's scale
    so extrapolation targets are meaningful.
    """
    line_shift = line_size.bit_length() - 1
    collector = ProfileCollector(
        line_size=line_size, word_size=word_size,
        detector_config=detector_config, max_lines=max_lines)
    tid_acc: Dict[int, int] = {}
    tid_cyc: Dict[int, int] = {}
    tid_core: Dict[int, int] = {}
    for r in records:
        collector.on_access(r.tid, r.core, r.addr, r.is_write, r.latency,
                            r.size, r.addr >> line_shift)
        tid_acc[r.tid] = tid_acc.get(r.tid, 0) + 1
        tid_cyc[r.tid] = tid_cyc.get(r.tid, 0) + r.latency
        tid_core[r.tid] = r.core
    profile = AccessProfile(
        source="trace",
        threads=(threads if threads is not None
                 else max(0, len(set(tid_acc) - {MAIN_TID}))),
        scale=scale,
        jitter_seed=0,
        lines=collector.lines,
        reuse_histogram=collector.reuse_histogram,
        serial_latencies=collector.serial_latencies,
        truncated=collector.truncated,
        detector=collector.detector,
    )
    for line_profile in profile.lines.values():
        line_profile.invalidations = line_profile.table_invalidations
    profile.invalidations = sum(
        lp.invalidations for lp in profile.lines.values())
    worker_cycles = [c for tid, c in tid_cyc.items() if tid != MAIN_TID]
    profile.runtime = (tid_cyc.get(MAIN_TID, 0)
                       + (max(worker_cycles) if worker_cycles else 0))
    profile.steps = sum(tid_acc.values())
    for tid in sorted(tid_acc):
        profile.thread_stats[tid] = ThreadProfile(
            tid=tid,
            name="main" if tid == MAIN_TID else f"t{tid}",
            core=tid_core.get(tid, 0),
            instructions=tid_acc[tid],
            mem_accesses=tid_acc[tid],
            mem_cycles=tid_cyc[tid],
            runtime=tid_cyc[tid],
            barrier_waits=0,
            start_clock=0,
        )
    return profile
