"""Exception hierarchy for the Cheetah reproduction.

All errors raised by this package derive from :class:`ReproError`, so
callers can catch one base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class ValidationError(SimulationError):
    """The coherence sanitizer caught an invariant violation.

    Raised by :mod:`repro.sim.check` when a shadowed access diverges from
    the reference MESI oracle or breaks a structural invariant. Carries
    enough structure to triage the divergence without a debugger:

    Attributes:
        invariant: short identifier of the violated invariant, e.g.
            ``"outcome-mismatch"`` or ``"single-writer"``.
        access: the offending access as a dict (core, addr, line,
            is_write, now, kind, latency), or None for run-level checks.
        expected: what the oracle / invariant required.
        actual: what the fast path produced.
        trace: the most recent shadowed accesses leading up to the
            violation, oldest first.
    """

    def __init__(self, invariant: str, message: str, *, access=None,
                 expected=None, actual=None, trace=()):
        self.invariant = invariant
        self.access = access
        self.expected = expected
        self.actual = actual
        self.trace = list(trace)
        lines = [f"[{invariant}] {message}"]
        if access is not None:
            lines.append(f"  access:   {access!r}")
        if expected is not None:
            lines.append(f"  expected: {expected!r}")
        if actual is not None:
            lines.append(f"  actual:   {actual!r}")
        if self.trace:
            lines.append("  trace (oldest first):")
            lines.extend(f"    {entry!r}" for entry in self.trace)
        super().__init__("\n".join(lines))


class DeadlockError(SimulationError):
    """Every live thread is blocked; the program cannot make progress."""


class ThreadError(SimulationError):
    """A thread operation (spawn/join) was used incorrectly."""


class AllocationError(ReproError):
    """The simulated heap could not satisfy a request."""


class OutOfMemoryError(AllocationError):
    """The arena backing the simulated heap is exhausted."""


class InvalidFreeError(AllocationError):
    """``free`` was called with an address that is not a live allocation."""


class ConfigError(ReproError):
    """A configuration value is out of its legal range."""


class SymbolError(ReproError):
    """A global symbol registration or lookup failed."""


class ProfilerError(ReproError):
    """The Cheetah profiler was driven through an illegal transition."""


class ObsError(ReproError):
    """The observability layer was driven through an illegal transition."""


class SchemaError(ReproError):
    """A serialized artifact carries an unknown or incompatible schema.

    Raised when :meth:`repro.run.RunOutcome.from_dict` (or the result
    store deserializing one of its entries) meets a payload whose
    ``schema_version`` it does not understand, or whose shape does not
    match the declared version.
    """


class ServiceError(ReproError):
    """The run service (result store / job scheduler) was misused."""
