"""Exception hierarchy for the Cheetah reproduction.

All errors raised by this package derive from :class:`ReproError`, so
callers can catch one base class at the API boundary.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this package."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an invalid state."""


class DeadlockError(SimulationError):
    """Every live thread is blocked; the program cannot make progress."""


class ThreadError(SimulationError):
    """A thread operation (spawn/join) was used incorrectly."""


class AllocationError(ReproError):
    """The simulated heap could not satisfy a request."""


class OutOfMemoryError(AllocationError):
    """The arena backing the simulated heap is exhausted."""


class InvalidFreeError(AllocationError):
    """``free`` was called with an address that is not a live allocation."""


class ConfigError(ReproError):
    """A configuration value is out of its legal range."""


class SymbolError(ReproError):
    """A global symbol registration or lookup failed."""


class ProfilerError(ReproError):
    """The Cheetah profiler was driven through an illegal transition."""
