"""Reproduction of "Cheetah: Detecting False Sharing Efficiently and
Effectively" (Liu & Liu, CGO 2016) on a simulated multicore substrate.

Quick start::

    from repro import Session

    session = Session("linear_regression", threads=8)
    print(session.report().render())

The package layers:

- ``repro.sim`` / ``repro.runtime`` / ``repro.heap`` / ``repro.pmu`` /
  ``repro.symbols`` — the simulated hardware and runtime substrate;
- ``repro.core`` — Cheetah itself (detection, assessment, reporting);
- ``repro.baselines`` — Predator-style full instrumentation and the
  Zhao et al. ownership rule;
- ``repro.workloads`` — synthetic Phoenix/PARSEC benchmarks;
- ``repro.experiments`` — regeneration of every table and figure in the
  paper's evaluation;
- ``repro.service`` — the persistent run service (content-addressed
  result cache + resilient job scheduler).

Public API (v2)
---------------

``__all__`` below is the frozen v2 surface (``repro.__api_version__``),
pinned by ``tests/test_public_api.py`` and documented in ``docs/api.md``.
v2 is a strict superset of v1 — nothing was removed. New in v2: the
unified :class:`~repro.request.RunRequest` front door (one object
collapsing the kernel/mode/detector selection knobs every layer used to
re-assemble), the streaming detector types, the analytical entry points
(``predict_outcome`` / ``sampled_outcome``), and the serve-daemon pieces
(:class:`~repro.service.daemon.ServeConfig`,
:class:`~repro.service.sink.FindingsSink`).

The workload-registry API rides on v2 *additively*: the v2 names are
frozen verbatim, and the redesigned ground-truth surface
(:class:`~repro.workloads.GroundTruth`,
:class:`~repro.workloads.Verdict`, :class:`~repro.workloads.Workload`,
:func:`~repro.workloads.get_workload`,
:func:`~repro.workloads.iter_workloads`) extends it without touching
anything a v2 caller imports. The old ``Workload`` boolean pair
(``documented_false_sharing`` / ``significant_false_sharing``) still
reads, derived from ``ground_truth`` with a :class:`DeprecationWarning`.

Everything else is internal. The pre-v1 names (``profile``,
``run_plain``, and the raw substrate classes that used to leak through
this module) still import but emit :class:`DeprecationWarning` via the
module ``__getattr__``.
"""

from __future__ import annotations

import warnings
from typing import Any, List, Optional, Tuple

from repro.api import Session
from repro.core.detection import DetectorConfig
from repro.core.profiler import CheetahConfig, CheetahReport
from repro.core.streaming import (
    StreamingConfig,
    StreamingDetector,
    StreamingFinding,
)
from repro.errors import ReproError
from repro.obs import ObsConfig
from repro.pmu.sampler import PMUConfig
from repro.predict import predict_outcome, sampled_outcome
from repro.request import RunRequest
from repro.run import DEFAULT_SEEDS, RunOutcome, RunSummary, run_workload
from repro.service import (
    JobFailure,
    ResultStore,
    RunService,
    RunSpec,
    Scheduler,
    cached_run,
    default_cache_dir,
    using_service,
)
from repro.service.daemon import ServeConfig
from repro.service.sink import FindingsSink
from repro.sim.params import LatencyModel, MachineConfig
from repro.workloads import (
    GroundTruth,
    Verdict,
    Workload,
    get_workload,
    iter_workloads,
)

__version__ = "2.1.0"

#: Version of the frozen public surface (not the package version).
#: Bumped when a name is removed or renamed; purely additive extensions
#: (the workload-registry names below) keep the version and are pinned
#: separately by ``tests/test_public_api.py``.
__api_version__ = 2

__all__ = [
    "CheetahConfig",
    "CheetahReport",
    "DEFAULT_SEEDS",
    "DetectorConfig",
    "FindingsSink",
    "GroundTruth",
    "JobFailure",
    "LatencyModel",
    "MachineConfig",
    "ObsConfig",
    "PMUConfig",
    "ReproError",
    "ResultStore",
    "RunOutcome",
    "RunRequest",
    "RunService",
    "RunSpec",
    "RunSummary",
    "Scheduler",
    "ServeConfig",
    "Session",
    "StreamingConfig",
    "StreamingDetector",
    "StreamingFinding",
    "Verdict",
    "Workload",
    "cached_run",
    "default_cache_dir",
    "get_workload",
    "iter_workloads",
    "predict_outcome",
    "run_workload",
    "sampled_outcome",
    "using_service",
    "__api_version__",
    "__version__",
]


def _prepare(workload_or_fn: Any, symbols):
    """Accept either a Workload object or a bare generator function."""
    from repro.symbols.table import SymbolTable
    if hasattr(workload_or_fn, "main") and hasattr(workload_or_fn, "setup"):
        table = symbols or SymbolTable()
        workload_or_fn.setup(table)
        return workload_or_fn.main, table
    return workload_or_fn, symbols or SymbolTable()


def _run_plain(workload_or_fn: Any, *args: Any,
               machine_config: Optional[MachineConfig] = None,
               symbols=None):
    """Run a workload without any profiling (the "pthreads" baseline)."""
    from repro.heap.allocator import CheetahAllocator
    from repro.sim.engine import Engine
    main_fn, table = _prepare(workload_or_fn, symbols)
    config = machine_config or MachineConfig()
    engine = Engine(config=config, symbols=table,
                    allocator=CheetahAllocator(line_size=config.cache_line_size))
    return engine.run(main_fn, *args)


def _profile(workload_or_fn: Any, *args: Any,
             machine_config: Optional[MachineConfig] = None,
             pmu_config: Optional[PMUConfig] = None,
             cheetah_config: Optional[CheetahConfig] = None,
             symbols=None) -> Tuple[Any, CheetahReport]:
    """Run a workload under Cheetah; returns (run result, report)."""
    from repro.core.profiler import CheetahProfiler
    from repro.heap.allocator import CheetahAllocator
    from repro.pmu.sampler import PMU
    from repro.sim.engine import Engine
    main_fn, table = _prepare(workload_or_fn, symbols)
    config = machine_config or MachineConfig()
    pmu = PMU(pmu_config or PMUConfig())
    engine = Engine(config=config, symbols=table, pmu=pmu,
                    allocator=CheetahAllocator(line_size=config.cache_line_size))
    profiler = CheetahProfiler(cheetah_config)
    profiler.attach(engine)
    result = engine.run(main_fn, *args)
    report = profiler.finalize(result)
    return result, report


# Pre-v1 names still importable from here, with a DeprecationWarning and
# a pointer at the supported spelling. Kept out of module globals so the
# PEP 562 __getattr__ below fires for them.
_DEPRECATED = {
    "profile": (lambda: _profile,
                "use repro.Session(...).profile() (or repro.run_workload "
                "with with_cheetah=True)"),
    "run_plain": (lambda: _run_plain,
                  "use repro.Session(...).run() (or repro.run_workload)"),
    "Engine": (lambda: _import("repro.sim.engine", "Engine"),
               "import it from repro.sim.engine"),
    "RunResult": (lambda: _import("repro.sim.engine", "RunResult"),
                  "import it from repro.sim.engine"),
    "PMU": (lambda: _import("repro.pmu.sampler", "PMU"),
            "import it from repro.pmu.sampler"),
    "CheetahProfiler": (lambda: _import("repro.core.profiler",
                                        "CheetahProfiler"),
                        "import it from repro.core.profiler"),
    "SymbolTable": (lambda: _import("repro.symbols.table", "SymbolTable"),
                    "import it from repro.symbols.table"),
    "Observability": (lambda: _import("repro.obs", "Observability"),
                      "import it from repro.obs"),
    "CheetahAllocator": (lambda: _import("repro.heap.allocator",
                                         "CheetahAllocator"),
                         "import it from repro.heap.allocator"),
}


def _import(module: str, name: str) -> Any:
    import importlib
    return getattr(importlib.import_module(module), name)


def __getattr__(name: str) -> Any:
    if name in _DEPRECATED:
        loader, hint = _DEPRECATED[name]
        warnings.warn(
            f"repro.{name} is not part of the frozen v{__api_version__} "
            f"API and will be removed; {hint}",
            DeprecationWarning, stacklevel=2)
        return loader()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(list(globals()) + list(_DEPRECATED))
