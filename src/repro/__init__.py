"""Reproduction of "Cheetah: Detecting False Sharing Efficiently and
Effectively" (Liu & Liu, CGO 2016) on a simulated multicore substrate.

Quick start::

    from repro import profile
    from repro.workloads import get_workload

    workload = get_workload("linear_regression")(num_threads=8)
    result, report = profile(workload)
    print(report.render())

The package layers:

- ``repro.sim`` / ``repro.runtime`` / ``repro.heap`` / ``repro.pmu`` /
  ``repro.symbols`` — the simulated hardware and runtime substrate;
- ``repro.core`` — Cheetah itself (detection, assessment, reporting);
- ``repro.baselines`` — Predator-style full instrumentation and the
  Zhao et al. ownership rule;
- ``repro.workloads`` — synthetic Phoenix/PARSEC benchmarks;
- ``repro.experiments`` — regeneration of every table and figure in the
  paper's evaluation.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from repro.api import Session
from repro.core.detection import DetectorConfig
from repro.core.profiler import CheetahConfig, CheetahProfiler, CheetahReport
from repro.errors import ReproError
from repro.heap.allocator import CheetahAllocator
from repro.obs import ObsConfig, Observability
from repro.pmu.sampler import PMU, PMUConfig
from repro.run import DEFAULT_SEEDS, RunOutcome, run_workload
from repro.sim.engine import Engine, RunResult
from repro.sim.params import LatencyModel, MachineConfig
from repro.symbols.table import SymbolTable

__version__ = "1.0.0"

__all__ = [
    "CheetahConfig",
    "CheetahProfiler",
    "CheetahReport",
    "DEFAULT_SEEDS",
    "DetectorConfig",
    "Engine",
    "LatencyModel",
    "MachineConfig",
    "ObsConfig",
    "Observability",
    "PMU",
    "PMUConfig",
    "ReproError",
    "RunOutcome",
    "RunResult",
    "Session",
    "SymbolTable",
    "profile",
    "run_plain",
    "run_workload",
    "__version__",
]


def _prepare(workload_or_fn: Any, symbols: Optional[SymbolTable]):
    """Accept either a Workload object or a bare generator function."""
    if hasattr(workload_or_fn, "main") and hasattr(workload_or_fn, "setup"):
        table = symbols or SymbolTable()
        workload_or_fn.setup(table)
        return workload_or_fn.main, table
    return workload_or_fn, symbols or SymbolTable()


def run_plain(workload_or_fn: Any, *args: Any,
              machine_config: Optional[MachineConfig] = None,
              symbols: Optional[SymbolTable] = None) -> RunResult:
    """Run a workload without any profiling (the "pthreads" baseline)."""
    main_fn, table = _prepare(workload_or_fn, symbols)
    config = machine_config or MachineConfig()
    engine = Engine(config=config, symbols=table,
                    allocator=CheetahAllocator(line_size=config.cache_line_size))
    return engine.run(main_fn, *args)


def profile(workload_or_fn: Any, *args: Any,
            machine_config: Optional[MachineConfig] = None,
            pmu_config: Optional[PMUConfig] = None,
            cheetah_config: Optional[CheetahConfig] = None,
            symbols: Optional[SymbolTable] = None,
            ) -> Tuple[RunResult, CheetahReport]:
    """Run a workload under Cheetah; returns (run result, report)."""
    main_fn, table = _prepare(workload_or_fn, symbols)
    config = machine_config or MachineConfig()
    pmu = PMU(pmu_config or PMUConfig())
    engine = Engine(config=config, symbols=table, pmu=pmu,
                    allocator=CheetahAllocator(line_size=config.cache_line_size))
    profiler = CheetahProfiler(cheetah_config)
    profiler.attach(engine)
    result = engine.run(main_fn, *args)
    report = profiler.finalize(result)
    return result, report
