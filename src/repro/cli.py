"""Command-line interface.

::

    python -m repro list
    python -m repro run linear_regression --threads 8
    python -m repro profile linear_regression --threads 16 --period 128
    python -m repro trace histogram --out histogram.trace.json
    python -m repro metrics linear_regression --profile
    python -m repro predict synthetic --threads 1024 --scale 100
    python -m repro predict --validate --smoke
    python -m repro fix-check streamcluster --threads 8
    python -m repro compare histogram
    python -m repro experiment table1 --scale 0.5
    python -m repro cache stats

Conventions shared by every subcommand:

- ``--json`` switches the primary stdout output to machine-readable
  JSON (diagnostics stay on stderr);
- commands that simulate accept ``--cache`` / ``--no-cache`` /
  ``--cache-dir DIR`` (default: cache on, at ``$REPRO_CACHE_DIR`` or
  ``~/.cache/repro``) and ``--seed``;
- matrix commands accept ``--jobs N``;
- process exit codes: 0 success, 1 failure (including a negative
  ``profile`` verdict and internal errors), 2 usage error (argparse).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro import __version__
from repro.api import Session
from repro.baselines.predator import PredatorDetector
from repro.baselines.sheriff import SheriffDetector
from repro.config import CLIConfigs, build_configs
from repro.experiments import (
    adaptive, assumptions, comparison, detection, figure1, figure4, figure5,
    figure7, linesize, parallel, scaling, synchronization, table1,
)
from repro.obs import aggregate_snapshots, pop_default, push_default
from repro.run import run_workload
from repro.service import (
    RunService,
    cached_run,
    current_service,
    default_cache_dir,
    using_service,
)
from repro.workloads import (
    Verdict,
    all_workload_names,
    families,
    get_workload,
    iter_workloads,
    suites,
    workload_info,
)

EXPERIMENTS = {
    "figure1": lambda args: figure1.run(scale=args.scale),
    "figure4": lambda args: figure4.run(scale=args.scale),
    "figure5": lambda args: figure5.run(scale=args.scale),
    "figure7": lambda args: figure7.run(scale=args.scale),
    "table1": lambda args: table1.run(scale=args.scale),
    "comparison": lambda args: comparison.run(scale=args.scale),
    "detection": lambda args: detection.run(scale=args.scale),
    "oversubscription": lambda args: assumptions.run_oversubscription(),
    "finite-cache": lambda args: assumptions.run_finite_cache(),
    "linesize": lambda args: linesize.run(scale=args.scale),
    "scaling": lambda args: scaling.run(scale=args.scale),
    "synchronization": lambda args: synchronization.run(),
    "adaptive": lambda args: adaptive.run(scale=args.scale),
}


def _run_all(args):
    from repro.experiments import full_report
    return full_report.run(
        scale=args.scale,
        progress=lambda title: print(f"... {title}", file=sys.stderr))


EXPERIMENTS["all"] = _run_all


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cheetah (CGO'16) reproduction: false sharing "
                    "detection on a simulated multicore.",
        epilog="exit codes: 0 success, 1 failure, 2 usage error")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    # Shared flag vocabulary (argparse parents): every subcommand takes
    # --json; everything that simulates takes the cache flags; matrix
    # commands take --jobs.
    json_parent = argparse.ArgumentParser(add_help=False)
    json_parent.add_argument(
        "--json", action="store_true",
        help="emit machine-readable JSON on stdout")
    cache_parent = argparse.ArgumentParser(add_help=False)
    cache_parent.add_argument(
        "--cache", dest="cache", action="store_true", default=True,
        help="serve identical runs from the result store (default)")
    cache_parent.add_argument(
        "--no-cache", dest="cache", action="store_false",
        help="always simulate; do not read or write the result store")
    cache_parent.add_argument(
        "--cache-dir", metavar="DIR", default=None,
        help="result store location (default: $REPRO_CACHE_DIR or "
             "~/.cache/repro)")
    jobs_parent = argparse.ArgumentParser(add_help=False)
    jobs_parent.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan independent cells over N worker processes "
             "(default: serial)")

    sub.add_parser("list", parents=[json_parent],
                   help="list available workloads")

    wl_p = sub.add_parser(
        "workloads", parents=[json_parent],
        help="query the workload registry (suites, families, "
             "declared ground truth)")
    wl_p.add_argument("action", choices=("list",),
                      help="list: one row per registered workload")
    wl_p.add_argument("--suite", default=None,
                      help="only workloads of this suite "
                           "(phoenix/parsec/micro/concurrent)")
    wl_p.add_argument("--family", default=None,
                      help="only workloads of this concurrency family "
                           "(fork_join, producer_consumer, ...)")
    wl_p.add_argument("--verdict", default=None,
                      choices=("false_sharing", "true_sharing", "none"),
                      help="only workloads whose declared ground-truth "
                           "verdict matches")
    wl_p.add_argument("--significant", action="store_true", default=None,
                      help="only workloads declaring significant false "
                           "sharing")

    def add_workload_args(p):
        p.add_argument("workload", help="workload name (see 'list')")
        p.add_argument("--threads", type=int, default=None,
                       help="worker thread count (default: workload's)")
        p.add_argument("--scale", type=float, default=1.0,
                       help="iteration-count multiplier")
        p.add_argument("--fixed", action="store_true",
                       help="use the padded (bug-fixed) layout")
        p.add_argument("--seed", type=int, default=11,
                       help="machine timing-jitter seed")
        p.add_argument("--line-size", type=int, default=None,
                       help="cache line size in bytes (default: machine's)")
        p.add_argument("--cores", type=int, default=None,
                       help="core count (default: machine's)")
        p.add_argument("--kernel", choices=("fused", "vector", "auto"),
                       default=None,
                       help="burst kernel: 'fused' scalar loop, 'vector' "
                            "array-batched spans, or 'auto' (default) — "
                            "vector when no observer/sanitizer needs "
                            "per-access visibility, else fused")
        p.add_argument("--mode", choices=("simulate", "predict", "sampled"),
                       default=None,
                       help="execution mode: 'simulate' (default) runs "
                            "every access; 'predict' profiles a short "
                            "prefix and extrapolates analytically; "
                            "'sampled' simulates a few bursts and "
                            "extrapolates with confidence intervals "
                            "(non-default modes tag results "
                            "predicted=true)")
        p.add_argument("--check", action="store_true",
                       help="run under the coherence sanitizer (slow; "
                            "incompatible with --mode predict)")
        p.add_argument("--numa-nodes", type=int, default=None,
                       help="stripe cores over N NUMA nodes "
                            "(default: machine's, 1)")
        p.add_argument("--remote-fetch-penalty", type=int, default=None,
                       help="extra cycles for cold/shared fetches from a "
                            "remote node (needs --numa-nodes > 1)")
        p.add_argument("--remote-transfer-penalty", type=int, default=None,
                       help="extra cycles for coherence transfers sourced "
                            "from a remote node (needs --numa-nodes > 1)")

    def add_detector_args(p):
        p.add_argument("--detector", choices=("offline", "windowed"),
                       default=None,
                       help="detection mode: 'offline' (default) builds "
                            "the report from the whole run's samples; "
                            "'windowed' additionally streams incremental "
                            "findings mid-run (same end-of-run verdicts)")
        p.add_argument("--adaptive", action="store_true",
                       help="adaptive PMU sampling: tighten the period "
                            "when a line turns hot, back off in quiet "
                            "phases (--period sets the starting period)")

    def add_obs_flags(p):
        p.add_argument("--trace", metavar="FILE", default=None,
                       help="write a trace of the run to FILE (Chrome "
                            "trace_event JSON; a '.jsonl' suffix switches "
                            "to the JSONL format)")
        p.add_argument("--metrics", metavar="FILE", nargs="?", const="-",
                       default=None,
                       help="write run metrics in Prometheus text format "
                            "to FILE ('-' or no value: stdout)")

    run_p = sub.add_parser("run", parents=[json_parent, cache_parent],
                           help="run a workload natively")
    add_workload_args(run_p)
    add_obs_flags(run_p)

    prof_p = sub.add_parser("profile", parents=[json_parent, cache_parent],
                            help="run a workload under Cheetah")
    add_workload_args(prof_p)
    prof_p.add_argument("--period", type=int, default=None,
                        help="PMU sampling period in instructions")
    prof_p.add_argument("--true-sharing", action="store_true",
                        help="include true-sharing instances in the report")
    add_detector_args(prof_p)
    add_obs_flags(prof_p)

    trace_p = sub.add_parser(
        "trace", parents=[json_parent],
        help="run a workload and write an execution trace "
             "(Chrome trace_event, Perfetto-loadable)")
    add_workload_args(trace_p)
    trace_p.add_argument("--out", metavar="FILE", default=None,
                         help="output path (default: <workload>.trace.json)")
    trace_p.add_argument("--format", choices=("chrome", "jsonl"),
                         default=None,
                         help="trace format (default: by file suffix)")
    trace_p.add_argument("--accesses", action="store_true",
                         help="also trace individual memory accesses "
                              "(high volume; bounded by --max-events)")
    trace_p.add_argument("--max-events", type=int, default=None,
                         help="event-buffer cap (excess events are counted "
                              "as dropped)")
    trace_p.add_argument("--profile", action="store_true",
                         help="attach the PMU and Cheetah (adds pmu/"
                              "detector events)")
    trace_p.add_argument("--period", type=int, default=None,
                         help="PMU sampling period (implies --profile)")
    add_detector_args(trace_p)

    rec_p = sub.add_parser(
        "record", parents=[json_parent],
        help="run a workload and record its access stream as a "
             "self-describing trace for offline replay")
    add_workload_args(rec_p)
    rec_p.add_argument("--out", metavar="FILE", default=None,
                       help="trace path; a '.gz' suffix compresses "
                            "(default: <workload>.trace.gz)")
    rec_p.add_argument("--limit", type=int, default=None,
                       help="record at most N accesses (the meta notes "
                            "truncation)")
    rec_p.add_argument("--no-profile", dest="record_profile",
                       action="store_false", default=True,
                       help="skip the Cheetah profile (the trace then "
                            "carries no live verdict to compare replay "
                            "against)")

    replay_p = sub.add_parser(
        "replay", parents=[json_parent, cache_parent],
        help="replay a recorded trace through the machine and detector "
             "(offline, DARWIN-style second round)")
    replay_p.add_argument("trace_file", metavar="TRACE",
                          help="trace written by 'repro record' "
                               "(.trace or .trace.gz)")
    replay_p.add_argument("--period", type=int, default=None,
                          help="downsample the stream PMU-style before "
                               "the detector (default: replay every "
                               "access)")
    replay_p.add_argument("--seed", type=int, default=1,
                          help="downsampling jitter seed")
    replay_p.add_argument("--true-sharing-fraction", type=float,
                          default=None,
                          help="override the detector's true-sharing "
                               "classification threshold")

    met_p = sub.add_parser(
        "metrics", parents=[json_parent],
        help="run a workload and report simulator metrics")
    add_workload_args(met_p)
    met_p.add_argument("--out", metavar="FILE", default="-",
                       help="output path ('-': stdout)")
    met_p.add_argument("--profile", action="store_true",
                       help="attach the PMU and Cheetah (adds pmu/"
                            "detector metrics)")
    met_p.add_argument("--period", type=int, default=None,
                       help="PMU sampling period (implies --profile)")
    add_detector_args(met_p)

    pred_p = sub.add_parser(
        "predict", parents=[json_parent, cache_parent],
        help="predict a run analytically without simulating it "
             "(or cross-validate prediction: --validate)")
    pred_p.add_argument("workload", nargs="?", default=None,
                        help="workload name (omit with --validate)")
    pred_p.add_argument("--threads", type=int, default=None,
                        help="worker thread count (default: workload's)")
    pred_p.add_argument("--scale", type=float, default=1.0,
                        help="iteration-count multiplier")
    pred_p.add_argument("--fixed", action="store_true",
                        help="use the padded (bug-fixed) layout")
    pred_p.add_argument("--seed", type=int, default=11,
                        help="machine timing-jitter seed")
    pred_p.add_argument("--line-size", type=int, default=None,
                        help="cache line size in bytes (default: machine's)")
    pred_p.add_argument("--cores", type=int, default=None,
                        help="core count (default: machine's)")
    pred_p.add_argument("--kernel", choices=("fused", "vector", "auto"),
                        default=None,
                        help="burst kernel for the prefix/burst runs")
    pred_p.add_argument("--mode", choices=("predict", "sampled"),
                        default="predict",
                        help="'predict' (default): analytical model; "
                             "'sampled': simulate bursts with CIs")
    pred_p.add_argument("--check", action="store_true",
                        help="sanitize the bursts (--mode sampled only)")
    pred_p.add_argument("--period", type=int, default=None,
                        help="PMU sampling period the prediction targets")
    pred_p.add_argument("--validate", action="store_true",
                        help="cross-validate prediction against full "
                             "simulation over the ground-truth workloads")
    pred_p.add_argument("--smoke", action="store_true",
                        help="with --validate: quick CI subset")
    pred_p.add_argument("--workloads", default=None,
                        help="with --validate: comma-separated workload "
                             "subset")

    fix_p = sub.add_parser(
        "fix-check", parents=[json_parent, cache_parent],
        help="measure the real speedup of the padding fix and compare "
             "with Cheetah's prediction")
    add_workload_args(fix_p)

    cmp_p = sub.add_parser(
        "compare", parents=[json_parent, cache_parent],
        help="run Cheetah, Predator and Sheriff on a workload")
    add_workload_args(cmp_p)

    exp_p = sub.add_parser(
        "experiment", parents=[json_parent, cache_parent, jobs_parent],
        help="regenerate a paper table/figure")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS),
                       help="which artifact to regenerate")
    exp_p.add_argument("--scale", type=float, default=1.0)
    exp_p.add_argument("--trace", metavar="DIR", default=None,
                       help="write one Chrome trace per run into DIR "
                            "(forces serial execution)")
    exp_p.add_argument("--metrics", metavar="FILE", nargs="?", const="-",
                       default=None,
                       help="write metric totals aggregated over every run "
                            "as JSON to FILE ('-' or no value: stdout; "
                            "forces serial execution)")

    validate_p = sub.add_parser(
        "validate", parents=[json_parent],
        help="run the coherence sanitizer invariant suite, the "
             "differential fuzzer and the mutation self-test")
    validate_p.add_argument("--smoke", action="store_true",
                            help="short CI variant")
    validate_p.add_argument("--seed", type=int, default=None,
                            help="fuzzer base seed (use with "
                                 "--iterations 1 to triage a divergence)")
    validate_p.add_argument("--iterations", type=int, default=None,
                            help="fuzz program count")

    bench_p = sub.add_parser(
        "bench", parents=[json_parent],
        help="run the engine perf-regression bench "
             "(records BENCH_engine.json)")
    bench_p.add_argument("--repeats", type=int, default=3,
                         help="wall-clock repeats per metric (best kept)")
    bench_p.add_argument("--label", default="current",
                         help="label stored with this entry")
    bench_p.add_argument("--no-update", action="store_true",
                         help="measure and compare without rewriting "
                              "BENCH_engine.json")
    bench_p.add_argument("--service", action="store_true",
                         help="run the run-service cold/warm cache bench "
                              "instead (records BENCH_service.json)")
    bench_p.add_argument("--kernel", choices=("fused", "vector", "auto"),
                         default=None,
                         help="burst kernel to bench (default: auto)")
    bench_p.add_argument("--compare", metavar="V1,V2", default=None,
                         help="measure each listed kernel (fused,vector) "
                              "or mode (simulate,predict,sampled) and "
                              "print a speedup table instead of "
                              "recording an entry")

    cache_p = sub.add_parser(
        "cache", parents=[json_parent],
        help="inspect or maintain the persistent result store")
    cache_p.add_argument("action", choices=("stats", "gc", "clear"),
                         help="stats: entry/byte/hit counts; gc: evict by "
                              "age/count and quarantine stray tmp files; "
                              "clear: drop every entry")
    cache_p.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="result store location (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    cache_p.add_argument("--max-entries", type=int, default=None,
                         help="gc: keep at most this many newest entries")
    cache_p.add_argument("--max-age", type=float, default=None,
                         metavar="SECONDS",
                         help="gc: evict entries older than this")

    serve_p = sub.add_parser(
        "serve",
        help="run the detection daemon: HTTP job API over the result "
             "store, streaming findings, cross-run findings sink")
    serve_p.add_argument("--host", default="127.0.0.1",
                         help="bind address (default: 127.0.0.1)")
    serve_p.add_argument("--port", type=int, default=8137,
                         help="bind port; 0 picks an ephemeral port "
                              "(default: 8137)")
    serve_p.add_argument("--workers", type=int, default=2,
                         help="job worker threads (default: 2)")
    serve_p.add_argument("--max-queue", type=int, default=64,
                         help="queued-job bound; a full queue answers "
                              "429 (default: 64)")
    serve_p.add_argument("--rate", type=float, default=0.0,
                         help="global submissions/second; 0 disables "
                              "rate limiting (default: 0)")
    serve_p.add_argument("--burst", type=float, default=8.0,
                         help="global burst capacity (default: 8)")
    serve_p.add_argument("--tenant-rate", type=float, default=0.0,
                         help="per-tenant submissions/second; 0 disables "
                              "(default: 0)")
    serve_p.add_argument("--tenant-burst", type=float, default=4.0,
                         help="per-tenant burst capacity (default: 4)")
    serve_p.add_argument("--tenant-max-pending", type=int, default=0,
                         help="per-tenant cap on queued+running jobs; "
                              "0 disables (default: 0)")
    serve_p.add_argument("--tenants", default=None, metavar="A,B,...",
                         help="tenant allowlist (comma separated); "
                              "unknown tenants get 403 "
                              "(default: accept everyone)")
    serve_p.add_argument("--cache-dir", metavar="DIR", default=None,
                         help="result store location (default: "
                              "$REPRO_CACHE_DIR or ~/.cache/repro)")
    serve_p.add_argument("--sink-dir", metavar="DIR", default=None,
                         help="findings sink location (default: "
                              "<cache-dir>/sink)")
    serve_p.add_argument("--drain-timeout", type=float, default=30.0,
                         help="seconds shutdown waits for in-flight "
                              "jobs (default: 30)")
    return parser


def _print_json(data) -> None:
    print(json.dumps(data, indent=2, sort_keys=True))


def cmd_list(args) -> int:
    rows = []
    for name in all_workload_names():
        cls = get_workload(name)
        truth = cls.ground_truth
        if truth.verdict is Verdict.FALSE_SHARING:
            fs = "significant" if truth.significant else "negligible"
        else:
            fs = "-"
        rows.append({"name": name, "suite": cls.suite,
                     "threads": cls.default_threads, "false_sharing": fs})
    if args.json:
        _print_json(rows)
        return 0
    print(f"{'name':<20} {'suite':<8} {'threads':<8} false-sharing")
    for row in rows:
        print(f"{row['name']:<20} {row['suite']:<8} "
              f"{row['threads']:<8} {row['false_sharing']}")
    return 0


_VERDICT_FLAGS = {
    "false_sharing": Verdict.FALSE_SHARING,
    "true_sharing": Verdict.TRUE_SHARING,
    "none": Verdict.NONE,
}


def cmd_workloads(args) -> int:
    verdict = _VERDICT_FLAGS[args.verdict] if args.verdict else None
    rows = [workload_info(cls)
            for cls in iter_workloads(suite=args.suite, family=args.family,
                                      verdict=verdict,
                                      significant=args.significant)]
    if args.json:
        _print_json(rows)
        return 0
    print(f"{'name':<24} {'suite':<11} {'family':<18} {'threads':<8} "
          "ground truth")
    for row in rows:
        truth = row["ground_truth"]
        label = truth["verdict"]
        if truth["verdict"] == Verdict.FALSE_SHARING.value:
            label += (" (significant)" if truth["significant"]
                      else " (negligible)")
        print(f"{row['name']:<24} {row['suite']:<11} {row['family']:<18} "
              f"{row['default_threads']:<8} {label}")
    print(f"\n{len(rows)} workload(s); suites: {', '.join(suites())}; "
          f"families: {', '.join(families())}", file=sys.stderr)
    return 0


def cmd_record(args) -> int:
    from repro.trace import record_workload, save_trace
    configs = build_configs(args)
    cls = get_workload(args.workload)
    workload = cls(**configs.workload_kwargs)
    recorder, meta = record_workload(
        workload, machine_config=configs.machine,
        jitter_seed=configs.jitter_seed, limit=args.limit,
        with_cheetah=args.record_profile, cheetah_config=configs.cheetah)
    out = args.out or f"{args.workload}.trace.gz"
    written = save_trace(recorder.records, out, meta=meta)
    payload = {
        "workload": args.workload,
        "trace": out,
        "records": written,
        "truncated": bool(meta.get("truncated")),
        "live_verdict": meta.get("live_verdict"),
    }
    if args.json:
        _print_json(payload)
        return 0
    print(f"workload:      {args.workload}")
    print(f"trace:         {out}")
    print(f"records:       {written:,}"
          + (" (truncated)" if payload["truncated"] else ""))
    if payload["live_verdict"] is not None:
        print(f"live verdict:  {payload['live_verdict']}")
    return 0


def _replay_cache_key(args) -> str:
    """Content key for a replay: the trace bytes + every replay knob."""
    import hashlib
    from repro.run import SCHEMA_VERSION
    from repro.service.spec import content_key
    digest = hashlib.sha256()
    with open(args.trace_file, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return content_key({
        "kind": "replay",
        "schema_version": SCHEMA_VERSION,
        "trace_sha256": digest.hexdigest(),
        "period": args.period,
        "seed": args.seed,
        "true_sharing_fraction": args.true_sharing_fraction,
    })


def cmd_replay(args) -> int:
    from repro.service import ResultStore
    from repro.trace import load_trace, load_trace_meta, replay_outcome
    store = None
    outcome = None
    key = None
    if args.cache:
        store = ResultStore(args.cache_dir or default_cache_dir())
        key = _replay_cache_key(args)
        outcome = store.get(key)
    from_cache = outcome is not None
    if outcome is None:
        meta = load_trace_meta(args.trace_file)
        outcome = replay_outcome(
            load_trace(args.trace_file), meta,
            period=args.period, seed=args.seed,
            true_sharing_fraction=args.true_sharing_fraction)
        if store is not None:
            store.put(key, outcome)
    md = outcome.result.metadata
    if args.json:
        _print_json({
            "trace": args.trace_file,
            "verdict": md["verdict"],
            "live_verdict": md.get("live_verdict"),
            "workload": md.get("workload"),
            "objects": md["objects"],
            "trace_records": md["trace_records"],
            "replayed_samples": md["replayed_samples"],
            "machine_invalidations": md["machine_invalidations"],
            "from_cache": from_cache,
        })
        return 0 if md["verdict"] == "false sharing" else 1
    workload = md.get("workload") or {}
    if workload:
        print(f"workload:       {workload.get('name')} "
              f"(threads={workload.get('num_threads')}, "
              f"scale={workload.get('scale')})")
    print(f"trace:          {args.trace_file} "
          f"({md['trace_records']:,} records"
          + (", cached" if from_cache else "") + ")")
    print(f"replayed:       {md['replayed_samples']:,} sample(s)"
          + (f" (period {md['period']})" if md.get("period") else ""))
    print(f"invalidations:  {md['machine_invalidations']:,} "
          "(machine ground truth)")
    print(f"verdict:        {md['verdict']}")
    live = md.get("live_verdict")
    if live is not None:
        agree = "matches" if live == md["verdict"] else "DIFFERS FROM"
        print(f"live run:       {live} ({agree} replay)")
    for obj in md["objects"]:
        print(f"  {obj['label']:<28} {obj['kind']:<14} "
              f"invalidations={obj['invalidations']}")
    return 0 if md["verdict"] == "false sharing" else 1


def _session(args, configs: CLIConfigs) -> Session:
    """The one CLI-to-API bridge: every workload subcommand runs here."""
    return Session(
        args.workload,
        threads=configs.workload_kwargs["num_threads"],
        scale=configs.workload_kwargs["scale"],
        fixed=configs.workload_kwargs["fixed"],
        jitter_seed=configs.jitter_seed,
        machine=configs.machine,
        pmu=configs.pmu,
        cheetah=configs.cheetah,
        obs=configs.obs,
        check=configs.check,
    )


def _write_text(dest: str, text: str, what: str) -> None:
    if dest == "-":
        sys.stdout.write(text)
        return
    with open(dest, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"{what} written to {dest}", file=sys.stderr)


def _trace_format(path: str, explicit: Optional[str] = None) -> str:
    if explicit is not None:
        return explicit
    return "jsonl" if path.endswith(".jsonl") else "chrome"


def _write_obs_outputs(args, outcome) -> None:
    """Honor --trace/--metrics on run/profile after the main output."""
    trace_path = getattr(args, "trace", None)
    if trace_path:
        fmt = _trace_format(trace_path)
        outcome.obs.write_trace(trace_path, format=fmt)
        tracer = outcome.obs.tracer
        print(f"trace written to {trace_path} ({fmt}, "
              f"{len(tracer.events):,} events, {tracer.dropped:,} dropped)",
              file=sys.stderr)
    metrics_dest = getattr(args, "metrics", None)
    if metrics_dest:
        _write_text(metrics_dest, outcome.obs.render_prometheus(), "metrics")


def cmd_run(args) -> int:
    configs = build_configs(args)
    outcome = _session(args, configs).run()
    result = outcome.result
    # RunSummary (cache hit) and RunResult (live run) both answer these;
    # invalidations go through the outcome so a cached run — which has
    # no machine — reports its recorded ground truth.
    if args.json:
        _print_json({
            "workload": args.workload,
            "runtime": outcome.runtime,
            "threads": len(result.threads) - 1,
            "accesses": result.total_accesses,
            "invalidations": outcome.invalidations,
            "from_cache": outcome.from_cache,
        })
        _write_obs_outputs(args, outcome)
        return 0
    print(f"workload:       {args.workload}")
    print(f"runtime:        {outcome.runtime:,} cycles")
    print(f"threads:        {len(result.threads) - 1} workers")
    print(f"accesses:       {result.total_accesses:,}")
    print(f"invalidations:  {outcome.invalidations:,} (ground truth)")
    _write_obs_outputs(args, outcome)
    return 0


def cmd_profile(args) -> int:
    from repro.core.advisor import advise
    from repro.core.export import report_to_json
    configs = build_configs(args)
    outcome = _session(args, configs).profile()
    if args.json:
        print(report_to_json(outcome.report))
        _write_obs_outputs(args, outcome)
        return 0 if outcome.report.significant else 1
    print(outcome.report.render())
    for instance in outcome.report.significant:
        advice = advise(instance)
        if advice is not None:
            print()
            print(advice.render())
    _write_obs_outputs(args, outcome)
    return 0 if outcome.report.significant else 1


def cmd_trace(args) -> int:
    configs = build_configs(args)
    session = _session(args, configs)
    profiled = (args.profile or args.period is not None
                or args.detector is not None or args.adaptive)
    outcome = session.profile() if profiled else session.run()
    out = args.out or f"{args.workload}.trace.json"
    fmt = _trace_format(out, args.format)
    outcome.obs.write_trace(out, format=fmt)
    tracer = outcome.obs.tracer
    if args.json:
        _print_json({
            "workload": args.workload,
            "runtime": outcome.runtime,
            "events": len(tracer.events),
            "dropped": tracer.dropped,
            "trace": out,
            "format": fmt,
        })
        return 0
    print(f"workload:  {args.workload}")
    print(f"runtime:   {outcome.runtime:,} cycles")
    print(f"events:    {len(tracer.events):,} retained, "
          f"{tracer.dropped:,} dropped")
    print(f"trace:     {out} ({fmt})")
    if fmt == "chrome":
        print("open with https://ui.perfetto.dev ('Open trace file')")
    return 0


def cmd_metrics(args) -> int:
    configs = build_configs(args)
    session = _session(args, configs)
    profiled = (args.profile or args.period is not None
                or args.detector is not None or args.adaptive)
    outcome = session.profile() if profiled else session.run()
    if args.json:
        text = json.dumps(outcome.metrics, indent=2, sort_keys=True) + "\n"
    else:
        text = outcome.obs.render_prometheus()
    _write_text(args.out, text, "metrics")
    return 0


def cmd_predict(args) -> int:
    from repro.errors import ConfigError
    if args.validate:
        from repro.predict import validate as predict_validate
        argv = []
        if args.smoke:
            argv.append("--smoke")
        if args.workloads:
            argv += ["--workloads", args.workloads]
        if args.seed != 11:
            argv += ["--seed", str(args.seed)]
        if args.json:
            argv.append("--json")
        return predict_validate.main(argv)
    if not args.workload:
        raise ConfigError(
            "predict needs a workload name (or --validate to run the "
            "cross-validation harness)")
    configs = build_configs(args)
    outcome = _session(args, configs).profile()
    result = outcome.result
    meta = result.metadata
    if args.json:
        _print_json({
            "workload": args.workload,
            "mode": meta.get("mode"),
            "predicted": outcome.predicted,
            "runtime": outcome.runtime,
            "accesses": result.total_accesses,
            "invalidations": outcome.invalidations,
            "significant_instances": len(outcome.report.significant),
            "predicted_slowdown": meta.get("predicted_slowdown"),
            "profile": meta.get("profile"),
            "sampled": meta.get("sampled"),
            "from_cache": outcome.from_cache,
        })
        return 0 if outcome.report.significant else 1
    print(f"workload:       {args.workload}")
    print(f"mode:           {meta.get('mode')} (estimates, not a full "
          "simulation)")
    print(f"runtime:        {outcome.runtime:,} cycles (predicted)")
    print(f"accesses:       {result.total_accesses:,} (predicted)")
    print(f"invalidations:  {outcome.invalidations:,} (predicted)")
    profile_meta = meta.get("profile")
    if profile_meta:
        print(f"profiled:       {profile_meta['profiled_accesses']:,} "
              f"accesses over {profile_meta['calibration_points']} "
              f"prefix run(s) at scale(s) "
              f"{profile_meta.get('prefix_scales')}")
    sampled_meta = meta.get("sampled")
    if sampled_meta:
        ci = sampled_meta["ci95"]
        print(f"bursts:         {sampled_meta['bursts']} at scale "
              f"{sampled_meta['burst_scale']:g} (factor "
              f"{sampled_meta['factor']:g}); 95% CI runtime "
              f"+-{ci['runtime']:,.0f}, invalidations "
              f"+-{ci['invalidations']:,.0f}")
    print()
    print(outcome.report.render())
    return 0 if outcome.report.significant else 1


def cmd_fix_check(args) -> int:
    configs = build_configs(args)
    cls = get_workload(args.workload)
    kwargs = dict(num_threads=configs.workload_kwargs["num_threads"],
                  scale=configs.workload_kwargs["scale"])
    seed = configs.jitter_seed
    original = cached_run(cls, jitter_seed=seed,
                          machine_config=configs.machine, **kwargs)
    fixed = cached_run(cls, fixed=True, jitter_seed=seed,
                       machine_config=configs.machine, **kwargs)
    profiled = cached_run(cls, jitter_seed=seed,
                          machine_config=configs.machine,
                          with_cheetah=True, **kwargs)
    real = original.runtime / fixed.runtime
    best = profiled.report.best()
    if args.json:
        _print_json({
            "workload": args.workload,
            "runtime_original": original.runtime,
            "runtime_fixed": fixed.runtime,
            "real_improvement": real,
            "predicted_improvement":
                best.improvement if best is not None else None,
        })
        return 0 if best is not None else 1
    print(f"runtime (original): {original.runtime:,} cycles")
    print(f"runtime (fixed):    {fixed.runtime:,} cycles")
    print(f"real improvement:   {real:.3f}x")
    if best is None:
        print("Cheetah predicted:  (no significant instance reported)")
        return 1
    diff = (best.improvement - real) / real * 100
    print(f"Cheetah predicted:  {best.improvement:.3f}x ({diff:+.1f}%)")
    return 0


def cmd_compare(args) -> int:
    configs = build_configs(args)
    cls = get_workload(args.workload)
    kwargs = dict(num_threads=configs.workload_kwargs["num_threads"],
                  scale=configs.workload_kwargs["scale"])
    seed = configs.jitter_seed
    machine = configs.machine
    # Observer runs must execute (their findings are read off the live
    # allocator); the native and Cheetah runs go through the cache.
    native = cached_run(cls, jitter_seed=seed, machine_config=machine,
                        **kwargs)
    cheetah = cached_run(cls, jitter_seed=seed, machine_config=machine,
                         with_cheetah=True, **kwargs)
    predator = PredatorDetector(min_invalidations=40)
    predator_run = run_workload(cls(**kwargs), jitter_seed=seed,
                                machine_config=machine, observer=predator)
    sheriff = SheriffDetector()
    sheriff_run = run_workload(cls(**kwargs), jitter_seed=seed,
                               machine_config=machine, observer=sheriff)

    rows = [
        ("Cheetah", bool(cheetah.report.significant),
         cheetah.runtime / native.runtime),
        ("Predator", bool(predator.false_sharing_findings(
            predator_run.result.allocator, predator_run.result.symbols)),
         predator_run.runtime / native.runtime),
        ("Sheriff", bool(sheriff.false_sharing_findings(
            sheriff_run.result.allocator, sheriff_run.result.symbols)),
         sheriff_run.runtime / native.runtime),
    ]
    if args.json:
        _print_json([{"tool": tool, "detects_false_sharing": detected,
                      "overhead": overhead}
                     for tool, detected, overhead in rows])
        return 0
    print(f"{'tool':<10} {'detects FS':<12} overhead")
    for tool, detected, overhead in rows:
        print(f"{tool:<10} {'yes' if detected else 'no':<12} "
              f"{overhead:.2f}x")
    return 0


def _write_experiment_obs(args, handle) -> None:
    """Write per-run traces / aggregated metrics collected by a default
    ObsConfig pushed around an experiment."""
    collected = handle.collected
    if not collected:
        print("note: no runs were observed", file=sys.stderr)
        return
    if args.trace:
        os.makedirs(args.trace, exist_ok=True)
        written = 0
        for index, obs in enumerate(collected):
            if obs.tracer is None:
                continue
            path = os.path.join(args.trace, f"run-{index:04d}.trace.json")
            obs.write_trace(path, format="chrome")
            written += 1
        print(f"{written} trace(s) written to {args.trace}", file=sys.stderr)
    if args.metrics:
        aggregate = aggregate_snapshots(
            [obs.metrics_snapshot() for obs in collected])
        aggregate["runs"] = len(collected)
        text = json.dumps(aggregate, indent=2, sort_keys=True) + "\n"
        _write_text(args.metrics, text, "aggregated metrics")


def _report_failures(result) -> None:
    for failure in getattr(result, "failures", ()):
        print(f"warning: {failure.render()}", file=sys.stderr)


def _report_cache(args, rendered: str) -> int:
    """Emit the experiment output plus the ambient service's cache stats."""
    service = current_service()
    stats = service.stats() if service is not None else None
    if args.json:
        _print_json({"name": args.name, "render": rendered,
                     "cache": stats})
    else:
        print(rendered)
        if stats is not None and service.enabled:
            total = stats["hits"] + stats["misses"]
            ratio = stats["hits"] / total if total else 0.0
            print(f"cache: {stats['hits']} hit(s), {stats['misses']} "
                  f"miss(es) ({ratio:.0%} served from cache) at "
                  f"{stats['root']}", file=sys.stderr)
    return 0


def cmd_experiment(args) -> int:
    configs = build_configs(args)
    jobs = getattr(args, "jobs", None)
    handle = None
    if configs.obs is not None:
        if jobs and jobs > 1:
            print("note: --trace/--metrics force serial execution; "
                  "ignoring --jobs", file=sys.stderr)
            jobs = None
        handle = push_default(configs.obs)
    try:
        if jobs and jobs > 1:
            runner = parallel.RUNNERS.get(args.name)
            if runner is None:
                print(f"note: '{args.name}' has no parallel runner; "
                      "running serially", file=sys.stderr)
            else:
                result = runner(scale=args.scale, jobs=jobs)
                _report_failures(result)
                return _report_cache(args, result.render())
        result = EXPERIMENTS[args.name](args)
        rendered = result.render()
    finally:
        if handle is not None:
            pop_default()
    if handle is not None:
        _write_experiment_obs(args, handle)
    return _report_cache(args, rendered)


def cmd_validate(args) -> int:
    from repro.sim.check import validate
    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.iterations is not None:
        argv += ["--iterations", str(args.iterations)]
    code = validate.main(argv)
    if args.json:
        _print_json({"command": "validate", "ok": code == 0})
    return code


def cmd_bench(args) -> int:
    if args.service:
        from repro.service import bench as service_bench
        argv = ["--label", args.label]
        if args.no_update:
            argv.append("--no-update")
        code = service_bench.main(argv)
    else:
        from repro import bench
        argv = ["--repeats", str(args.repeats), "--label", args.label]
        if args.no_update:
            argv.append("--no-update")
        if args.kernel:
            argv += ["--kernel", args.kernel]
        if args.compare:
            argv += ["--compare", args.compare]
        code = bench.main(argv)
    if args.json:
        _print_json({"command": "bench", "ok": code == 0})
    return code


def cmd_cache(args) -> int:
    from repro.service import ResultStore
    store = ResultStore(args.cache_dir or default_cache_dir())
    if args.action == "stats":
        stats = store.stats()
        if args.json:
            _print_json(stats)
            return 0
        print(f"store:             {stats['root']} "
              f"(format {stats['format']})")
        print(f"entries:           {stats['entries']}")
        print(f"bytes:             {stats['bytes']:,}")
        print(f"quarantined files: {stats['quarantined_files']}")
        return 0
    if args.action == "gc":
        result = store.gc(max_entries=args.max_entries,
                          max_age_seconds=args.max_age)
        if args.json:
            _print_json(result)
            return 0
        print(f"evicted {result['evicted']} entr(ies), quarantined "
              f"{result['tmp_quarantined']} stray tmp file(s); "
              f"{result['remaining']} entr(ies) remain")
        return 0
    removed = store.clear()
    if args.json:
        _print_json({"removed": removed})
        return 0
    print(f"removed {removed} entr(ies)")
    return 0


def cmd_serve(args) -> int:
    from repro.errors import ConfigError, ServiceError
    from repro.service.daemon import Daemon, ServeConfig
    tenants = tuple(
        name.strip() for name in (args.tenants or "").split(",")
        if name.strip())
    # Startup failures (bad knobs, port in use) are operator errors:
    # one diagnostic line and exit 2, never a traceback.
    try:
        config = ServeConfig(
            host=args.host, port=args.port, workers=args.workers,
            max_queue=args.max_queue, rate=args.rate, burst=args.burst,
            tenant_rate=args.tenant_rate, tenant_burst=args.tenant_burst,
            tenant_max_pending=args.tenant_max_pending, tenants=tenants,
            cache_dir=args.cache_dir, sink_dir=args.sink_dir,
            drain_timeout=args.drain_timeout)
        daemon = Daemon(config)
    except (ConfigError, ServiceError, OSError) as exc:
        print(f"repro serve: {exc}", file=sys.stderr)
        return 2
    print(f"repro serve: listening on http://{config.host}:{daemon.port}",
          file=sys.stderr, flush=True)
    try:
        daemon.serve_forever()
    except KeyboardInterrupt:
        print("repro serve: shutting down (draining jobs)...",
              file=sys.stderr, flush=True)
    daemon.shutdown()
    return 0


COMMANDS = {
    "list": cmd_list,
    "workloads": cmd_workloads,
    "record": cmd_record,
    "replay": cmd_replay,
    "run": cmd_run,
    "profile": cmd_profile,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "predict": cmd_predict,
    "fix-check": cmd_fix_check,
    "compare": cmd_compare,
    "experiment": cmd_experiment,
    "validate": cmd_validate,
    "bench": cmd_bench,
    "cache": cmd_cache,
    "serve": cmd_serve,
}


@contextmanager
def _maybe_service(args) -> Iterator[None]:
    """Push an ambient run service for subcommands that simulate.

    Commands carrying the cache flags (run/profile/fix-check/compare/
    experiment) get a :class:`~repro.service.RunService` rooted at
    ``--cache-dir`` for the duration of the command; ``--no-cache``
    pushes it disabled, so every run executes and nothing is stored.
    """
    if not hasattr(args, "cache"):
        yield
        return
    service = RunService(cache_dir=getattr(args, "cache_dir", None),
                         enabled=args.cache,
                         jobs=getattr(args, "jobs", None))
    with using_service(service):
        yield


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    with _maybe_service(args):
        return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
