"""Command-line interface.

::

    python -m repro list
    python -m repro run linear_regression --threads 8
    python -m repro profile linear_regression --threads 16 --period 128
    python -m repro trace histogram --out histogram.trace.json
    python -m repro metrics linear_regression --profile
    python -m repro fix-check streamcluster --threads 8
    python -m repro compare histogram
    python -m repro experiment table1 --scale 0.5
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro import __version__
from repro.api import Session
from repro.baselines.predator import PredatorDetector
from repro.baselines.sheriff import SheriffDetector
from repro.config import CLIConfigs, build_configs
from repro.experiments import (
    assumptions, comparison, figure1, figure4, figure5, figure7, linesize,
    parallel, scaling, synchronization, table1,
)
from repro.obs import aggregate_snapshots, pop_default, push_default
from repro.run import run_workload
from repro.workloads import all_workload_names, get_workload

EXPERIMENTS = {
    "figure1": lambda args: figure1.run(scale=args.scale),
    "figure4": lambda args: figure4.run(scale=args.scale),
    "figure5": lambda args: figure5.run(scale=args.scale),
    "figure7": lambda args: figure7.run(scale=args.scale),
    "table1": lambda args: table1.run(scale=args.scale),
    "comparison": lambda args: comparison.run(scale=args.scale),
    "oversubscription": lambda args: assumptions.run_oversubscription(),
    "finite-cache": lambda args: assumptions.run_finite_cache(),
    "linesize": lambda args: linesize.run(scale=args.scale),
    "scaling": lambda args: scaling.run(scale=args.scale),
    "synchronization": lambda args: synchronization.run(),
}


def _run_all(args):
    from repro.experiments import full_report
    return full_report.run(
        scale=args.scale,
        progress=lambda title: print(f"... {title}", file=sys.stderr))


EXPERIMENTS["all"] = _run_all


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Cheetah (CGO'16) reproduction: false sharing "
                    "detection on a simulated multicore.")
    parser.add_argument("--version", action="version",
                        version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available workloads")

    def add_workload_args(p):
        p.add_argument("workload", help="workload name (see 'list')")
        p.add_argument("--threads", type=int, default=None,
                       help="worker thread count (default: workload's)")
        p.add_argument("--scale", type=float, default=1.0,
                       help="iteration-count multiplier")
        p.add_argument("--fixed", action="store_true",
                       help="use the padded (bug-fixed) layout")
        p.add_argument("--seed", type=int, default=11,
                       help="machine timing-jitter seed")
        p.add_argument("--line-size", type=int, default=None,
                       help="cache line size in bytes (default: machine's)")
        p.add_argument("--cores", type=int, default=None,
                       help="core count (default: machine's)")

    def add_obs_flags(p):
        p.add_argument("--trace", metavar="FILE", default=None,
                       help="write a trace of the run to FILE (Chrome "
                            "trace_event JSON; a '.jsonl' suffix switches "
                            "to the JSONL format)")
        p.add_argument("--metrics", metavar="FILE", nargs="?", const="-",
                       default=None,
                       help="write run metrics in Prometheus text format "
                            "to FILE ('-' or no value: stdout)")

    run_p = sub.add_parser("run", help="run a workload natively")
    add_workload_args(run_p)
    add_obs_flags(run_p)

    prof_p = sub.add_parser("profile", help="run a workload under Cheetah")
    add_workload_args(prof_p)
    prof_p.add_argument("--period", type=int, default=None,
                        help="PMU sampling period in instructions")
    prof_p.add_argument("--true-sharing", action="store_true",
                        help="include true-sharing instances in the report")
    prof_p.add_argument("--json", action="store_true",
                        help="emit the report as JSON instead of text")
    add_obs_flags(prof_p)

    trace_p = sub.add_parser(
        "trace", help="run a workload and write an execution trace "
                      "(Chrome trace_event, Perfetto-loadable)")
    add_workload_args(trace_p)
    trace_p.add_argument("--out", metavar="FILE", default=None,
                         help="output path (default: <workload>.trace.json)")
    trace_p.add_argument("--format", choices=("chrome", "jsonl"),
                         default=None,
                         help="trace format (default: by file suffix)")
    trace_p.add_argument("--accesses", action="store_true",
                         help="also trace individual memory accesses "
                              "(high volume; bounded by --max-events)")
    trace_p.add_argument("--max-events", type=int, default=None,
                         help="event-buffer cap (excess events are counted "
                              "as dropped)")
    trace_p.add_argument("--profile", action="store_true",
                         help="attach the PMU and Cheetah (adds pmu/"
                              "detector events)")
    trace_p.add_argument("--period", type=int, default=None,
                         help="PMU sampling period (implies --profile)")

    met_p = sub.add_parser(
        "metrics", help="run a workload and report simulator metrics")
    add_workload_args(met_p)
    met_p.add_argument("--out", metavar="FILE", default="-",
                       help="output path ('-': stdout)")
    met_p.add_argument("--json", action="store_true",
                       help="emit the snapshot as JSON instead of "
                            "Prometheus text")
    met_p.add_argument("--profile", action="store_true",
                       help="attach the PMU and Cheetah (adds pmu/"
                            "detector metrics)")
    met_p.add_argument("--period", type=int, default=None,
                       help="PMU sampling period (implies --profile)")

    fix_p = sub.add_parser(
        "fix-check",
        help="measure the real speedup of the padding fix and compare "
             "with Cheetah's prediction")
    add_workload_args(fix_p)

    cmp_p = sub.add_parser(
        "compare", help="run Cheetah, Predator and Sheriff on a workload")
    add_workload_args(cmp_p)

    exp_p = sub.add_parser("experiment",
                           help="regenerate a paper table/figure")
    exp_p.add_argument("name", choices=sorted(EXPERIMENTS),
                       help="which artifact to regenerate")
    exp_p.add_argument("--scale", type=float, default=1.0)
    exp_p.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="fan independent experiment cells over N processes "
             f"(supported: {', '.join(sorted(parallel.RUNNERS))}; "
             "default: serial)")
    exp_p.add_argument("--trace", metavar="DIR", default=None,
                       help="write one Chrome trace per run into DIR "
                            "(forces serial execution)")
    exp_p.add_argument("--metrics", metavar="FILE", nargs="?", const="-",
                       default=None,
                       help="write metric totals aggregated over every run "
                            "as JSON to FILE ('-' or no value: stdout; "
                            "forces serial execution)")

    validate_p = sub.add_parser(
        "validate",
        help="run the coherence sanitizer invariant suite, the "
             "differential fuzzer and the mutation self-test")
    validate_p.add_argument("--smoke", action="store_true",
                            help="short CI variant")
    validate_p.add_argument("--seed", type=int, default=None,
                            help="fuzzer base seed (use with "
                                 "--iterations 1 to triage a divergence)")
    validate_p.add_argument("--iterations", type=int, default=None,
                            help="fuzz program count")

    bench_p = sub.add_parser(
        "bench", help="run the engine perf-regression bench "
                      "(records BENCH_engine.json)")
    bench_p.add_argument("--repeats", type=int, default=3,
                         help="wall-clock repeats per metric (best kept)")
    bench_p.add_argument("--label", default="current",
                         help="label stored with this entry")
    bench_p.add_argument("--no-update", action="store_true",
                         help="measure and compare without rewriting "
                              "BENCH_engine.json")
    return parser


def cmd_list(args) -> int:
    print(f"{'name':<20} {'suite':<8} {'threads':<8} false-sharing")
    for name in all_workload_names():
        cls = get_workload(name)
        if cls.documented_false_sharing:
            fs = ("significant" if cls.significant_false_sharing
                  else "negligible")
        else:
            fs = "-"
        print(f"{name:<20} {cls.suite:<8} {cls.default_threads:<8} {fs}")
    return 0


def _session(args, configs: CLIConfigs) -> Session:
    """The one CLI-to-API bridge: every workload subcommand runs here."""
    return Session(
        args.workload,
        threads=configs.workload_kwargs["num_threads"],
        scale=configs.workload_kwargs["scale"],
        fixed=configs.workload_kwargs["fixed"],
        jitter_seed=configs.jitter_seed,
        machine=configs.machine,
        pmu=configs.pmu,
        cheetah=configs.cheetah,
        obs=configs.obs,
    )


def _write_text(dest: str, text: str, what: str) -> None:
    if dest == "-":
        sys.stdout.write(text)
        return
    with open(dest, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"{what} written to {dest}", file=sys.stderr)


def _trace_format(path: str, explicit: Optional[str] = None) -> str:
    if explicit is not None:
        return explicit
    return "jsonl" if path.endswith(".jsonl") else "chrome"


def _write_obs_outputs(args, outcome) -> None:
    """Honor --trace/--metrics on run/profile after the main output."""
    trace_path = getattr(args, "trace", None)
    if trace_path:
        fmt = _trace_format(trace_path)
        outcome.obs.write_trace(trace_path, format=fmt)
        tracer = outcome.obs.tracer
        print(f"trace written to {trace_path} ({fmt}, "
              f"{len(tracer.events):,} events, {tracer.dropped:,} dropped)",
              file=sys.stderr)
    metrics_dest = getattr(args, "metrics", None)
    if metrics_dest:
        _write_text(metrics_dest, outcome.obs.render_prometheus(), "metrics")


def cmd_run(args) -> int:
    configs = build_configs(args)
    outcome = _session(args, configs).run()
    result = outcome.result
    print(f"workload:       {args.workload}")
    print(f"runtime:        {result.runtime:,} cycles")
    print(f"threads:        {len(result.threads) - 1} workers")
    print(f"accesses:       {result.total_accesses:,}")
    print(f"invalidations:  "
          f"{result.machine.directory.total_invalidations():,} "
          "(ground truth)")
    _write_obs_outputs(args, outcome)
    return 0


def cmd_profile(args) -> int:
    from repro.core.advisor import advise
    from repro.core.export import report_to_json
    configs = build_configs(args)
    outcome = _session(args, configs).profile()
    if args.json:
        print(report_to_json(outcome.report))
        _write_obs_outputs(args, outcome)
        return 0 if outcome.report.significant else 1
    print(outcome.report.render())
    for instance in outcome.report.significant:
        advice = advise(instance)
        if advice is not None:
            print()
            print(advice.render())
    _write_obs_outputs(args, outcome)
    return 0 if outcome.report.significant else 1


def cmd_trace(args) -> int:
    configs = build_configs(args)
    session = _session(args, configs)
    profiled = args.profile or args.period is not None
    outcome = session.profile() if profiled else session.run()
    out = args.out or f"{args.workload}.trace.json"
    fmt = _trace_format(out, args.format)
    outcome.obs.write_trace(out, format=fmt)
    tracer = outcome.obs.tracer
    print(f"workload:  {args.workload}")
    print(f"runtime:   {outcome.runtime:,} cycles")
    print(f"events:    {len(tracer.events):,} retained, "
          f"{tracer.dropped:,} dropped")
    print(f"trace:     {out} ({fmt})")
    if fmt == "chrome":
        print("open with https://ui.perfetto.dev ('Open trace file')")
    return 0


def cmd_metrics(args) -> int:
    configs = build_configs(args)
    session = _session(args, configs)
    profiled = args.profile or args.period is not None
    outcome = session.profile() if profiled else session.run()
    if args.json:
        text = json.dumps(outcome.metrics, indent=2, sort_keys=True) + "\n"
    else:
        text = outcome.obs.render_prometheus()
    _write_text(args.out, text, "metrics")
    return 0


def cmd_fix_check(args) -> int:
    configs = build_configs(args)
    cls = get_workload(args.workload)
    kwargs = dict(num_threads=configs.workload_kwargs["num_threads"],
                  scale=configs.workload_kwargs["scale"])
    seed = configs.jitter_seed
    original = run_workload(cls(**kwargs), jitter_seed=seed,
                            machine_config=configs.machine)
    fixed = run_workload(cls(fixed=True, **kwargs), jitter_seed=seed,
                         machine_config=configs.machine)
    profiled = run_workload(cls(**kwargs), jitter_seed=seed,
                            machine_config=configs.machine,
                            with_cheetah=True)
    real = original.runtime / fixed.runtime
    best = profiled.report.best()
    print(f"runtime (original): {original.runtime:,} cycles")
    print(f"runtime (fixed):    {fixed.runtime:,} cycles")
    print(f"real improvement:   {real:.3f}x")
    if best is None:
        print("Cheetah predicted:  (no significant instance reported)")
        return 1
    diff = (best.improvement - real) / real * 100
    print(f"Cheetah predicted:  {best.improvement:.3f}x ({diff:+.1f}%)")
    return 0


def cmd_compare(args) -> int:
    configs = build_configs(args)
    cls = get_workload(args.workload)
    kwargs = dict(num_threads=configs.workload_kwargs["num_threads"],
                  scale=configs.workload_kwargs["scale"])
    seed = configs.jitter_seed
    machine = configs.machine
    native = run_workload(cls(**kwargs), jitter_seed=seed,
                          machine_config=machine)

    cheetah = run_workload(cls(**kwargs), jitter_seed=seed,
                           machine_config=machine, with_cheetah=True)
    predator = PredatorDetector(min_invalidations=40)
    predator_run = run_workload(cls(**kwargs), jitter_seed=seed,
                                machine_config=machine, observer=predator)
    sheriff = SheriffDetector()
    sheriff_run = run_workload(cls(**kwargs), jitter_seed=seed,
                               machine_config=machine, observer=sheriff)

    rows = [
        ("Cheetah", bool(cheetah.report.significant),
         cheetah.runtime / native.runtime),
        ("Predator", bool(predator.false_sharing_findings(
            predator_run.result.allocator, predator_run.result.symbols)),
         predator_run.runtime / native.runtime),
        ("Sheriff", bool(sheriff.false_sharing_findings(
            sheriff_run.result.allocator, sheriff_run.result.symbols)),
         sheriff_run.runtime / native.runtime),
    ]
    print(f"{'tool':<10} {'detects FS':<12} overhead")
    for tool, detected, overhead in rows:
        print(f"{tool:<10} {'yes' if detected else 'no':<12} "
              f"{overhead:.2f}x")
    return 0


def _write_experiment_obs(args, handle) -> None:
    """Write per-run traces / aggregated metrics collected by a default
    ObsConfig pushed around an experiment."""
    collected = handle.collected
    if not collected:
        print("note: no runs were observed", file=sys.stderr)
        return
    if args.trace:
        os.makedirs(args.trace, exist_ok=True)
        written = 0
        for index, obs in enumerate(collected):
            if obs.tracer is None:
                continue
            path = os.path.join(args.trace, f"run-{index:04d}.trace.json")
            obs.write_trace(path, format="chrome")
            written += 1
        print(f"{written} trace(s) written to {args.trace}", file=sys.stderr)
    if args.metrics:
        aggregate = aggregate_snapshots(
            [obs.metrics_snapshot() for obs in collected])
        aggregate["runs"] = len(collected)
        text = json.dumps(aggregate, indent=2, sort_keys=True) + "\n"
        _write_text(args.metrics, text, "aggregated metrics")


def cmd_experiment(args) -> int:
    configs = build_configs(args)
    jobs = getattr(args, "jobs", None)
    handle = None
    if configs.obs is not None:
        if jobs and jobs > 1:
            print("note: --trace/--metrics force serial execution; "
                  "ignoring --jobs", file=sys.stderr)
            jobs = None
        handle = push_default(configs.obs)
    try:
        if jobs and jobs > 1:
            runner = parallel.RUNNERS.get(args.name)
            if runner is None:
                print(f"note: '{args.name}' has no parallel runner; "
                      "running serially", file=sys.stderr)
            else:
                result = runner(scale=args.scale, jobs=jobs)
                print(result.render())
                return 0
        result = EXPERIMENTS[args.name](args)
        print(result.render())
    finally:
        if handle is not None:
            pop_default()
    if handle is not None:
        _write_experiment_obs(args, handle)
    return 0


def cmd_validate(args) -> int:
    from repro.sim.check import validate
    argv = []
    if args.smoke:
        argv.append("--smoke")
    if args.seed is not None:
        argv += ["--seed", str(args.seed)]
    if args.iterations is not None:
        argv += ["--iterations", str(args.iterations)]
    return validate.main(argv)


def cmd_bench(args) -> int:
    from repro import bench
    argv = ["--repeats", str(args.repeats), "--label", args.label]
    if args.no_update:
        argv.append("--no-update")
    return bench.main(argv)


COMMANDS = {
    "list": cmd_list,
    "run": cmd_run,
    "profile": cmd_profile,
    "trace": cmd_trace,
    "metrics": cmd_metrics,
    "fix-check": cmd_fix_check,
    "compare": cmd_compare,
    "experiment": cmd_experiment,
    "validate": cmd_validate,
    "bench": cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
