"""Service bench: cold vs. warm experiment wall-clock.

Measures the tentpole claim directly — the second identical
``repro experiment`` is served from the result store and must be at
least an order of magnitude faster than the first — and records the
numbers in ``BENCH_service.json`` at the repo root so successive PRs
can track the cache's effectiveness.

Each scenario runs twice against a *fresh* store: the cold pass
simulates and populates, the warm pass replays. Both passes must render
byte-identical output (asserted here, not just in tests), and the warm
pass's lookups must be served ≥90% from cache.

Use via ``python tools/bench_service.py`` or ``repro bench --service``.
"""

from __future__ import annotations

import argparse
import json
import platform
import shutil
import tempfile
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import ServiceError
from repro.service import RunService, using_service

BENCH_FILE = "BENCH_service.json"

#: Experiment scenarios exercised against a fresh store.
SCENARIOS = (
    ("table1(scale=0.2)", "table1",
     dict(scale=0.2, thread_counts=(4, 2), seeds=(11, 22))),
    ("scaling(scale=0.2)", "scaling",
     dict(scale=0.2, thread_counts=(2, 4, 8))),
)


def _run_scenario(name: str, kwargs: Dict[str, object]) -> str:
    from repro.experiments import scaling, table1
    module = {"table1": table1, "scaling": scaling}[name]
    return module.run(**kwargs).render()


def bench_scenario(label: str, name: str, kwargs: Dict[str, object],
                   cache_dir: Path) -> Dict[str, object]:
    service = RunService(cache_dir=cache_dir)
    with using_service(service):
        start = time.perf_counter()
        cold_text = _run_scenario(name, kwargs)
        cold = time.perf_counter() - start
        start = time.perf_counter()
        warm_text = _run_scenario(name, kwargs)
        warm = time.perf_counter() - start
    if warm_text != cold_text:
        raise ServiceError(
            f"{label}: warm-cache output diverged from cold output")
    stats = service.stats()
    return {
        "cold_seconds": round(cold, 4),
        "warm_seconds": round(warm, 4),
        "speedup": round(cold / warm, 1) if warm else float("inf"),
        "hits": stats["hits"],
        "misses": stats["misses"],
        "hit_ratio": round(service.hit_ratio(), 4),
        "entries": stats["entries"],
        "identical_output": True,
    }


def run_bench() -> Dict[str, object]:
    """Run every scenario against a throwaway store; returns the entry."""
    scenarios = {}
    for label, name, kwargs in SCENARIOS:
        cache_dir = Path(tempfile.mkdtemp(prefix="repro-bench-cache-"))
        try:
            scenarios[label] = bench_scenario(label, name, kwargs, cache_dir)
        finally:
            shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "scenarios": scenarios,
    }


def load_entries(path: Path) -> List[Dict[str, object]]:
    if not path.exists():
        return []
    return json.loads(path.read_text())["entries"]


def save_entries(path: Path, entries: List[Dict[str, object]]) -> None:
    path.write_text(json.dumps({"entries": entries}, indent=1) + "\n")


def render_entry(entry: Dict[str, object]) -> str:
    lines = []
    for label, s in entry["scenarios"].items():
        lines.append(
            f"{label:<22} cold {s['cold_seconds']:>8.3f}s  "
            f"warm {s['warm_seconds']:>8.4f}s  "
            f"{s['speedup']:>7.1f}x  hit-ratio {s['hit_ratio']:.0%}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench-service",
        description="Run-service cold/warm bench; records "
                    f"{BENCH_FILE} at the repo root.")
    parser.add_argument("--label", default="current",
                        help="label stored with this entry")
    parser.add_argument("--no-update", action="store_true",
                        help="measure and compare without rewriting "
                             f"{BENCH_FILE}")
    parser.add_argument("--path", type=Path, default=None,
                        help=f"override the {BENCH_FILE} location")
    args = parser.parse_args(argv)

    path = args.path or Path(__file__).resolve().parents[3] / BENCH_FILE
    entries = load_entries(path)
    entry = run_bench()
    entry["label"] = args.label
    print(render_entry(entry))
    worst = min(s["speedup"] for s in entry["scenarios"].values())
    print(f"worst warm speedup: {worst:.1f}x (target: >=10x)")
    if not args.no_update:
        save_entries(path, entries + [entry])
        print(f"recorded entry '{args.label}' -> {path}")
    return 0 if worst >= 10.0 else 1


if __name__ == "__main__":
    raise SystemExit(main())
