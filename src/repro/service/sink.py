"""Findings sink: append-only columnar store with cross-run aggregation.

The result store (:mod:`repro.service.store`) answers "what was the
outcome of *this exact spec*?" — one blob per content key. A fleet
deployment asks different questions: *across every run we have served,
which cache lines draw the most invalidations? How do verdicts break
down per workload? What overhead are profiled runs paying?* Answering
those from per-run blobs means re-parsing every payload per query.

:class:`FindingsSink` stores the queryable slice of each outcome in
columnar form instead. Rows are flushed in immutable *segments*::

    <root>/segments/seg-00000042/
        job_id.jsonl      ─┐
        workload.jsonl     │ one JSON value per line; line i of every
        line.jsonl         │ column is row i of the segment
        ...               ─┘
        MANIFEST.json     (written last: row count + column list)

The manifest is committed atomically (tmp + ``os.replace``) *after*
every column file is on disk, so a crash mid-flush leaves an orphan
directory that readers skip — never a torn segment. Within a segment
all column files are row-aligned by construction; the manifest's row
count is validated against each column on load.

Three row kinds share one schema (absent fields are ``null``):

- ``"run"`` — one row per recorded outcome: runtime, ground-truth
  invalidations, and PMU overhead for freshly profiled runs;
- ``"finding"`` — one row per incremental windowed-detector finding
  (replayed identically from cache thanks to outcome schema v2);
- ``"instance"`` — one row per reported sharing instance, carrying the
  verdict (``false_sharing`` / ``true_sharing``) and predicted
  improvement.

Everything is stdlib-only and thread-safe; the serve daemon's workers
append concurrently and flush on graceful shutdown.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ServiceError

__all__ = ["COLUMNS", "FindingsSink"]

#: Every column of the sink schema, in file order. A row is one value
#: per column; absent fields are ``None``.
COLUMNS: Tuple[str, ...] = (
    "job_id", "key", "tenant", "workload", "kind", "line", "timestamp",
    "hits", "writes", "invalidations", "runtime", "verdict",
    "overhead_cycles", "improvement",
)

_MANIFEST = "MANIFEST.json"
_SEGMENT_PREFIX = "seg-"


class FindingsSink:
    """Append-only columnar store for run findings under ``root``.

    Args:
        root: sink directory (created on first flush; existing sealed
            segments are indexed immediately).
        segment_rows: auto-flush threshold — a full buffer seals into a
            segment without waiting for an explicit :meth:`flush`.
    """

    def __init__(self, root, segment_rows: int = 4096):
        if segment_rows < 1:
            raise ServiceError(
                f"segment_rows must be >= 1, got {segment_rows}")
        self.root = Path(root)
        self.segment_rows = int(segment_rows)
        self._lock = threading.Lock()
        self._buffer: List[Dict[str, Any]] = []
        #: Sealed rows, loaded once and extended on each flush: queries
        #: scan this in-memory table (segments are the durable form).
        self._rows: List[Dict[str, Any]] = []
        self._segments: List[str] = []
        self._load()

    # -- persistence ---------------------------------------------------------

    def _segments_dir(self) -> Path:
        return self.root / "segments"

    def _load(self) -> None:
        segments_dir = self._segments_dir()
        if not segments_dir.is_dir():
            return
        for name in sorted(os.listdir(segments_dir)):
            if not name.startswith(_SEGMENT_PREFIX):
                continue
            segment = segments_dir / name
            manifest_path = segment / _MANIFEST
            if not manifest_path.is_file():
                continue  # torn flush: column files without a manifest
            try:
                manifest = json.loads(manifest_path.read_text())
                rows = self._read_segment(segment, manifest)
            except (OSError, ValueError, KeyError, ServiceError) as exc:
                raise ServiceError(
                    f"corrupt sink segment {segment}: {exc}") from exc
            self._rows.extend(rows)
            self._segments.append(name)

    def _read_segment(self, segment: Path,
                      manifest: Dict[str, Any]) -> List[Dict[str, Any]]:
        count = int(manifest["rows"])
        columns = list(manifest["columns"])
        table: Dict[str, List[Any]] = {}
        for column in columns:
            lines = (segment / f"{column}.jsonl").read_text().splitlines()
            if len(lines) != count:
                raise ServiceError(
                    f"column {column!r} has {len(lines)} rows, "
                    f"manifest says {count}")
            table[column] = [json.loads(line) for line in lines]
        return [{column: table[column][i] for column in columns}
                for i in range(count)]

    def flush(self) -> Optional[str]:
        """Seal buffered rows into a new segment; returns its name.

        No-op (returns ``None``) with an empty buffer. Crash-safe: the
        manifest is the commit point and is replaced into place only
        after every column file is written and fsynced.
        """
        with self._lock:
            return self._flush_locked()

    def _flush_locked(self) -> Optional[str]:
        if not self._buffer:
            return None
        rows, self._buffer = self._buffer, []
        name = f"{_SEGMENT_PREFIX}{len(self._segments):08d}"
        segment = self._segments_dir() / name
        segment.mkdir(parents=True, exist_ok=True)
        for column in COLUMNS:
            path = segment / f"{column}.jsonl"
            with open(path, "w", encoding="utf-8") as fh:
                for row in rows:
                    fh.write(json.dumps(row.get(column), sort_keys=True))
                    fh.write("\n")
                fh.flush()
                os.fsync(fh.fileno())
        manifest = {"rows": len(rows), "columns": list(COLUMNS)}
        tmp = segment / f"{_MANIFEST}.tmp-{os.getpid()}"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, segment / _MANIFEST)
        self._rows.extend(rows)
        self._segments.append(name)
        return name

    # -- appending -----------------------------------------------------------

    def append(self, row: Dict[str, Any]) -> None:
        """Buffer one row (unknown keys rejected, missing keys null)."""
        unknown = sorted(set(row) - set(COLUMNS))
        if unknown:
            raise ServiceError(
                f"unknown sink column(s): {', '.join(unknown)} "
                f"(known: {', '.join(COLUMNS)})")
        full = {column: row.get(column) for column in COLUMNS}
        with self._lock:
            self._buffer.append(full)
            if len(self._buffer) >= self.segment_rows:
                self._flush_locked()

    def record_outcome(self, outcome: Any, *, job_id: str, key: str,
                       workload: str,
                       tenant: Optional[str] = None) -> int:
        """Decompose one :class:`~repro.run.RunOutcome` into sink rows.

        Emits the ``run`` row, one ``finding`` row per streaming
        finding (identical for cold and cached executions — findings
        are serialized in outcome schema v2), and one ``instance`` row
        per reported sharing instance. Returns the number of rows
        appended.
        """
        base = {"job_id": job_id, "key": key, "tenant": tenant,
                "workload": workload}
        count = 0
        self.append(dict(base, kind="run", runtime=outcome.runtime,
                         invalidations=outcome.invalidations,
                         overhead_cycles=_pmu_overhead(outcome)))
        count += 1
        for finding in outcome.streaming_findings:
            self.append(dict(
                base, kind="finding", line=finding.get("line"),
                timestamp=finding.get("timestamp"),
                hits=finding.get("hits"), writes=finding.get("writes")))
            count += 1
        report = outcome.report
        for instance in (report.all_instances if report is not None else ()):
            profile = instance.profile
            lines = sorted(profile.lines)
            self.append(dict(
                base, kind="instance",
                line=lines[0] if lines else None,
                hits=profile.accesses, writes=profile.writes,
                invalidations=profile.invalidations,
                verdict=instance.kind.value,
                improvement=instance.assessment.improvement))
            count += 1
        return count

    # -- queries -------------------------------------------------------------

    def _visible(self) -> List[Dict[str, Any]]:
        with self._lock:
            return self._rows + self._buffer

    def query(self, *, workload: Optional[str] = None,
              tenant: Optional[str] = None, kind: Optional[str] = None,
              limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """Rows matching every given filter, oldest first.

        Buffered (not yet flushed) rows are visible — queries see every
        append, durability only lags until the next flush.
        """
        rows = self._visible()
        out = [dict(row) for row in rows
               if (workload is None or row["workload"] == workload)
               and (tenant is None or row["tenant"] == tenant)
               and (kind is None or row["kind"] == kind)]
        return out[:limit] if limit is not None else out

    def top_lines(self, *, workload: Optional[str] = None,
                  n: int = 10) -> List[Dict[str, Any]]:
        """Cache lines ranked by total sampled invalidations.

        Aggregates ``instance`` rows across runs; ties break toward the
        lower line number for determinism.
        """
        totals: Dict[int, Dict[str, int]] = {}
        for row in self.query(workload=workload, kind="instance"):
            line = row["line"]
            if line is None:
                continue
            entry = totals.setdefault(
                line, {"invalidations": 0, "hits": 0, "writes": 0, "runs": 0})
            entry["invalidations"] += row["invalidations"] or 0
            entry["hits"] += row["hits"] or 0
            entry["writes"] += row["writes"] or 0
            entry["runs"] += 1
        ranked = sorted(totals.items(),
                        key=lambda item: (-item[1]["invalidations"], item[0]))
        return [dict(line=line, **stats) for line, stats in ranked[:n]]

    def verdict_counts(self, *, workload: Optional[str] = None
                       ) -> Dict[str, Dict[str, int]]:
        """Per-workload verdict histogram over ``instance`` rows."""
        out: Dict[str, Dict[str, int]] = {}
        for row in self.query(workload=workload, kind="instance"):
            per = out.setdefault(row["workload"], {})
            verdict = row["verdict"] or "unknown"
            per[verdict] = per.get(verdict, 0) + 1
        return out

    def overhead_percentiles(
            self, percentiles: Sequence[float] = (50.0, 90.0, 99.0),
            *, workload: Optional[str] = None) -> Dict[str, Optional[float]]:
        """Percentiles of PMU overhead cycles over profiled ``run`` rows.

        Rows without an overhead figure (native runs, cached payloads
        predating the live PMU) are skipped; all-null data yields null
        percentiles.
        """
        values = sorted(row["overhead_cycles"]
                        for row in self.query(workload=workload, kind="run")
                        if row["overhead_cycles"] is not None)
        out: Dict[str, Optional[float]] = {}
        for pct in percentiles:
            out[f"p{pct:g}"] = _percentile(values, pct)
        return out

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            kinds: Dict[str, int] = {}
            for row in self._rows:
                kinds[row["kind"]] = kinds.get(row["kind"], 0) + 1
            for row in self._buffer:
                kinds[row["kind"]] = kinds.get(row["kind"], 0) + 1
            return {
                "rows": len(self._rows) + len(self._buffer),
                "sealed_rows": len(self._rows),
                "buffered_rows": len(self._buffer),
                "segments": len(self._segments),
                "kinds": kinds,
            }


def _pmu_overhead(outcome: Any) -> Optional[int]:
    """Total PMU-charged cycles of a freshly profiled run, else None.

    Mirrors the ``pmu_overhead_cycles_total`` decomposition the
    observability layer exports: per-thread setup + sample handlers +
    traps on non-memory instructions.
    """
    pmu = getattr(outcome, "pmu", None)
    if pmu is None:
        return None
    traps = pmu.samples_fired - pmu.memory_samples
    config = pmu.config
    return (pmu.threads_set_up * config.thread_setup_cost
            + pmu.memory_samples * config.handler_cost
            + traps * config.trap_cost)


def _percentile(values: List[float], pct: float) -> Optional[float]:
    """Linear-interpolation percentile (the numpy default), stdlib-only."""
    if not values:
        return None
    if len(values) == 1:
        return float(values[0])
    rank = (pct / 100.0) * (len(values) - 1)
    low = int(rank)
    high = min(low + 1, len(values) - 1)
    frac = rank - low
    return values[low] * (1.0 - frac) + values[high] * frac
