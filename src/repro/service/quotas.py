"""Admission control for the serve daemon: rate limits and quotas.

The daemon (``repro serve``) must stay healthy under misbehaving
clients: a tight retry loop, a tenant submitting thousands of jobs, or a
burst arriving faster than workers drain. Admission happens *before* a
job touches the queue, in three layers:

- a global :class:`TokenBucket` bounding the fleet-wide submission rate
  (absorbs bursts up to ``burst``, refills at ``rate`` jobs/second);
- per-tenant :class:`TenantQuotas`: each tenant (the
  ``X-Repro-Tenant`` header) gets its own bucket plus a cap on
  *pending* jobs (queued or running), so one tenant cannot occupy the
  whole queue;
- the bounded job queue itself (the daemon returns 429 when full).

Rejections carry a ``retry_after`` hint in seconds — the time until the
bucket would next admit a request — which the daemon surfaces as the
HTTP ``Retry-After`` header.

Everything takes an injectable ``clock`` (seconds, monotonic) so tests
drive time by hand; all public methods are thread-safe (the daemon's
HTTP handlers run on many threads).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ConfigError

__all__ = ["Admission", "TenantQuotas", "TokenBucket"]


class TokenBucket:
    """Classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``rate <= 0`` disables the limit (every ``admit`` succeeds) — the
    daemon's "no rate limiting configured" spelling.
    """

    def __init__(self, rate: float, burst: float,
                 clock: Optional[Callable[[], float]] = None):
        if rate > 0 and burst < 1:
            raise ConfigError(
                f"token bucket burst must be >= 1 when rate limiting is "
                f"enabled, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock if clock is not None else time.monotonic
        self._tokens = self.burst
        self._updated = self._clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def admit(self, cost: float = 1.0) -> Tuple[bool, float]:
        """Try to take ``cost`` tokens.

        Returns ``(True, 0.0)`` on admission, else ``(False,
        retry_after_seconds)`` where the hint is the time until the
        bucket holds ``cost`` tokens again (minimum 1 second, so
        clients never busy-spin on sub-second hints).
        """
        if self.rate <= 0:
            return True, 0.0
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= cost:
                self._tokens -= cost
                return True, 0.0
            needed = cost - self._tokens
            return False, max(1.0, needed / self.rate)

    def available(self) -> float:
        """Current token count (after refill); introspection only."""
        if self.rate <= 0:
            return float("inf")
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class TenantQuotas:
    """Per-tenant buckets plus a pending-jobs cap.

    Args:
        rate / burst: each tenant's private token bucket (``rate <= 0``
            disables per-tenant rate limiting).
        max_pending: cap on a tenant's jobs that are queued or running
            (``0`` disables the cap).
        clock: injectable monotonic clock shared by all tenant buckets.
    """

    def __init__(self, rate: float = 0.0, burst: float = 1.0,
                 max_pending: int = 0,
                 clock: Optional[Callable[[], float]] = None):
        if max_pending < 0:
            raise ConfigError(
                f"max_pending must be >= 0 (0 disables), got {max_pending}")
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_pending = int(max_pending)
        self._clock = clock
        self._buckets: Dict[str, TokenBucket] = {}
        self._pending: Dict[str, int] = {}
        self._lock = threading.Lock()

    def _bucket(self, tenant: str) -> TokenBucket:
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = self._buckets[tenant] = TokenBucket(
                self.rate, self.burst, clock=self._clock)
        return bucket

    def admit(self, tenant: str) -> Tuple[bool, float, str]:
        """Admission check for one submission by ``tenant``.

        Returns ``(ok, retry_after, reason)``; ``reason`` is ``""`` on
        admission, else ``"rate"`` or ``"pending"``. On admission the
        tenant's pending count is already incremented — the caller must
        balance every admitted job with :meth:`release` exactly once
        (including when the job is later deduped or fails to enqueue).
        """
        with self._lock:
            if self.max_pending and \
                    self._pending.get(tenant, 0) >= self.max_pending:
                return False, 1.0, "pending"
            ok, retry_after = self._bucket(tenant).admit()
            if not ok:
                return False, retry_after, "rate"
            self._pending[tenant] = self._pending.get(tenant, 0) + 1
            return True, 0.0, ""

    def release(self, tenant: str) -> None:
        """A previously admitted job finished (or was dropped)."""
        with self._lock:
            count = self._pending.get(tenant, 0)
            if count <= 1:
                self._pending.pop(tenant, None)
            else:
                self._pending[tenant] = count - 1

    def pending(self, tenant: str) -> int:
        with self._lock:
            return self._pending.get(tenant, 0)

    def snapshot(self) -> Dict[str, int]:
        """Pending counts per tenant (for ``/metrics`` and stats)."""
        with self._lock:
            return dict(self._pending)


class Admission:
    """The daemon's composed admission policy: global bucket, tenant
    allowlist, tenant quotas — checked in that order.

    Args:
        rate / burst: global token bucket (``rate <= 0`` disables).
        tenant_rate / tenant_burst / tenant_max_pending: per-tenant
            knobs (see :class:`TenantQuotas`).
        tenants: allowlist; empty means every tenant is accepted,
            otherwise unknown tenants are rejected with reason
            ``"forbidden"``.
        clock: injectable monotonic clock for every bucket.
    """

    def __init__(self, rate: float = 0.0, burst: float = 8.0,
                 tenant_rate: float = 0.0, tenant_burst: float = 4.0,
                 tenant_max_pending: int = 0,
                 tenants: Tuple[str, ...] = (),
                 clock: Optional[Callable[[], float]] = None):
        self.global_bucket = TokenBucket(rate, burst, clock=clock)
        self.tenants = tuple(tenants)
        self.quotas = TenantQuotas(
            rate=tenant_rate, burst=tenant_burst,
            max_pending=tenant_max_pending, clock=clock)

    def admit(self, tenant: str) -> Tuple[bool, float, str]:
        """``(ok, retry_after, reason)`` for one submission.

        Reasons: ``"rate"`` (global bucket), ``"forbidden"`` (tenant not
        on the allowlist), ``"tenant_rate"``, ``"pending"``. Admitted
        submissions hold one pending slot — balance with
        :meth:`release`.
        """
        ok, retry_after = self.global_bucket.admit()
        if not ok:
            return False, retry_after, "rate"
        if self.tenants and tenant not in self.tenants:
            return False, 0.0, "forbidden"
        ok, retry_after, reason = self.quotas.admit(tenant)
        if not ok:
            return False, retry_after, \
                "tenant_rate" if reason == "rate" else reason
        return True, 0.0, ""

    def release(self, tenant: str) -> None:
        self.quotas.release(tenant)
