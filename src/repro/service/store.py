"""Crash-safe, content-addressed on-disk result store.

Layout (under the store root, see ``docs/service.md``)::

    <root>/v1/objects/<key[:2]>/<key>.json   one RunOutcome per entry
    <root>/v1/quarantine/                    corrupt / partial entries
    <root>/v1/tmp/                           in-flight writes

Entries are keyed by the :meth:`repro.service.spec.RunSpec.key` content
hash, so the store never needs an index: presence of the final file *is*
the commit. Writes go write-tmp-then-``os.replace`` — readers can only
ever observe a complete entry or no entry, never a torn one. A worker
killed mid-write leaves a file in ``tmp/``; sweeps (on open, ``gc`` and
``stats``) move such leftovers into ``quarantine/`` instead of deleting
them, so operators can inspect what a crash interrupted.

A corrupt final entry (truncated by the filesystem, hand-edited, or
written by an incompatible schema version) is also quarantined on read
instead of raising: the service degrades to a cache miss and re-runs the
simulation.

Counters (``service_cache_*``) are registered in the PR-4
:class:`~repro.obs.MetricsRegistry` passed at construction.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional

from repro.errors import SchemaError, ServiceError
from repro.obs import MetricsRegistry
from repro.run import RunOutcome

_KEY_CHARS = set("0123456789abcdef")

#: Stray tmp files younger than this (seconds) are assumed to belong to a
#: live concurrent writer and are left alone by background sweeps;
#: explicit ``gc()`` quarantines them regardless of age.
TMP_GRACE_SECONDS = 300.0


def _check_key(key: str) -> str:
    if not (isinstance(key, str) and len(key) == 64
            and set(key) <= _KEY_CHARS):
        raise ServiceError(
            f"store keys are 64-char SHA-256 hex digests, got {key!r}")
    return key


class ResultStore:
    """Content-addressed RunOutcome store with atomic commits.

    Args:
        root: store directory (created on demand).
        registry: metrics registry the ``service_cache_*`` counters are
            registered in; a private one is created when omitted.
        write_hook: test-only fault injection point, invoked after the
            tmp file is fully written but *before* the atomic rename —
            raising from it simulates a worker dying mid-commit.
    """

    FORMAT_DIR = "v1"

    def __init__(self, root, registry: Optional[MetricsRegistry] = None,
                 write_hook: Optional[Callable[[str, Path], None]] = None):
        self.root = Path(root)
        self.registry = registry if registry is not None else MetricsRegistry()
        self._write_hook = write_hook
        base = self.root / self.FORMAT_DIR
        self._objects = base / "objects"
        self._quarantine = base / "quarantine"
        self._tmp = base / "tmp"
        self._hits = self.registry.counter(
            "service_cache_hits_total",
            "Result-store lookups served from disk.")
        self._misses = self.registry.counter(
            "service_cache_misses_total",
            "Result-store lookups that found no entry.")
        self._evictions = self.registry.counter(
            "service_cache_evictions_total",
            "Entries removed by gc() or clear().")
        self._quarantined = self.registry.counter(
            "service_cache_quarantined_total",
            "Corrupt or partial entries moved to quarantine.")
        self._puts = self.registry.counter(
            "service_cache_puts_total",
            "Entries committed to the store.")
        self._sweep_tmp(max_age=TMP_GRACE_SECONDS)

    # -- paths ---------------------------------------------------------------

    def path_for(self, key: str) -> Path:
        key = _check_key(key)
        return self._objects / key[:2] / f"{key}.json"

    def _ensure_dirs(self) -> None:
        for path in (self._objects, self._quarantine, self._tmp):
            path.mkdir(parents=True, exist_ok=True)

    # -- read / write --------------------------------------------------------

    def contains(self, key: str) -> bool:
        return self.path_for(key).exists()

    def get(self, key: str) -> Optional[RunOutcome]:
        """The cached outcome for ``key``, or None (counted as a miss).

        A present-but-undecodable entry is quarantined and reported as a
        miss — the store never raises on corrupt data and never exposes
        a partial entry.
        """
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            if payload.get("key") != key:
                raise SchemaError(
                    f"entry {path.name} does not match its key")
            outcome = RunOutcome.from_dict(payload["outcome"])
        except FileNotFoundError:
            self._misses.inc()
            return None
        except (OSError, ValueError, KeyError, AttributeError,
                SchemaError) as exc:
            self._quarantine_entry(path, reason=repr(exc))
            self._misses.inc()
            return None
        self._hits.inc()
        return outcome

    def put(self, key: str, outcome: RunOutcome) -> Path:
        """Atomically commit ``outcome`` under ``key``.

        The payload is fully written and flushed to a private file in
        ``tmp/`` and then ``os.replace``d into place, so a concurrent
        reader sees either the previous state or the complete new entry.
        """
        path = self.path_for(key)
        self._ensure_dirs()
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {"key": key, "outcome": outcome.to_dict()}
        tmp_path = self._tmp / f"{key}.{os.getpid()}.{id(outcome):x}.tmp"
        with open(tmp_path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
            handle.flush()
            os.fsync(handle.fileno())
        if self._write_hook is not None:
            self._write_hook(key, tmp_path)
        os.replace(tmp_path, path)
        self._puts.inc()
        return path

    # -- maintenance ---------------------------------------------------------

    def _entries(self) -> Iterator[Path]:
        if not self._objects.exists():
            return
        for bucket in sorted(self._objects.iterdir()):
            if bucket.is_dir():
                for entry in sorted(bucket.glob("*.json")):
                    yield entry

    def _quarantine_entry(self, path: Path, reason: str = "") -> None:
        self._ensure_dirs()
        target = self._quarantine / path.name
        suffix = 0
        while target.exists():
            suffix += 1
            target = self._quarantine / f"{path.name}.{suffix}"
        try:
            os.replace(path, target)
        except FileNotFoundError:  # already gone (concurrent sweep)
            return
        if reason:
            note = target.with_suffix(target.suffix + ".reason")
            try:
                note.write_text(reason + "\n", encoding="utf-8")
            except OSError:  # pragma: no cover - best effort
                pass
        self._quarantined.inc()

    def _sweep_tmp(self, max_age: Optional[float] = None) -> int:
        """Quarantine leftover tmp files (crashed mid-write commits)."""
        if not self._tmp.exists():
            return 0
        now = time.time()
        swept = 0
        for stray in sorted(self._tmp.iterdir()):
            if not stray.is_file():
                continue
            if max_age is not None:
                try:
                    age = now - stray.stat().st_mtime
                except OSError:
                    continue
                if age < max_age:
                    continue
            self._quarantine_entry(stray, reason="interrupted write (tmp "
                                                 "leftover)")
            swept += 1
        return swept

    def keys(self) -> List[str]:
        return [entry.stem for entry in self._entries()]

    def stats(self) -> Dict[str, Any]:
        """Entry counts, sizes and the session's hit/miss counters."""
        entries = list(self._entries())
        size = 0
        for entry in entries:
            try:
                size += entry.stat().st_size
            except OSError:  # pragma: no cover - raced removal
                pass
        quarantined_files = (len(list(self._quarantine.glob("*.json*")))
                             if self._quarantine.exists() else 0)
        return {
            "root": str(self.root),
            "format": self.FORMAT_DIR,
            "entries": len(entries),
            "bytes": size,
            "quarantined_files": quarantined_files,
            "hits": self._hits.value(),
            "misses": self._misses.value(),
            "evictions": self._evictions.value(),
            "quarantined": self._quarantined.value(),
            "puts": self._puts.value(),
        }

    def gc(self, max_entries: Optional[int] = None,
           max_age_seconds: Optional[float] = None) -> Dict[str, int]:
        """Evict entries beyond the given bounds; quarantine stray tmp files.

        Entries are aged by file mtime; when ``max_entries`` trims, the
        oldest entries go first. Returns counts of what happened.
        """
        swept = self._sweep_tmp(max_age=None)
        entries = []
        now = time.time()
        for entry in self._entries():
            try:
                mtime = entry.stat().st_mtime
            except OSError:
                continue
            entries.append((mtime, entry))
        entries.sort()
        evict: List[Path] = []
        if max_age_seconds is not None:
            evict.extend(e for m, e in entries if now - m > max_age_seconds)
        if max_entries is not None and len(entries) > max_entries:
            keep_from = len(entries) - max_entries
            evict.extend(e for _, e in entries[:keep_from])
        evicted = 0
        for entry in dict.fromkeys(evict):
            try:
                entry.unlink()
                evicted += 1
            except OSError:  # pragma: no cover - raced removal
                pass
        if evicted:
            self._evictions.inc(evicted)
        return {"evicted": evicted, "tmp_quarantined": swept,
                "remaining": len(entries) - evicted}

    def clear(self) -> int:
        """Remove every entry (quarantine is left untouched)."""
        removed = 0
        for entry in list(self._entries()):
            try:
                entry.unlink()
                removed += 1
            except OSError:  # pragma: no cover - raced removal
                pass
        if removed:
            self._evictions.inc(removed)
        return removed
