"""The fleet-scale detection daemon behind ``repro serve``.

A long-running HTTP/JSON service turning the run stack into shared
infrastructure: many clients submit :class:`~repro.service.spec.RunSpec`
jobs, results come from the content-addressed
:class:`~repro.service.store.ResultStore` whenever possible, and every
completed run feeds the cross-run
:class:`~repro.service.sink.FindingsSink`. Pure stdlib
(:class:`http.server.ThreadingHTTPServer`) — no new runtime
dependencies.

Endpoints (see ``docs/service.md`` for the full table)::

    POST /v1/jobs               submit {"spec": {...}} or {"request": {...}}
    GET  /v1/jobs/{id}          job status (+ RunOutcome JSON when done)
    GET  /v1/jobs/{id}/events   live StreamingFinding NDJSON
    GET  /v1/findings           cross-run aggregation from the sink
    GET  /metrics               Prometheus text exposition
    GET  /healthz               liveness

Admission happens before a job touches the queue
(:class:`~repro.service.quotas.Admission`): the global token bucket,
then the tenant allowlist, then per-tenant rate/pending quotas — each
rejection is a 429 (or 403) with a ``Retry-After`` hint, so overload
never manifests as queue bloat.

Jobs run *inline* on daemon worker threads (never the scheduler's
process pool): the worker registers a context-local finding listener
(:func:`repro.obs.push_finding_listener`) before executing, so windowed
detections stream to ``/v1/jobs/{id}/events`` the moment the detector
emits them — without attaching an Observability, which would bypass the
cache by design. Cached windowed runs replay their serialized findings
(outcome schema v2) as immediately-available events.

Tenancy never enters the outcome payload: ``RunOutcome.tenant`` stays
``None`` so a job's result JSON is byte-identical to a direct CLI run of
the same spec and cache entries carry no tenant identity; the tenant is
recorded on the job and in the sink rows instead.

Graceful shutdown (:meth:`Daemon.shutdown`, or SIGINT under ``repro
serve``) stops accepting connections, drains in-flight jobs up to
``drain_timeout`` seconds, and flushes the sink.
"""

from __future__ import annotations

import json
import queue
import threading
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.config import ConfigBase
from repro.errors import ConfigError, ReproError, SchemaError, ServiceError
from repro.obs import MetricsRegistry, pop_finding_listener, \
    push_finding_listener
from repro.service import RunService
from repro.service.quotas import Admission
from repro.service.sink import FindingsSink
from repro.service.spec import RunSpec

__all__ = ["Daemon", "Job", "ServeConfig"]

#: Tenant attributed to requests without an ``X-Repro-Tenant`` header.
DEFAULT_TENANT = "anonymous"

TENANT_HEADER = "X-Repro-Tenant"


@dataclass(frozen=True)
class ServeConfig(ConfigBase):
    """Everything ``repro serve`` needs, in one validated dataclass.

    Attributes:
        host / port: bind address; port ``0`` picks an ephemeral port
            (tests), readable as ``daemon.port`` after start.
        workers: job worker threads (each runs one job at a time).
        max_queue: bound on queued jobs; a full queue rejects with 429.
        rate / burst: global submission token bucket; ``rate <= 0``
            disables global rate limiting.
        tenant_rate / tenant_burst: per-tenant buckets (``<= 0``
            disables).
        tenant_max_pending: per-tenant cap on queued+running jobs
            (``0`` disables).
        tenants: allowlist; empty accepts every tenant, otherwise
            unknown tenants get 403.
        cache_dir: result-store root (None: the service default).
        sink_dir: findings-sink root (None: ``<cache_dir>/sink``).
        drain_timeout: seconds shutdown waits for in-flight jobs.
    """

    host: str = "127.0.0.1"
    port: int = 8137
    workers: int = 2
    max_queue: int = 64
    rate: float = 0.0
    burst: float = 8.0
    tenant_rate: float = 0.0
    tenant_burst: float = 4.0
    tenant_max_pending: int = 0
    tenants: Tuple[str, ...] = ()
    cache_dir: Optional[str] = None
    sink_dir: Optional[str] = None
    drain_timeout: float = 30.0

    def __post_init__(self) -> None:
        if not 0 <= self.port <= 65535:
            raise ConfigError(f"port must be in [0, 65535], got {self.port}")
        if self.workers < 1:
            raise ConfigError(f"workers must be >= 1, got {self.workers}")
        if self.max_queue < 1:
            raise ConfigError(f"max_queue must be >= 1, got {self.max_queue}")
        if self.drain_timeout < 0:
            raise ConfigError(
                f"drain_timeout must be >= 0, got {self.drain_timeout}")
        if self.rate > 0 and self.burst < 1:
            raise ConfigError(
                f"burst must be >= 1 when rate limiting is enabled, "
                f"got {self.burst}")
        if self.tenant_rate > 0 and self.tenant_burst < 1:
            raise ConfigError(
                f"tenant_burst must be >= 1 when tenant rate limiting is "
                f"enabled, got {self.tenant_burst}")
        if self.tenant_max_pending < 0:
            raise ConfigError(
                f"tenant_max_pending must be >= 0, "
                f"got {self.tenant_max_pending}")
        if not isinstance(self.tenants, tuple):
            # JSON round-trips deliver lists; normalize without
            # breaking frozen-ness.
            object.__setattr__(self, "tenants", tuple(self.tenants))


class Job:
    """One submitted run: spec + tenant + lifecycle + live events.

    ``events`` accumulates streaming-finding dicts under ``cond``;
    ``events_done`` flips when no further events can arrive, which is
    what lets ``/events`` readers finish instead of hanging.
    """

    def __init__(self, job_id: str, spec: RunSpec, tenant: str):
        self.id = job_id
        self.spec = spec
        self.key = spec.key()
        self.tenant = tenant
        self.status = "queued"  # queued | running | done | failed
        self.error: Optional[str] = None
        self.outcome: Optional[Any] = None
        self.cached: Optional[bool] = None
        self.cond = threading.Condition()
        self.events: List[Dict[str, Any]] = []
        self.events_done = False

    def to_dict(self, include_outcome: bool = True) -> Dict[str, Any]:
        body: Dict[str, Any] = {
            "id": self.id,
            "status": self.status,
            "key": self.key,
            "tenant": self.tenant,
            "workload": self.spec.workload,
            "events": len(self.events),
        }
        if self.cached is not None:
            body["cached"] = self.cached
        if self.error is not None:
            body["error"] = self.error
        if include_outcome and self.outcome is not None:
            body["outcome"] = self.outcome.to_dict()
        return body

    def add_event(self, event: Dict[str, Any]) -> None:
        with self.cond:
            self.events.append(event)
            self.cond.notify_all()

    def finish(self, status: str, outcome: Any = None,
               error: Optional[str] = None,
               cached: Optional[bool] = None) -> None:
        with self.cond:
            self.status = status
            self.outcome = outcome
            self.error = error
            self.cached = cached
            self.events_done = True
            self.cond.notify_all()


class Daemon:
    """The serve daemon: HTTP front end + worker pool + sink.

    Construction binds the listening socket (so ``port`` is final and
    bind errors surface before any thread starts); :meth:`start` spawns
    the workers and the HTTP loop. ``service`` is injectable for tests;
    by default one :class:`~repro.service.RunService` is built on
    ``config.cache_dir``.
    """

    def __init__(self, config: Optional[ServeConfig] = None,
                 service: Optional[RunService] = None,
                 sink: Optional[FindingsSink] = None,
                 registry: Optional[MetricsRegistry] = None):
        self.config = config or ServeConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        if service is not None:
            self.service = service
        else:
            self.service = RunService(cache_dir=self.config.cache_dir,
                                      registry=self.registry)
        if sink is not None:
            self.sink = sink
        else:
            sink_root = (self.config.sink_dir
                         if self.config.sink_dir is not None
                         else self.service.store.root / "sink")
            self.sink = FindingsSink(sink_root)
        self.admission = Admission(
            rate=self.config.rate, burst=self.config.burst,
            tenant_rate=self.config.tenant_rate,
            tenant_burst=self.config.tenant_burst,
            tenant_max_pending=self.config.tenant_max_pending,
            tenants=self.config.tenants)
        self._queue: "queue.Queue[Optional[Job]]" = \
            queue.Queue(maxsize=self.config.max_queue)
        self._jobs: Dict[str, Job] = {}
        self._active: Dict[str, Job] = {}  # spec key -> queued/running job
        self._jobs_lock = threading.Lock()
        self._next_id = 0
        self._workers: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._http_thread: Optional[threading.Thread] = None

        self._submissions = self.registry.counter(
            "daemon_submissions_total",
            "Job submissions by admission outcome.", label="outcome")
        self._jobs_counter = self.registry.counter(
            "daemon_jobs_total", "Jobs finished by status.", label="status")
        self._events_counter = self.registry.counter(
            "daemon_stream_events_total",
            "Streaming finding events delivered to job event logs.")
        self._sink_rows = self.registry.counter(
            "daemon_sink_rows_total", "Rows appended to the findings sink.")

        handler = _make_handler(self)
        try:
            self._server = ThreadingHTTPServer(
                (self.config.host, self.config.port), handler)
        except OSError as exc:
            raise ServiceError(
                f"cannot bind {self.config.host}:{self.config.port}: "
                f"{exc.strerror or exc}") from exc
        self._server.daemon_threads = True

    # -- lifecycle -----------------------------------------------------------

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def address(self) -> str:
        return f"http://{self.config.host}:{self.port}"

    def start(self) -> "Daemon":
        """Spawn workers and the HTTP loop (returns immediately)."""
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}",
                daemon=True)
            worker.start()
            self._workers.append(worker)
        self._http_thread = threading.Thread(
            target=self._server.serve_forever, name="repro-serve-http",
            daemon=True)
        self._http_thread.start()
        return self

    def serve_forever(self) -> None:
        """Run the HTTP loop on the calling thread (the CLI path)."""
        for index in range(self.config.workers):
            worker = threading.Thread(
                target=self._worker_loop, name=f"repro-serve-worker-{index}",
                daemon=True)
            worker.start()
            self._workers.append(worker)
        self._server.serve_forever()

    def shutdown(self) -> None:
        """Graceful stop: close the listener, drain jobs, flush the sink.

        Queued and running jobs finish (up to ``drain_timeout``
        seconds); new submissions are already impossible once the
        listener is down.
        """
        if self._stopping.is_set():
            return
        self._stopping.set()
        self._server.shutdown()
        self._server.server_close()
        for _ in self._workers:
            # One sentinel per worker: each loop exits after the queue
            # drains to its sentinel.
            self._queue.put(None)
        deadline = self.config.drain_timeout
        for worker in self._workers:
            worker.join(timeout=max(0.1, deadline))
        self.sink.flush()

    # -- job execution -------------------------------------------------------

    def submit(self, spec: RunSpec, tenant: str) -> Tuple[int, Dict[str, Any]]:
        """Admission + dedupe + enqueue; returns (http_status, body)."""
        ok, retry_after, reason = self.admission.admit(tenant)
        if not ok:
            self._submissions.inc(label_value=f"rejected_{reason}")
            if reason == "forbidden":
                return 403, {"error": f"unknown tenant {tenant!r}"}
            return 429, {"error": f"rejected: {reason}",
                         "retry_after": retry_after}
        key = spec.key()
        with self._jobs_lock:
            active = self._active.get(key)
            if active is not None:
                # Same spec already queued or running: return that job
                # instead of executing twice (content-addressed dedupe).
                self.admission.release(tenant)
                self._submissions.inc(label_value="deduped")
                return 200, {"id": active.id, "status": active.status,
                             "deduped": True}
            self._next_id += 1
            job = Job(f"job-{self._next_id:06d}", spec, tenant)
            self._jobs[job.id] = job
            self._active[key] = job
        try:
            self._queue.put_nowait(job)
        except queue.Full:
            with self._jobs_lock:
                del self._jobs[job.id]
                self._active.pop(key, None)
            self.admission.release(tenant)
            self._submissions.inc(label_value="rejected_queue")
            return 429, {"error": "job queue is full", "retry_after": 1.0}
        self._submissions.inc(label_value="accepted")
        return 202, {"id": job.id, "status": job.status}

    def _worker_loop(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            try:
                self._run_job(job)
            finally:
                self._queue.task_done()

    def _run_job(self, job: Job) -> None:
        with job.cond:
            job.status = "running"
        token = push_finding_listener(
            lambda finding: self._on_finding(job, finding))
        try:
            outcome = self.service.run(job.spec)
        except ReproError as exc:
            job.finish("failed", error=f"{type(exc).__name__}: {exc}")
            self._jobs_counter.inc(label_value="failed")
            return
        finally:
            pop_finding_listener(token)
            with self._jobs_lock:
                if self._active.get(job.key) is job:
                    del self._active[job.key]
            self.admission.release(job.tenant)
        cached = outcome.from_cache
        if cached:
            # A warm hit replays no live detector: surface the
            # serialized findings as immediately-available events so
            # /events readers see the same stream either way.
            for finding in outcome.streaming_findings:
                self._on_finding_dict(job, dict(finding))
        rows = self.sink.record_outcome(
            outcome, job_id=job.id, key=job.key,
            workload=job.spec.workload, tenant=job.tenant)
        self._sink_rows.inc(rows)
        job.finish("done", outcome=outcome, cached=cached)
        self._jobs_counter.inc(label_value="done")

    def _on_finding(self, job: Job, finding: Any) -> None:
        self._on_finding_dict(job, finding.to_dict())

    def _on_finding_dict(self, job: Job, event: Dict[str, Any]) -> None:
        event["job_id"] = job.id
        job.add_event(event)
        self._events_counter.inc()

    # -- lookups -------------------------------------------------------------

    def get_job(self, job_id: str) -> Optional[Job]:
        with self._jobs_lock:
            return self._jobs.get(job_id)

    def stats(self) -> Dict[str, Any]:
        with self._jobs_lock:
            statuses: Dict[str, int] = {}
            for job in self._jobs.values():
                statuses[job.status] = statuses.get(job.status, 0) + 1
        return {
            "jobs": statuses,
            "queue_depth": self._queue.qsize(),
            "sink": self.sink.stats(),
            "store": self.service.store.stats(),
            "tenants_pending": self.admission.quotas.snapshot(),
        }

    def render_metrics(self) -> str:
        """Prometheus exposition: daemon + service + store counters,
        plus gauges computed at scrape time."""
        reg = self.registry
        reg.gauge("daemon_queue_depth",
                  "Jobs waiting for a worker.").set(self._queue.qsize())
        sink_stats = self.sink.stats()
        reg.gauge("daemon_sink_segments",
                  "Sealed sink segments on disk.").set(sink_stats["segments"])
        reg.gauge("daemon_sink_buffered_rows",
                  "Sink rows not yet flushed.").set(
                      sink_stats["buffered_rows"])
        return reg.render_prometheus()


# -- HTTP layer ---------------------------------------------------------------


def _make_handler(daemon: Daemon):
    """The request-handler class bound to one daemon instance."""

    class Handler(BaseHTTPRequestHandler):
        # NDJSON event streams stay open until the job finishes, so
        # HTTP/1.1 keep-alive semantics are not worth the complexity.
        protocol_version = "HTTP/1.0"
        server_version = "repro-serve/2"

        def log_message(self, format: str, *args: Any) -> None:
            pass  # the daemon is quiet; metrics carry the signal

        # -- helpers -------------------------------------------------------

        def _tenant(self) -> str:
            return self.headers.get(TENANT_HEADER) or DEFAULT_TENANT

        def _send_json(self, status: int, body: Dict[str, Any],
                       extra_headers: Optional[Dict[str, str]] = None
                       ) -> None:
            payload = json.dumps(body, sort_keys=True).encode()
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(payload)))
            for name, value in (extra_headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(payload)

        def _send_text(self, status: int, text: str,
                       content_type: str = "text/plain; version=0.0.4"
                       ) -> None:
            payload = text.encode()
            self.send_response(status)
            self.send_header("Content-Type", content_type)
            self.send_header("Content-Length", str(len(payload)))
            self.end_headers()
            self.wfile.write(payload)

        # -- routes --------------------------------------------------------

        def do_POST(self) -> None:  # noqa: N802 (http.server convention)
            path = urlparse(self.path).path
            if path != "/v1/jobs":
                self._send_json(404, {"error": f"unknown path {path}"})
                return
            try:
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length)
                body = json.loads(raw) if raw else {}
            except (ValueError, TypeError):
                self._send_json(400, {"error": "body is not valid JSON"})
                return
            try:
                spec = _decode_spec(body)
            except (ConfigError, SchemaError, ServiceError) as exc:
                self._send_json(400, {"error": str(exc)})
                return
            status, reply = daemon.submit(spec, self._tenant())
            headers = {}
            if status == 429:
                headers["Retry-After"] = \
                    str(max(1, int(reply.get("retry_after", 1))))
            self._send_json(status, reply, headers)

        def do_GET(self) -> None:  # noqa: N802
            parsed = urlparse(self.path)
            path = parsed.path
            if path == "/healthz":
                self._send_json(200, {"status": "ok"})
            elif path == "/metrics":
                self._send_text(200, daemon.render_metrics())
            elif path == "/v1/findings":
                self._findings(parse_qs(parsed.query))
            elif path == "/v1/workloads":
                self._workloads(parse_qs(parsed.query))
            elif path.startswith("/v1/jobs/") and path.endswith("/events"):
                self._events(path[len("/v1/jobs/"):-len("/events")]
                             .strip("/"))
            elif path.startswith("/v1/jobs/"):
                job_id = path[len("/v1/jobs/"):].strip("/")
                job = daemon.get_job(job_id)
                if job is None:
                    self._send_json(404, {"error": f"no such job {job_id!r}"})
                else:
                    with job.cond:
                        self._send_json(200, job.to_dict())
            else:
                self._send_json(404, {"error": f"unknown path {path}"})

        def _workloads(self, query) -> None:
            """``GET /v1/workloads``: the queryable registry surface.

            Supports the same filters as ``repro workloads list``
            (``suite``, ``family``, ``verdict``, ``significant``) so a
            client can discover runnable scenarios and their declared
            ground truth before POSTing jobs.
            """
            from repro.workloads import Verdict, iter_workloads, workload_info
            suite = (query.get("suite") or [None])[0]
            family = (query.get("family") or [None])[0]
            verdict = (query.get("verdict") or [None])[0]
            significant_raw = (query.get("significant") or [None])[0]
            significant = None
            if significant_raw is not None:
                significant = significant_raw.lower() in ("1", "true", "yes")
            try:
                want = Verdict.coerce(verdict) if verdict else None
                rows = [workload_info(cls)
                        for cls in iter_workloads(
                            suite=suite, family=family, verdict=want,
                            significant=significant)]
            except ConfigError as exc:
                self._send_json(400, {"error": str(exc)})
                return
            self._send_json(200, {"workloads": rows, "count": len(rows)})

        def _events(self, job_id: str) -> None:
            job = daemon.get_job(job_id)
            if job is None:
                self._send_json(404, {"error": f"no such job {job_id!r}"})
                return
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.end_headers()
            sent = 0
            while True:
                with job.cond:
                    job.cond.wait_for(
                        lambda: len(job.events) > sent or job.events_done,
                        timeout=30.0)
                    batch = job.events[sent:]
                    done = job.events_done
                sent += len(batch)
                try:
                    for event in batch:
                        self.wfile.write(
                            (json.dumps(event, sort_keys=True) + "\n")
                            .encode())
                    self.wfile.flush()
                except (BrokenPipeError, ConnectionResetError):
                    return
                if done and sent >= len(job.events):
                    return

        def _findings(self, params: Dict[str, List[str]]) -> None:
            def first(name: str) -> Optional[str]:
                values = params.get(name)
                return values[0] if values else None

            view = first("view") or "rows"
            workload = first("workload")
            tenant = first("tenant")
            try:
                limit = int(first("limit") or 100)
            except ValueError:
                self._send_json(400, {"error": "limit must be an integer"})
                return
            sink = daemon.sink
            if view == "rows":
                body: Dict[str, Any] = {"rows": sink.query(
                    workload=workload, tenant=tenant, limit=limit)}
            elif view == "top_lines":
                body = {"top_lines": sink.top_lines(
                    workload=workload, n=limit)}
            elif view == "verdicts":
                body = {"verdicts": sink.verdict_counts(workload=workload)}
            elif view == "overhead":
                body = {"overhead": sink.overhead_percentiles(
                    workload=workload)}
            elif view == "stats":
                body = {"stats": sink.stats()}
            else:
                self._send_json(400, {
                    "error": f"unknown view {view!r} (expected rows, "
                             f"top_lines, verdicts, overhead or stats)"})
                return
            self._send_json(200, body)

    return Handler


def _decode_spec(body: Any) -> RunSpec:
    """The RunSpec of a ``POST /v1/jobs`` body.

    Accepts ``{"spec": {...}}`` (the v1 serialized-spec form) or
    ``{"request": {...}}`` (the v2 :class:`~repro.request.RunRequest`
    form); both resolve to the same content-addressed spec.
    """
    if not isinstance(body, dict):
        raise ServiceError("job body must be a JSON object")
    if "spec" in body:
        return RunSpec.from_dict(body["spec"])
    if "request" in body:
        from repro.request import RunRequest
        return RunRequest.from_dict(body["request"]).to_spec()
    raise ServiceError(
        'job body must carry "spec" (serialized RunSpec) or '
        '"request" (RunRequest fields)')
