"""Run specifications and content-addressed cache keys.

A :class:`RunSpec` is the *name* of a simulation: workload (by registry
name) plus every knob that influences its output — construction kwargs,
the machine/PMU/profiler configs and both determinism seeds. Because
runs are deterministic and byte-identical given these inputs (the PR-1/3
invariants, re-checked by ``tests/test_determinism.py``), a spec fully
identifies its :class:`~repro.run.RunOutcome`, which is what makes
results content-addressable: the cache key is a stable SHA-256 over the
canonical JSON form of the spec, folded with the outcome schema version.

Hashing rules (see ``docs/service.md``):

- configs enter the key through the PR-4 ``ConfigBase.to_dict``
  convention, so equal configs hash equally regardless of how they were
  constructed (default vs. explicit, ``replace()`` vs. ``__init__``);
- ``None`` configs are normalized to their defaults when they are
  semantically active (machine always; PMU/Cheetah only for profiled
  runs), so ``machine=None`` and ``machine=MachineConfig()`` share one
  entry;
- the canonical JSON uses sorted keys and no whitespace, so the digest
  is independent of dict insertion order and Python version;
- :data:`repro.run.SCHEMA_VERSION` is part of the key, so a schema bump
  silently invalidates stale entries instead of mis-decoding them.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.core.profiler import CheetahConfig
from repro.errors import ServiceError
from repro.pmu.sampler import PMUConfig
from repro.run import SCHEMA_VERSION, RunOutcome, run_workload
from repro.sim.params import MachineConfig
from repro.workloads import get_workload


def canonical_json(data: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace, no NaN."""
    return json.dumps(data, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)


def content_key(data: Any) -> str:
    """SHA-256 hex digest of the canonical JSON form of ``data``."""
    return hashlib.sha256(canonical_json(data).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunSpec:
    """Everything that determines one simulation's output.

    ``workload`` is a registry name (see ``repro list``); the service
    always builds a *fresh* instance per execution, so the workload's
    rng stream starts from ``workload_seed`` every time — the property
    the cache key depends on.
    """

    workload: str
    threads: Optional[int] = None
    scale: float = 1.0
    fixed: bool = False
    workload_seed: int = 0
    jitter_seed: int = 0xC0FFEE
    with_cheetah: bool = False
    machine: Optional[MachineConfig] = None
    pmu: Optional[PMUConfig] = None
    cheetah: Optional[CheetahConfig] = None

    def __post_init__(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise ServiceError(
                "RunSpec.workload must be a registry name (a non-empty "
                f"string), got {self.workload!r}")

    # -- hashing -------------------------------------------------------------

    def canonical_dict(self) -> Dict[str, Any]:
        """The dict the cache key is computed over.

        Inactive configs collapse to ``None`` and active ``None`` configs
        expand to their defaults, mirroring exactly what
        :func:`repro.run.run_workload` would instantiate.
        """
        machine = (self.machine or MachineConfig()).to_dict()
        pmu = cheetah = None
        if self.with_cheetah:
            pmu = (self.pmu or PMUConfig()).to_dict()
            cheetah = (self.cheetah or CheetahConfig()).to_dict()
        return {
            "schema_version": SCHEMA_VERSION,
            "workload": self.workload,
            "threads": self.threads,
            "scale": self.scale,
            "fixed": self.fixed,
            "workload_seed": self.workload_seed,
            "jitter_seed": self.jitter_seed,
            "with_cheetah": self.with_cheetah,
            "machine": machine,
            "pmu": pmu,
            "cheetah": cheetah,
        }

    def key(self) -> str:
        """Stable content hash identifying this spec's result."""
        return content_key(self.canonical_dict())

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready form (configs as nested dicts, ``None`` preserved)."""
        return {
            "workload": self.workload,
            "threads": self.threads,
            "scale": self.scale,
            "fixed": self.fixed,
            "workload_seed": self.workload_seed,
            "jitter_seed": self.jitter_seed,
            "with_cheetah": self.with_cheetah,
            "machine": self.machine.to_dict() if self.machine else None,
            "pmu": self.pmu.to_dict() if self.pmu else None,
            "cheetah": self.cheetah.to_dict() if self.cheetah else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        kwargs = dict(data)
        for name, config_cls in (("machine", MachineConfig),
                                 ("pmu", PMUConfig),
                                 ("cheetah", CheetahConfig)):
            value = kwargs.get(name)
            if isinstance(value, Mapping):
                kwargs[name] = config_cls.from_dict(value)
        return cls(**kwargs)

    # -- execution -----------------------------------------------------------

    def build_workload(self):
        """A fresh workload instance (rng at ``workload_seed``)."""
        return get_workload(self.workload)(
            num_threads=self.threads, scale=self.scale, fixed=self.fixed,
            seed=self.workload_seed)

    def execute(self) -> RunOutcome:
        """Run the simulation this spec names (no cache involved)."""
        return run_workload(
            self.build_workload(),
            machine_config=self.machine,
            jitter_seed=self.jitter_seed,
            pmu_config=self.pmu,
            with_cheetah=self.with_cheetah,
            cheetah_config=self.cheetah,
        )


def spec_for_workload_cls(workload_cls, *, num_threads: Optional[int] = None,
                          scale: float = 1.0, fixed: bool = False,
                          seed: int = 0, jitter_seed: int = 0xC0FFEE,
                          with_cheetah: bool = False,
                          machine_config: Optional[MachineConfig] = None,
                          pmu_config: Optional[PMUConfig] = None,
                          cheetah_config: Optional[CheetahConfig] = None,
                          ) -> Optional[RunSpec]:
    """A :class:`RunSpec` for a workload class, or None if not canonical.

    Only registry workloads whose registered class *is* ``workload_cls``
    are cacheable — a subclass or an unregistered class may compute
    anything, so it must not alias a registry entry's cache slot.
    """
    name = getattr(workload_cls, "name", None)
    if not name:
        return None
    try:
        registered = get_workload(name)
    except Exception:
        return None
    if registered is not workload_cls:
        return None
    return RunSpec(workload=name, threads=num_threads, scale=scale,
                   fixed=fixed, workload_seed=seed, jitter_seed=jitter_seed,
                   with_cheetah=with_cheetah, machine=machine_config,
                   pmu=pmu_config, cheetah=cheetah_config)
