"""Persistent run service: content-addressed result cache + scheduler.

``repro.service`` layers reuse on top of :func:`repro.run.run_workload`:
runs are deterministic and byte-identical given their inputs (the
PR-1/3/4 invariants), so a finished result is perfectly cacheable under
the content hash of its :class:`~repro.service.spec.RunSpec`. The
service consults the on-disk :class:`~repro.service.store.ResultStore`
before simulating, executes misses through the resilient
:class:`~repro.service.scheduler.Scheduler`, and commits outcomes back
atomically — so a repeated ``repro experiment`` is served from cache
instead of re-simulated.

The pieces (see ``docs/service.md``):

- :class:`RunSpec` — the content-addressed name of one simulation;
- :class:`ResultStore` — crash-safe on-disk cache (atomic commits,
  corrupt-entry quarantine);
- :class:`Scheduler` / :class:`JobFailure` — dedupe, per-job timeout,
  bounded retry with backoff, graceful degradation;
- :class:`RunService` — the front door tying them together;
- an ambient service (:func:`push_service` / :func:`current_service`),
  which is how the experiment helpers and :class:`repro.api.Session`
  pick the cache up without threading a handle through every call.

Observed runs (an ambient :func:`repro.obs.push_default` collector)
always bypass the cache: their purpose is to watch a simulation happen.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence

from repro.errors import ServiceError
from repro.obs import MetricsRegistry
from repro.obs import current_default as _obs_default
from repro.run import RunOutcome, run_workload
from repro.service.scheduler import JobFailure, Scheduler
from repro.service.spec import (
    RunSpec,
    canonical_json,
    content_key,
    spec_for_workload_cls,
)
from repro.service.store import ResultStore

__all__ = [
    "JobFailure",
    "ResultStore",
    "RunService",
    "RunSpec",
    "Scheduler",
    "cached_run",
    "canonical_json",
    "content_key",
    "current_service",
    "default_cache_dir",
    "pop_service",
    "push_service",
    "spec_for_workload_cls",
    "using_service",
]

#: Environment variable overriding the default store location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """``$REPRO_CACHE_DIR``, else ``~/.cache/repro``."""
    env = os.environ.get(CACHE_DIR_ENV)
    if env:
        return Path(env)
    return Path.home() / ".cache" / "repro"


class RunService:
    """Cache-first runner for :class:`RunSpec` simulations.

    Args:
        cache_dir: store root (defaults to :func:`default_cache_dir`);
            ignored when an explicit ``store`` is given.
        store: a ready :class:`ResultStore` (tests inject one).
        enabled: with False, every run executes and nothing is cached —
            the ``--no-cache`` switch.
        registry: shared metrics registry; store and scheduler counters
            land here. A private one is created when omitted.
        jobs / timeout / retries / backoff_* / jitter_seed / sleep /
        fault_hook: scheduler construction defaults for
            :meth:`run_many` (see :class:`Scheduler`).
    """

    def __init__(self, cache_dir=None, store: Optional[ResultStore] = None,
                 enabled: bool = True,
                 registry: Optional[MetricsRegistry] = None,
                 jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_cap: float = 2.0,
                 jitter_seed: int = 0,
                 sleep: Optional[Callable[[float], None]] = None,
                 fault_hook: Optional[Callable[[str, int], None]] = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.enabled = enabled
        if store is not None:
            self.store = store
        else:
            root = Path(cache_dir) if cache_dir is not None \
                else default_cache_dir()
            self.store = ResultStore(root, registry=self.registry)
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        self.jitter_seed = jitter_seed
        self._sleep = sleep
        self._fault_hook = fault_hook
        self._runs = self.registry.counter(
            "service_runs_total",
            "RunService.run calls by how they were served.",
            label="outcome")

    # -- single runs ---------------------------------------------------------

    def run(self, spec: RunSpec, force: bool = False) -> RunOutcome:
        """The outcome for ``spec``: from cache when possible, else run.

        ``force`` re-executes even on a hit (and refreshes the entry).
        An active ambient observability default bypasses the cache
        entirely — observed runs exist to be watched, not replayed.
        """
        if not isinstance(spec, RunSpec):
            raise ServiceError(
                f"RunService.run expects a RunSpec, got "
                f"{type(spec).__name__}")
        if _obs_default() is not None:
            self._runs.inc(label_value="bypassed")
            return spec.execute()
        if not self.enabled:
            self._runs.inc(label_value="disabled")
            return spec.execute()
        key = spec.key()
        if not force:
            cached = self.store.get(key)
            if cached is not None:
                self._runs.inc(label_value="hit")
                return cached
        outcome = spec.execute()
        self.store.put(key, outcome)
        self._runs.inc(label_value="executed")
        return outcome

    def run_request(self, request: Any, force: bool = False) -> RunOutcome:
        """Cache-first execution of a :class:`repro.request.RunRequest`.

        The v2 spelling of :meth:`run`: the request resolves to its
        content-addressed spec and is served identically to a hand-built
        :class:`RunSpec` — same key, same cache entry.
        """
        from repro.request import RunRequest
        if not isinstance(request, RunRequest):
            raise ServiceError(
                f"RunService.run_request expects a RunRequest, got "
                f"{type(request).__name__}")
        return self.run(request.to_spec(), force=force)

    # -- batched runs --------------------------------------------------------

    def make_scheduler(self, jobs: Optional[int] = None,
                       initializer: Optional[Callable[..., None]] = None,
                       initargs: tuple = ()) -> Scheduler:
        """A scheduler configured with this service's resilience knobs."""
        kwargs: Dict[str, Any] = dict(
            jobs=jobs if jobs is not None else self.jobs,
            timeout=self.timeout, retries=self.retries,
            backoff_base=self.backoff_base,
            backoff_factor=self.backoff_factor,
            backoff_cap=self.backoff_cap,
            jitter_seed=self.jitter_seed,
            registry=self.registry,
            fault_hook=self._fault_hook,
            initializer=initializer, initargs=initargs)
        if self._sleep is not None:
            kwargs["sleep"] = self._sleep
        return Scheduler(**kwargs)

    def run_many(self, specs: Sequence[RunSpec],
                 jobs: Optional[int] = None) -> List[Any]:
        """Outcomes for ``specs`` in order; failures degrade gracefully.

        Cache hits never enter the scheduler; identical pending specs
        dedupe onto one execution. Each slot holds a
        :class:`~repro.run.RunOutcome` or a :class:`JobFailure` — the
        matrix survives individual cells dying. Outcomes computed by
        worker processes come back in serialized form and are
        rehydrated, so their ``result`` is a
        :class:`~repro.run.RunSummary`.
        """
        results: List[Any] = [None] * len(specs)
        keys = [spec.key() for spec in specs]
        pending: List[int] = []
        use_cache = self.enabled and _obs_default() is None
        for index, key in enumerate(keys):
            cached = self.store.get(key) if use_cache else None
            if cached is not None:
                results[index] = cached
                self._runs.inc(label_value="hit")
            else:
                pending.append(index)
        if not pending:
            return results
        scheduler = self.make_scheduler(jobs)
        payloads = scheduler.map(
            _execute_spec_payload,
            [specs[i].to_dict() for i in pending],
            keys=[keys[i] for i in pending])
        for index, payload in zip(pending, payloads):
            if isinstance(payload, JobFailure):
                results[index] = payload
                continue
            outcome = RunOutcome.from_dict(payload)
            if use_cache:
                self.store.put(keys[index], outcome)
            self._runs.inc(label_value="executed")
            results[index] = outcome
        return results

    # -- introspection -------------------------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Store stats plus the service-level run counters."""
        stats = self.store.stats()
        stats["enabled"] = self.enabled
        stats["runs"] = {str(label): value for label, value
                         in self._runs.series().items()}
        return stats

    def hit_ratio(self) -> float:
        """Fraction of lookups served from cache this session."""
        hits = self.store.stats()["hits"]
        misses = self.store.stats()["misses"]
        total = hits + misses
        return hits / total if total else 0.0

    def metrics_snapshot(self) -> Dict[str, Any]:
        return self.registry.snapshot()


def _execute_spec_payload(spec_dict: Dict[str, Any]) -> Dict[str, Any]:
    """Worker body for :meth:`RunService.run_many` (picklable)."""
    return RunSpec.from_dict(spec_dict).execute().to_dict()


# -- ambient service ---------------------------------------------------------

_SERVICE_STACK: List[RunService] = []


def current_service() -> Optional[RunService]:
    """The innermost pushed service, or None (caching off)."""
    return _SERVICE_STACK[-1] if _SERVICE_STACK else None


def push_service(service: RunService) -> RunService:
    """Make ``service`` ambient until the matching :func:`pop_service`."""
    if not isinstance(service, RunService):
        raise ServiceError(
            f"push_service expects a RunService, got "
            f"{type(service).__name__}")
    _SERVICE_STACK.append(service)
    return service


def pop_service() -> RunService:
    if not _SERVICE_STACK:
        raise ServiceError("pop_service: no service is pushed")
    return _SERVICE_STACK.pop()


@contextmanager
def using_service(service: RunService) -> Iterator[RunService]:
    """``with using_service(svc): ...`` — scoped ambient service."""
    push_service(service)
    try:
        yield service
    finally:
        pop_service()


def ambient_cache_dir() -> Optional[str]:
    """Store root of the ambient service when caching is live, else None.

    This is what parallel experiment runners hand to worker-process
    initializers so cells in other processes share the same store.
    """
    service = current_service()
    if service is None or not service.enabled:
        return None
    return str(service.store.root)


def open_worker_service(cache_dir: Optional[str]) -> None:
    """Process-pool initializer: recreate the ambient service.

    Ambient state does not cross process boundaries (under the spawn
    start method nothing does), so workers re-open the store by path.
    ``None`` means the parent had no live cache; the worker then runs
    uncached.
    """
    if cache_dir is None:
        return
    push_service(RunService(cache_dir=cache_dir))


# -- the one helper every experiment funnels through -------------------------

def cached_run(workload_cls, *, num_threads: Optional[int] = None,
               scale: float = 1.0, fixed: bool = False, seed: int = 0,
               jitter_seed: int = 0xC0FFEE, with_cheetah: bool = False,
               machine_config=None, pmu_config=None,
               cheetah_config=None) -> RunOutcome:
    """Run a registry workload through the ambient service, if any.

    Drop-in for the ``run_workload(workload_cls(...), ...)`` pattern the
    experiment helpers use. With no ambient service, a non-canonical
    workload class (subclass or unregistered), or an active ambient
    observability default, this is exactly a direct
    :func:`~repro.run.run_workload` call.
    """
    service = current_service()
    if service is not None and service.enabled and _obs_default() is None:
        spec = spec_for_workload_cls(
            workload_cls, num_threads=num_threads, scale=scale, fixed=fixed,
            seed=seed, jitter_seed=jitter_seed, with_cheetah=with_cheetah,
            machine_config=machine_config, pmu_config=pmu_config,
            cheetah_config=cheetah_config)
        if spec is not None:
            return service.run(spec)
    workload = workload_cls(num_threads=num_threads, scale=scale,
                            fixed=fixed, seed=seed)
    return run_workload(workload, machine_config=machine_config,
                        jitter_seed=jitter_seed, pmu_config=pmu_config,
                        with_cheetah=with_cheetah,
                        cheetah_config=cheetah_config)
