"""Resilient job scheduler: dedupe, timeout, bounded retry, degradation.

The PR-1 parallel matrix fanned cells over a bare
``ProcessPoolExecutor``: one hung or crashed worker killed the whole
matrix. This scheduler keeps the same ordered-merge semantics (results
come back in submission order, so serial/parallel equivalence holds) and
adds the production behaviors around it:

- **dedupe** — identical pending jobs (same key) execute once and the
  result fans out to every position that asked for it;
- **per-job timeout** — a worker that exceeds ``timeout`` seconds is
  abandoned (and the pool recycled so the zombie cannot starve later
  rounds);
- **bounded retry with exponential backoff + jitter** — failed jobs are
  re-submitted up to ``retries`` times, sleeping
  ``base * factor**(attempt-1)`` (capped) plus a deterministic jitter
  drawn from ``jitter_seed``, so transient faults heal and thundering
  herds de-synchronize;
- **graceful degradation** — a job that exhausts its retries yields a
  structured :class:`JobFailure` in its result slot instead of raising,
  so one bad cell cannot take down the rest of the matrix.

Determinism for tests: ``sleep`` and ``fault_hook`` are injectable, the
backoff schedule is a pure function of the constructor arguments, and
every delay actually requested is recorded in :attr:`Scheduler.delays`.

Counters (``service_scheduler_*``) land in the PR-4
:class:`~repro.obs.MetricsRegistry` passed at construction.
"""

from __future__ import annotations

import random
import time
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ServiceError
from repro.obs import MetricsRegistry


@dataclass(frozen=True)
class JobFailure:
    """Structured record of a job that exhausted its retries.

    Appears in the scheduler's (and the service's) result list at the
    failed job's position; callers filter with ``isinstance`` and decide
    whether a partial matrix is acceptable.
    """

    key: str
    kind: str  # "exception" | "timeout"
    error: str
    attempts: int

    def render(self) -> str:
        return (f"job {self.key}: {self.kind} after {self.attempts} "
                f"attempt(s): {self.error}")


def _run_job(fn: Callable[..., Any], cell: Any,
             fault_hook: Optional[Callable[[str, int], None]],
             key: str, attempt: int) -> Any:
    """Top-level worker body (picklable for the spawn start method)."""
    if fault_hook is not None:
        fault_hook(key, attempt)
    return fn(cell)


class Scheduler:
    """Maps a cell function over cells with dedupe/timeout/retry.

    Args:
        jobs: worker processes; ``None``/``0``/``1`` runs inline in this
            process (no timeout enforcement — there is no worker to
            abandon — but dedupe, retry and degradation still apply).
        timeout: per-job seconds before an attempt counts as failed.
        retries: additional attempts after the first (``retries=2`` means
            at most 3 attempts).
        backoff_base / backoff_factor / backoff_cap: exponential backoff
            schedule in seconds.
        jitter_frac: each delay is multiplied by ``1 + U(0, jitter_frac)``
            with a :class:`random.Random` seeded at ``jitter_seed``.
        sleep: injectable sleep (tests pass a recorder).
        registry: metrics registry for the ``service_scheduler_*``
            counters.
        fault_hook: test-only ``(key, attempt) -> None`` invoked in the
            worker before the cell function; raising simulates a fault.
        initializer / initargs: forwarded to the process pool (used by
            the service to open the result store in each worker).
    """

    def __init__(self, jobs: Optional[int] = None,
                 timeout: Optional[float] = None,
                 retries: int = 2,
                 backoff_base: float = 0.05,
                 backoff_factor: float = 2.0,
                 backoff_cap: float = 2.0,
                 jitter_frac: float = 0.25,
                 jitter_seed: int = 0,
                 sleep: Callable[[float], None] = time.sleep,
                 registry: Optional[MetricsRegistry] = None,
                 fault_hook: Optional[Callable[[str, int], None]] = None,
                 initializer: Optional[Callable[..., None]] = None,
                 initargs: Tuple[Any, ...] = ()):
        if retries < 0:
            raise ServiceError(f"retries must be >= 0, got {retries}")
        if timeout is not None and timeout <= 0:
            raise ServiceError(f"timeout must be positive, got {timeout}")
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_cap = backoff_cap
        self.jitter_frac = jitter_frac
        self._rng = random.Random(jitter_seed)
        self._sleep = sleep
        self._fault_hook = fault_hook
        self._initializer = initializer
        self._initargs = initargs
        self.registry = registry if registry is not None else MetricsRegistry()
        #: Every backoff delay actually requested, in order (test hook).
        self.delays: List[float] = []
        self._jobs_total = self.registry.counter(
            "service_scheduler_jobs_total",
            "Scheduled jobs by final outcome.", label="outcome")
        self._retries_total = self.registry.counter(
            "service_scheduler_retries_total",
            "Job attempts re-submitted after a failure.")
        self._timeouts_total = self.registry.counter(
            "service_scheduler_timeouts_total",
            "Job attempts abandoned for exceeding the per-job timeout.")
        self._dedup_total = self.registry.counter(
            "service_scheduler_deduped_total",
            "Submitted cells coalesced onto an identical pending job.")

    # -- backoff -------------------------------------------------------------

    def backoff_delay(self, attempt: int) -> float:
        """Delay before retry ``attempt`` (1-based), jitter included."""
        base = self.backoff_base * (self.backoff_factor ** (attempt - 1))
        base = min(base, self.backoff_cap)
        return base * (1.0 + self._rng.uniform(0.0, self.jitter_frac))

    def _backoff(self, attempt: int) -> None:
        delay = self.backoff_delay(attempt)
        self.delays.append(delay)
        self._sleep(delay)

    # -- mapping -------------------------------------------------------------

    def map(self, fn: Callable[[Any], Any], cells: Sequence[Any],
            keys: Optional[Sequence[str]] = None) -> List[Any]:
        """Run ``fn`` over ``cells``; result list is in cell order.

        ``keys[i]`` identifies cell ``i`` for dedupe and failure
        reporting; when omitted, hashable cells dedupe on their own
        value (unhashable cells never dedupe). Each slot holds the
        cell's result or a :class:`JobFailure`.
        """
        if keys is not None and len(keys) != len(cells):
            raise ServiceError(
                f"got {len(keys)} keys for {len(cells)} cells")
        # Unique pending jobs, first occurrence wins; positions records
        # every slot each unique job must fill.
        unique: Dict[Any, int] = {}
        order: List[Tuple[str, Any]] = []  # (key, cell) per unique job
        positions: List[List[int]] = []
        for index, cell in enumerate(cells):
            if keys is not None:
                dedupe_key: Any = keys[index]
            else:
                try:
                    hash(cell)
                    dedupe_key = cell
                except TypeError:
                    dedupe_key = ("__slot__", index)
            if dedupe_key in unique:
                positions[unique[dedupe_key]].append(index)
                self._dedup_total.inc()
                continue
            unique[dedupe_key] = len(order)
            label = (keys[index] if keys is not None
                     else f"cell-{index}")
            order.append((label, cell))
            positions.append([index])

        if not self.jobs or self.jobs <= 1:
            outcomes = self._map_inline(fn, order)
        else:
            outcomes = self._map_pool(fn, order)

        results: List[Any] = [None] * len(cells)
        for job_index, outcome in enumerate(outcomes):
            for slot in positions[job_index]:
                results[slot] = outcome
        return results

    # -- inline execution ----------------------------------------------------

    def _map_inline(self, fn, order: List[Tuple[str, Any]]) -> List[Any]:
        outcomes = []
        for key, cell in order:
            outcomes.append(self._run_inline(fn, key, cell))
        return outcomes

    def _run_inline(self, fn, key: str, cell: Any) -> Any:
        last_error = ""
        attempts = 0
        for attempt in range(1, self.retries + 2):
            attempts = attempt
            try:
                result = _run_job(fn, cell, self._fault_hook, key, attempt)
            except Exception as exc:
                last_error = repr(exc)
                if attempt <= self.retries:
                    self._retries_total.inc()
                    self._backoff(attempt)
                continue
            self._jobs_total.inc(label_value="completed")
            return result
        self._jobs_total.inc(label_value="failed")
        return JobFailure(key=key, kind="exception", error=last_error,
                          attempts=attempts)

    # -- pool execution ------------------------------------------------------

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(max_workers=self.jobs,
                                   initializer=self._initializer,
                                   initargs=self._initargs)

    def _map_pool(self, fn, order: List[Tuple[str, Any]]) -> List[Any]:
        pending = list(range(len(order)))  # job indexes still unresolved
        outcomes: List[Any] = [None] * len(order)
        attempts = [0] * len(order)
        last_error = [""] * len(order)
        last_kind = ["exception"] * len(order)
        pool = self._make_pool()
        try:
            round_no = 0
            while pending:
                round_no += 1
                submitted = []
                for job_index in pending:
                    key, cell = order[job_index]
                    attempts[job_index] += 1
                    future = pool.submit(_run_job, fn, cell,
                                         self._fault_hook, key,
                                         attempts[job_index])
                    submitted.append((job_index, future, time.monotonic()))
                failed: List[int] = []
                timed_out = False
                for job_index, future, started in submitted:
                    try:
                        if self.timeout is None:
                            result = future.result()
                        else:
                            remaining = max(
                                0.0, self.timeout
                                - (time.monotonic() - started))
                            result = future.result(timeout=remaining)
                    except FutureTimeout:
                        future.cancel()
                        timed_out = True
                        self._timeouts_total.inc()
                        last_error[job_index] = (
                            f"timed out after {self.timeout}s")
                        last_kind[job_index] = "timeout"
                        failed.append(job_index)
                    except BrokenProcessPool as exc:
                        # The pool died under us (worker killed); rebuild
                        # it and count the job as a retryable failure.
                        timed_out = True
                        last_error[job_index] = repr(exc)
                        last_kind[job_index] = "exception"
                        failed.append(job_index)
                    except Exception as exc:
                        last_error[job_index] = repr(exc)
                        last_kind[job_index] = "exception"
                        failed.append(job_index)
                    else:
                        outcomes[job_index] = result
                        self._jobs_total.inc(label_value="completed")
                if timed_out:
                    # Abandoned futures may still be running inside their
                    # workers; recycle the pool so zombies cannot starve
                    # subsequent rounds.
                    pool.shutdown(wait=False, cancel_futures=True)
                    pool = self._make_pool()
                still_pending = []
                for job_index in failed:
                    if attempts[job_index] <= self.retries:
                        self._retries_total.inc()
                        still_pending.append(job_index)
                    else:
                        key, _ = order[job_index]
                        outcomes[job_index] = JobFailure(
                            key=key, kind=last_kind[job_index],
                            error=last_error[job_index],
                            attempts=attempts[job_index])
                        self._jobs_total.inc(label_value="failed")
                pending = still_pending
                if pending:
                    self._backoff(round_no)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
        return outcomes
