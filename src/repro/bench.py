"""Perf-regression harness: simulated-accesses-per-second over time.

Measures two things and records them in ``BENCH_engine.json`` at the
repo root so successive PRs can track the engine's perf trajectory:

- **throughput**: simulated accesses per wall-clock second for a native
  and a Cheetah-profiled run of representative workloads (the hot path
  every experiment funnels through);
- **experiment wall-clock**: seconds to regenerate small experiment
  configurations end-to-end.

All simulated outputs are deterministic; only the wall-clock measurement
varies run to run, so every metric is the best of ``repeats`` runs.

Use via ``python tools/bench.py`` or ``repro bench``. The JSON file
holds a list of entries; the first entry is the pre-optimisation
baseline and every run appends (unless ``--no-update``) and prints the
speedup against both the baseline and the previous entry.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import scaling
from repro.run import run_workload
from repro.sim import kernel as vector_kernel
from repro.sim.params import MachineConfig
from repro.workloads import get_workload

BENCH_FILE = "BENCH_engine.json"

#: (key, workload, threads, scale, profiled) throughput scenarios.
#: The ``*/serial`` scenarios run single-threaded: with one runnable
#: thread the scheduler grants unbounded quanta, so they are the purest
#: measure of burst-kernel throughput (the vector kernel batches longest
#: there). ``synthetic/serial`` degenerates to a single enormous
#: private-line burst — the long-burst showcase.
THROUGHPUT_SCENARIOS = (
    ("linear_regression/native", "linear_regression", 8, 1.0, False),
    ("linear_regression/cheetah", "linear_regression", 8, 1.0, True),
    ("histogram/native", "histogram", 8, 1.0, False),
    ("histogram/serial", "histogram", 1, 1.0, False),
    ("synthetic/serial", "synthetic", 1, 200.0, False),
)

SEED = 11


def _measure_throughput(name: str, threads: int, scale: float,
                        profiled: bool, repeats: int,
                        kernel: Optional[str] = None) -> Dict[str, object]:
    cls = get_workload(name)
    config = MachineConfig(kernel=kernel) if kernel else None
    best_rate = 0.0
    accesses = 0
    variant = "fused"
    for _ in range(repeats):
        workload = cls(num_threads=threads, scale=scale)
        start = time.perf_counter()
        outcome = run_workload(workload, machine_config=config,
                               jitter_seed=SEED, with_cheetah=profiled)
        elapsed = time.perf_counter() - start
        accesses = outcome.result.total_accesses
        variant = outcome.result.metadata.get("kernel", "fused")
        best_rate = max(best_rate, accesses / elapsed)
    return {"accesses": accesses, "accesses_per_sec": round(best_rate, 1),
            "kernel": variant}


def _measure_wall(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return round(best, 4)


def run_bench(repeats: int = 3,
              kernel: Optional[str] = None) -> Dict[str, object]:
    """Run every benchmark once; returns the entry dict (no file I/O)."""
    throughput = {
        key: _measure_throughput(name, threads, scale, profiled, repeats,
                                 kernel=kernel)
        for key, name, threads, scale, profiled in THROUGHPUT_SCENARIOS
    }
    experiments = {
        "scaling(scale=0.1)": _measure_wall(
            lambda: scaling.run(scale=0.1, thread_counts=(2, 4, 8)),
            repeats),
    }
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "repeats": repeats,
        "kernel": kernel or "auto",
        "numpy": vector_kernel.HAVE_NUMPY,
        "throughput": throughput,
        "experiments": experiments,
    }


def run_compare(kernels: Sequence[str], repeats: int = 3) -> str:
    """Measure every throughput scenario under each kernel; returns a
    speedup table (first kernel is the denominator)."""
    header = f"{'scenario':<28}" + "".join(
        f"{k + ' acc/s':>16}" for k in kernels)
    if len(kernels) > 1:
        header += f"{'speedup':>10}"
    lines = [header]
    for key, name, threads, scale, profiled in THROUGHPUT_SCENARIOS:
        rates = [
            _measure_throughput(name, threads, scale, profiled, repeats,
                                kernel=k)["accesses_per_sec"]
            for k in kernels
        ]
        row = f"{key:<28}" + "".join(f"{r:>16,.0f}" for r in rates)
        if len(kernels) > 1:
            row += f"{rates[-1] / rates[0]:>9.2f}x"
        lines.append(row)
    return "\n".join(lines)


def load_entries(path: Path) -> List[Dict[str, object]]:
    if not path.exists():
        return []
    return json.loads(path.read_text())["entries"]


def save_entries(path: Path, entries: Sequence[Dict[str, object]]) -> None:
    path.write_text(json.dumps({"entries": list(entries)}, indent=1) + "\n")


def _rate(entry: Dict[str, object], key: str) -> Optional[float]:
    scenario = entry.get("throughput", {}).get(key)
    return scenario["accesses_per_sec"] if scenario else None


def render_comparison(entries: Sequence[Dict[str, object]],
                      current: Dict[str, object]) -> str:
    lines = []
    for key, _, _, _, _ in THROUGHPUT_SCENARIOS:
        now = _rate(current, key)
        parts = [f"{key:<28} {now:>12,.0f} acc/s"]
        if entries:
            base = _rate(entries[0], key)
            if base:
                parts.append(f"{now / base:5.2f}x vs baseline"
                             f" [{entries[0].get('label', '#0')}]")
            if len(entries) > 1:
                prev = _rate(entries[-1], key)
                if prev:
                    parts.append(f"{now / prev:5.2f}x vs previous")
        lines.append("  ".join(parts))
    for name, wall in current.get("experiments", {}).items():
        parts = [f"{name:<28} {wall:>11.3f}s wall"]
        if entries:
            base = entries[0].get("experiments", {}).get(name)
            if base:
                parts.append(f"{base / wall:5.2f}x vs baseline")
        lines.append("  ".join(parts))
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Engine perf-regression bench; records "
                    f"{BENCH_FILE} at the repo root.")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats per metric (best is kept)")
    parser.add_argument("--label", default="current",
                        help="label stored with this entry")
    parser.add_argument("--no-update", action="store_true",
                        help="measure and compare without rewriting "
                             f"{BENCH_FILE}")
    parser.add_argument("--path", type=Path, default=None,
                        help=f"override the {BENCH_FILE} location")
    parser.add_argument("--kernel", choices=("fused", "vector", "auto"),
                        default=None,
                        help="burst kernel to bench (default: auto)")
    parser.add_argument("--compare", metavar="K1,K2", default=None,
                        help="measure each listed kernel (comma-separated, "
                             "e.g. fused,vector) and print a speedup "
                             f"table; does not touch {BENCH_FILE}")
    args = parser.parse_args(argv)

    if args.compare:
        kernels = [k.strip() for k in args.compare.split(",") if k.strip()]
        bad = [k for k in kernels if k not in ("fused", "vector", "auto")]
        if bad or not kernels:
            parser.error(f"--compare: unknown kernel(s) {bad or args.compare}")
        print(run_compare(kernels, repeats=args.repeats))
        return 0

    path = args.path or Path(__file__).resolve().parents[2] / BENCH_FILE
    entries = load_entries(path)
    entry = run_bench(repeats=args.repeats, kernel=args.kernel)
    entry["label"] = args.label
    print(render_comparison(entries, entry))
    if not args.no_update:
        save_entries(path, list(entries) + [entry])
        print(f"recorded entry '{args.label}' -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
