"""Perf-regression harness: simulated-accesses-per-second over time.

Measures two things and records them in ``BENCH_engine.json`` at the
repo root so successive PRs can track the engine's perf trajectory:

- **throughput**: simulated accesses per wall-clock second for a native
  and a Cheetah-profiled run of representative workloads (the hot path
  every experiment funnels through);
- **experiment wall-clock**: seconds to regenerate small experiment
  configurations end-to-end.

All simulated outputs are deterministic; only the wall-clock measurement
varies run to run, so every metric is the best of ``repeats`` runs.

Use via ``python tools/bench.py`` or ``repro bench``. The JSON file
holds a list of entries; the first entry is the pre-optimisation
baseline and every run appends (unless ``--no-update``) and prints the
speedup against both the baseline and the previous entry.
"""

from __future__ import annotations

import argparse
import json
import platform
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence

from repro.experiments import scaling
from repro.run import run_workload
from repro.sim import kernel as vector_kernel
from repro.sim.params import MachineConfig
from repro.workloads import get_workload

BENCH_FILE = "BENCH_engine.json"

#: (key, workload, threads, scale, profiled) throughput scenarios.
#: The ``*/serial`` scenarios run single-threaded: with one runnable
#: thread the scheduler grants unbounded quanta, so they are the purest
#: measure of burst-kernel throughput (the vector kernel batches longest
#: there). ``synthetic/serial`` degenerates to a single enormous
#: private-line burst — the long-burst showcase.
THROUGHPUT_SCENARIOS = (
    ("linear_regression/native", "linear_regression", 8, 1.0, False),
    ("linear_regression/cheetah", "linear_regression", 8, 1.0, True),
    ("histogram/native", "histogram", 8, 1.0, False),
    ("histogram/serial", "histogram", 1, 1.0, False),
    ("synthetic/serial", "synthetic", 1, 200.0, False),
)

SEED = 11

KERNELS = ("fused", "vector", "auto")
MODES = ("simulate", "predict", "sampled")

#: The predict-mode showcase scenario: a thread/volume combination far
#: beyond what full simulation can touch interactively. ~1.06e8
#: simulated accesses (1024 workers x 2 accesses x 800*65 iterations).
PREDICT_TARGET = {"workload": "synthetic", "threads": 1024, "scale": 65.0,
                  "cores": 1024}
#: Feasible replica used to measure the real simulate-mode access rate
#: that the extrapolated "implied simulate seconds" is computed from.
PREDICT_REPLICA = {"threads": 64, "scale": 4.0}


def _measure_throughput(name: str, threads: int, scale: float,
                        profiled: bool, repeats: int,
                        kernel: Optional[str] = None,
                        mode: Optional[str] = None) -> Dict[str, object]:
    cls = get_workload(name)
    config = None
    if kernel or (mode and mode != "simulate"):
        defaults = MachineConfig()
        config = MachineConfig(kernel=kernel or defaults.kernel,
                               mode=mode or defaults.mode)
    best_rate = 0.0
    accesses = 0
    variant = "fused"
    for _ in range(repeats):
        workload = cls(num_threads=threads, scale=scale)
        start = time.perf_counter()
        outcome = run_workload(workload, machine_config=config,
                               jitter_seed=SEED, with_cheetah=profiled)
        elapsed = time.perf_counter() - start
        # For the analytical modes this is the *predicted* access count
        # of the target run, so the rate reads as effective accesses per
        # second — the fair apples-to-apples number for mode comparison.
        accesses = outcome.result.total_accesses
        variant = outcome.result.metadata.get("kernel", "fused")
        best_rate = max(best_rate, accesses / elapsed)
    return {"accesses": accesses, "accesses_per_sec": round(best_rate, 1),
            "kernel": variant}


def measure_predict_speedup(repeats: int = 1) -> Dict[str, object]:
    """The fast-forward headline: predict a 1024-thread, 10^8-access run
    and compare its wall-clock against the *implied* cost of simulating
    it (predicted accesses / measured simulate rate on a feasible
    replica of the same workload)."""
    cls = get_workload(PREDICT_TARGET["workload"])
    target_config = MachineConfig(num_cores=PREDICT_TARGET["cores"],
                                  mode="predict")
    predict_wall = float("inf")
    outcome = None
    for _ in range(repeats):
        workload = cls(num_threads=PREDICT_TARGET["threads"],
                       scale=PREDICT_TARGET["scale"])
        start = time.perf_counter()
        outcome = run_workload(workload, machine_config=target_config,
                               jitter_seed=SEED, with_cheetah=True)
        predict_wall = min(predict_wall, time.perf_counter() - start)
    predicted_accesses = outcome.result.total_accesses

    replica_config = MachineConfig(num_cores=PREDICT_TARGET["cores"])
    replica_rate = 0.0
    for _ in range(repeats):
        replica = cls(num_threads=PREDICT_REPLICA["threads"],
                      scale=PREDICT_REPLICA["scale"])
        start = time.perf_counter()
        result = run_workload(replica, machine_config=replica_config,
                              jitter_seed=SEED, with_cheetah=True)
        elapsed = time.perf_counter() - start
        replica_rate = max(replica_rate,
                           result.result.total_accesses / elapsed)
    implied_simulate = (predicted_accesses / replica_rate
                        if replica_rate else float("inf"))
    return {
        "scenario": (f"{PREDICT_TARGET['workload']}"
                     f"/{PREDICT_TARGET['threads']}t"
                     f"/scale{PREDICT_TARGET['scale']:g}"),
        "threads": PREDICT_TARGET["threads"],
        "scale": PREDICT_TARGET["scale"],
        "predicted_accesses": predicted_accesses,
        "predicted_invalidations": outcome.invalidations,
        "predict_wall_s": round(predict_wall, 4),
        "simulate_rate_acc_per_s": round(replica_rate, 1),
        "implied_simulate_s": round(implied_simulate, 2),
        "speedup_vs_simulate": round(implied_simulate / predict_wall, 1),
    }


def measure_predict_error(repeats: int = 1) -> Dict[str, object]:
    """Predict-vs-simulate invalidation/runtime error on a scenario small
    enough to hold the ground truth (rides in the bench entry so the
    speedup number is always published next to its accuracy)."""
    del repeats  # both runs are deterministic
    from repro.predict.validate import relative_error
    cls = get_workload("synthetic")
    truth = run_workload(cls(num_threads=8, scale=2.0),
                         jitter_seed=SEED, with_cheetah=True)
    pred = run_workload(cls(num_threads=8, scale=2.0),
                        machine_config=MachineConfig(mode="predict"),
                        jitter_seed=SEED, with_cheetah=True)
    return {
        "scenario": "synthetic/8t/scale2",
        "true_invalidations": truth.invalidations,
        "pred_invalidations": pred.invalidations,
        "invalidation_error": round(
            relative_error(pred.invalidations, truth.invalidations), 4),
        "runtime_error": round(
            abs(pred.result.runtime - truth.result.runtime)
            / truth.result.runtime, 4),
        "verdict_agrees": bool(truth.report.significant)
        == bool(pred.report.significant),
    }


def _measure_wall(fn: Callable[[], object], repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return round(best, 4)


def run_bench(repeats: int = 3,
              kernel: Optional[str] = None) -> Dict[str, object]:
    """Run every benchmark once; returns the entry dict (no file I/O)."""
    throughput = {
        key: _measure_throughput(name, threads, scale, profiled, repeats,
                                 kernel=kernel)
        for key, name, threads, scale, profiled in THROUGHPUT_SCENARIOS
    }
    experiments = {
        "scaling(scale=0.1)": _measure_wall(
            lambda: scaling.run(scale=0.1, thread_counts=(2, 4, 8)),
            repeats),
    }
    return {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "python": platform.python_version(),
        "repeats": repeats,
        "kernel": kernel or "auto",
        "numpy": vector_kernel.HAVE_NUMPY,
        "throughput": throughput,
        "experiments": experiments,
        "predict": {
            "fast_forward": measure_predict_speedup(repeats=1),
            "accuracy": measure_predict_error(),
        },
    }


def run_compare(variants: Sequence[str], repeats: int = 3,
                variant_kind: str = "kernel") -> str:
    """Measure every throughput scenario under each kernel *or* mode;
    returns a speedup table (first variant is the denominator)."""
    header = f"{'scenario':<28}" + "".join(
        f"{v + ' acc/s':>18}" for v in variants)
    if len(variants) > 1:
        header += f"{'speedup':>10}"
    lines = [header]
    for key, name, threads, scale, profiled in THROUGHPUT_SCENARIOS:
        rates = []
        for variant in variants:
            kwargs = ({"kernel": variant} if variant_kind == "kernel"
                      else {"mode": variant})
            rates.append(_measure_throughput(
                name, threads, scale, profiled, repeats,
                **kwargs)["accesses_per_sec"])
        row = f"{key:<28}" + "".join(f"{r:>18,.0f}" for r in rates)
        if len(variants) > 1:
            row += f"{rates[-1] / rates[0]:>9.2f}x"
        lines.append(row)
    if variant_kind == "mode":
        lines.append("(analytical-mode rates are effective: predicted "
                     "accesses of the target run per wall second)")
    return "\n".join(lines)


def load_entries(path: Path) -> List[Dict[str, object]]:
    if not path.exists():
        return []
    return json.loads(path.read_text())["entries"]


def save_entries(path: Path, entries: Sequence[Dict[str, object]]) -> None:
    path.write_text(json.dumps({"entries": list(entries)}, indent=1) + "\n")


def _rate(entry: Dict[str, object], key: str) -> Optional[float]:
    scenario = entry.get("throughput", {}).get(key)
    return scenario["accesses_per_sec"] if scenario else None


def render_comparison(entries: Sequence[Dict[str, object]],
                      current: Dict[str, object]) -> str:
    lines = []
    for key, _, _, _, _ in THROUGHPUT_SCENARIOS:
        now = _rate(current, key)
        parts = [f"{key:<28} {now:>12,.0f} acc/s"]
        if entries:
            base = _rate(entries[0], key)
            if base:
                parts.append(f"{now / base:5.2f}x vs baseline"
                             f" [{entries[0].get('label', '#0')}]")
            if len(entries) > 1:
                prev = _rate(entries[-1], key)
                if prev:
                    parts.append(f"{now / prev:5.2f}x vs previous")
        lines.append("  ".join(parts))
    for name, wall in current.get("experiments", {}).items():
        parts = [f"{name:<28} {wall:>11.3f}s wall"]
        if entries:
            base = entries[0].get("experiments", {}).get(name)
            if base:
                parts.append(f"{base / wall:5.2f}x vs baseline")
        lines.append("  ".join(parts))
    predict = current.get("predict")
    if predict:
        ff = predict["fast_forward"]
        acc = predict["accuracy"]
        lines.append(
            f"predict {ff['scenario']:<20} {ff['predict_wall_s']:.2f}s for "
            f"{ff['predicted_accesses']:,} accesses "
            f"(implied simulate {ff['implied_simulate_s']:,.0f}s -> "
            f"{ff['speedup_vs_simulate']:,.0f}x)")
        lines.append(
            f"predict accuracy [{acc['scenario']}]     invalidation error "
            f"{acc['invalidation_error']:.1%}, runtime error "
            f"{acc['runtime_error']:.1%}, verdict "
            f"{'agrees' if acc['verdict_agrees'] else 'DISAGREES'}")
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Engine perf-regression bench; records "
                    f"{BENCH_FILE} at the repo root.")
    parser.add_argument("--repeats", type=int, default=3,
                        help="wall-clock repeats per metric (best is kept)")
    parser.add_argument("--label", default="current",
                        help="label stored with this entry")
    parser.add_argument("--no-update", action="store_true",
                        help="measure and compare without rewriting "
                             f"{BENCH_FILE}")
    parser.add_argument("--path", type=Path, default=None,
                        help=f"override the {BENCH_FILE} location")
    parser.add_argument("--kernel", choices=("fused", "vector", "auto"),
                        default=None,
                        help="burst kernel to bench (default: auto)")
    parser.add_argument("--compare", metavar="V1,V2", default=None,
                        help="measure each listed kernel (fused,vector) or "
                             "mode (simulate,predict,sampled) and print a "
                             f"speedup table; does not touch {BENCH_FILE}")
    args = parser.parse_args(argv)

    if args.compare:
        variants = [v.strip() for v in args.compare.split(",") if v.strip()]
        if not variants:
            parser.error(f"--compare: nothing to compare in "
                         f"{args.compare!r}")
        if all(v in KERNELS for v in variants):
            kind = "kernel"
        elif all(v in MODES for v in variants):
            kind = "mode"
        else:
            bad = [v for v in variants
                   if v not in KERNELS and v not in MODES]
            parser.error(
                f"--compare: unknown variant(s) {bad}; list either "
                f"kernels {KERNELS} or modes {MODES}, not a mixture")
        print(run_compare(variants, repeats=args.repeats,
                          variant_kind=kind))
        return 0

    path = args.path or Path(__file__).resolve().parents[2] / BENCH_FILE
    entries = load_entries(path)
    entry = run_bench(repeats=args.repeats, kernel=args.kernel)
    entry["label"] = args.label
    print(render_comparison(entries, entry))
    if not args.no_update:
        save_entries(path, list(entries) + [entry])
        print(f"recorded entry '{args.label}' -> {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
