"""Simulated performance-monitoring unit (AMD IBS / Intel PEBS analogue)."""

from repro.pmu.adaptive import AdaptiveConfig, AdaptiveController
from repro.pmu.sample import MemorySample
from repro.pmu.sampler import PMU, PMUConfig

__all__ = ["PMU", "PMUConfig", "MemorySample",
           "AdaptiveConfig", "AdaptiveController"]
