"""Per-thread instruction-based address sampling with overhead accounting.

Models the sampling mechanics the paper relies on:

- the PMU counts retired instructions per thread and fires every
  ``period`` instructions (the paper samples one out of 64K; the simulated
  workloads are smaller, so the default period is proportionally lower);
- a fired sample on a memory instruction delivers a
  :class:`~repro.pmu.sample.MemorySample` to the installed handler and
  charges the handler's cost to the *sampled thread's* clock — this is
  the "handling of each sampled memory access" that dominates Cheetah's
  ~7% overhead (Section 4.1);
- fires on non-memory instructions cost a cheap trap but deliver nothing;
- every thread start pays a setup cost (the six pfmon API calls and six
  system calls of Section 4.1) — the reason thread-heavy applications
  such as kmeans (224 threads) and x264 (1024 threads) show >20% overhead.

Sampling periods are jittered deterministically per thread so that
strided loops cannot alias with the period.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional

from repro.config import ConfigBase
from repro.errors import ConfigError, SimulationError
from repro.pmu.adaptive import AdaptiveConfig, AdaptiveController
from repro.pmu.sample import MemorySample

SampleHandler = Callable[[MemorySample], None]


@dataclass(frozen=True)
class PMUConfig(ConfigBase):
    """Sampling parameters.

    Attributes:
        period: mean instructions between sample fires. The paper samples
            one out of 64K instructions on runs lasting >=5s (~10^10
            instructions); simulated workloads retire ~10^5-10^6
            instructions, so the default period is scaled down by the
            same factor to preserve the samples-per-run ratio.
        jitter: fraction of the period used as uniform jitter (+-).
        handler_cost: cycles charged per delivered memory sample.
        trap_cost: cycles charged per fire on a non-memory instruction.
        thread_setup_cost: cycles charged to each thread at start for
            programming the PMU registers.
        seed: base seed for per-thread jitter streams.
        adaptive: adaptive-policy knobs (:class:`AdaptiveConfig`);
            ``period`` is the *starting* period when the policy is
            enabled, and the fixed period otherwise.
    """

    period: int = 128
    jitter: float = 0.25
    handler_cost: int = 22
    trap_cost: int = 5
    thread_setup_cost: int = 2_500
    seed: int = 0x5EED
    adaptive: AdaptiveConfig = field(default_factory=AdaptiveConfig)

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ConfigError(f"sampling period must be >= 1, got {self.period}")
        if not 0.0 <= self.jitter < 1.0:
            raise ConfigError(f"jitter must be in [0, 1), got {self.jitter}")
        if min(self.handler_cost, self.trap_cost, self.thread_setup_cost) < 0:
            raise ConfigError("PMU costs must be non-negative")


class PMU:
    """Samples one memory access out of every ~``period`` instructions."""

    def __init__(self, config: Optional[PMUConfig] = None,
                 handler: Optional[SampleHandler] = None):
        self.config = config or PMUConfig()
        self.handler = handler
        # Live sampling period. Equals ``config.period`` forever unless
        # an adaptive controller (or an explicit ``set_period`` call)
        # retunes it mid-run; ``_next_period`` always reads this.
        self.period = self.config.period
        self.period_changes = 0
        self.controller: Optional[AdaptiveController] = (
            AdaptiveController(self, self.config.adaptive)
            if self.config.adaptive.enabled else None)
        self._countdown: Dict[int, int] = {}
        self._rng: Dict[int, random.Random] = {}
        self.samples_fired = 0
        self.memory_samples = 0
        # Memory fires whose sample the current rotation slot discarded.
        self.rotation_skipped = 0
        self.threads_set_up = 0
        # Cycles this PMU charged to each thread (setup + handlers +
        # traps). The profiler can subtract its own overhead from
        # runtime decompositions.
        self.overhead_by_tid: Dict[int, int] = {}
        # Observability hook (set by Observability.wire). Fires always
        # route through on_access/on_work even under the engine's fused
        # burst loop, so sample/trap events are seen regardless of which
        # burst path the run takes.
        self.obs = None

    def install_handler(self, handler: SampleHandler) -> None:
        """Install the callback invoked with every memory sample."""
        self.handler = handler

    def set_period(self, period: int) -> None:
        """Retune the live sampling period (floored at 1).

        Takes effect at each thread's *next* fire — in-flight countdowns
        keep their already-drawn period, exactly like reprogramming a
        hardware counter that is already armed.
        """
        period = max(1, int(period))
        if period != self.period:
            self.period = period
            self.period_changes += 1

    def on_thread_start(self, tid: int) -> int:
        """Arm sampling for a new thread; returns the setup cost in cycles."""
        rng = random.Random((self.config.seed << 17) ^ (tid * 0x9E3779B1))
        self._rng[tid] = rng
        self._countdown[tid] = self._next_period(tid)
        self.threads_set_up += 1
        self.overhead_by_tid[tid] = (self.overhead_by_tid.get(tid, 0)
                                     + self.config.thread_setup_cost)
        return self.config.thread_setup_cost

    def on_access(self, tid: int, core: int, addr: int, is_write: bool,
                  latency: int, size: int, timestamp: int) -> int:
        """Account one memory instruction; returns extra cycles charged.

        A fire with a handler installed (and whose sample the rotation
        slot, if any, delivers) charges ``handler_cost`` and counts as a
        memory sample. A fire with *no* handler — or one the rotation
        slot discards — still takes the interrupt but drops the sample
        at ``trap_cost``, like a fire on an event the hardware was not
        programmed to decode; it counts as a trap, not a memory sample.

        Raises :class:`SimulationError` for a thread that was never armed
        via :meth:`on_thread_start` (a bare ``KeyError`` from the
        countdown table is useless at the engine boundary).
        """
        try:
            remaining = self._countdown[tid] - 1
        except KeyError:
            raise self._not_armed(tid) from None
        if remaining > 0:
            self._countdown[tid] = remaining
            return 0
        self._countdown[tid] = self._next_period(tid)
        self.samples_fired += 1
        controller = self.controller
        delivered = self.handler is not None
        if (delivered and controller is not None
                and not controller.wants_sample(is_write, timestamp)):
            delivered = False
            self.rotation_skipped += 1
        if delivered:
            self.memory_samples += 1
            cost = self.config.handler_cost
            self.handler(MemorySample(
                tid=tid, core=core, addr=addr, is_write=is_write,
                latency=latency, size=size, timestamp=timestamp,
            ))
        else:
            cost = self.config.trap_cost
        self.overhead_by_tid[tid] = (self.overhead_by_tid.get(tid, 0)
                                     + cost)
        if controller is not None:
            controller.on_fire(addr, timestamp)
        if self.obs is not None:
            if delivered:
                self.obs.on_pmu_sample(tid, core, addr, is_write, cost,
                                       timestamp)
            else:
                self.obs.on_pmu_trap(tid, 1, cost, timestamp)
        return cost

    def on_work(self, tid: int, instructions: int,
                now: Optional[int] = None) -> int:
        """Account ``instructions`` non-memory instructions at once.

        Fires that land inside the batch cost a trap each but deliver no
        sample (the handler discards non-memory IBS samples immediately).
        ``now`` is the calling thread's clock after the batch, used only
        to timestamp trap events for observability.
        """
        try:
            remaining = self._countdown[tid] - instructions
        except KeyError:
            raise self._not_armed(tid) from None
        fires = 0
        while remaining <= 0:
            fires += 1
            remaining += self._next_period(tid)
        self._countdown[tid] = remaining
        if not fires:
            return 0
        self.samples_fired += fires
        cost = fires * self.config.trap_cost
        self.overhead_by_tid[tid] = (self.overhead_by_tid.get(tid, 0)
                                     + cost)
        if self.obs is not None:
            self.obs.on_pmu_trap(tid, fires, cost, now)
        return cost

    @staticmethod
    def _not_armed(tid: int) -> SimulationError:
        return SimulationError(
            f"PMU not armed for thread {tid}: on_thread_start({tid}) "
            "was never called")

    def _next_period(self, tid: int) -> int:
        period = self.period
        jitter = self.config.jitter
        if jitter == 0.0:
            return period
        spread = int(period * jitter)
        if spread == 0:
            return period
        return period + self._rng[tid].randint(-spread, spread)
