"""Adaptive sampling-period control and event rotation for the PMU.

Cheetah samples at a fixed period; real always-on agents (MicroSentinel's
``mode_controller`` / ``pmu_rotator``) steer the PMU instead: sample
coarsely while nothing is happening, tighten the period as soon as a
cache line turns hot, back off again in quiet phases, and rotate which
event flavour the hardware is programmed for. This module models that
policy over the simulated :class:`~repro.pmu.sampler.PMU`:

- :class:`AdaptiveConfig` describes the policy (enabled off by default,
  so an unconfigured PMU behaves exactly as before);
- :class:`AdaptiveController` watches delivered memory fires, keeps a
  windowed per-line hit count, and every ``evaluate_interval`` cycles
  either tightens the live period (any line hot: ``period *=
  tighten_factor``, floored at ``min_period``) or backs it off (no hot
  lines: ``period *= backoff_factor``, capped at ``max_period``);
- an optional ``rotation`` schedule gates *delivery*: in a ``"write"``
  slot only write samples reach the handler (reads still cost a trap,
  modelling an event the hardware was not programmed for), and
  vice-versa for ``"read"``; ``"all"`` delivers everything.

Period changes take effect at each thread's *next* fire — the engine's
fused and vectorised burst kernels only cache countdowns, never the
period itself, so a live change needs no kernel cooperation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.config import ConfigBase
from repro.errors import ConfigError

#: Valid entries for :attr:`AdaptiveConfig.rotation`.
ROTATION_MODES = ("all", "read", "write")


@dataclass(frozen=True)
class AdaptiveConfig(ConfigBase):
    """Adaptive-sampling policy.

    Attributes:
        enabled: master switch; ``False`` (the default) leaves the PMU at
            its fixed configured period with no rotation.
        min_period: floor for the live period when tightening.
        max_period: ceiling for the live period when backing off.
        hot_line_samples: delivered samples a line needs inside
            ``window`` cycles to count as hot.
        window: cycles of hotness memory; a line idle this long resets.
        evaluate_interval: cycles of sample time between policy steps.
        tighten_factor: multiplier applied to the period when at least
            one line is hot (must be in ``(0, 1]``).
        backoff_factor: multiplier applied when no line is hot (``>= 1``).
        rotation: cyclic schedule of sampled-event emphasis; each slot
            lasts ``rotate_interval`` cycles. ``("all",)`` disables
            rotation.
        rotate_interval: cycles per rotation slot.
        line_size: cache-line granularity for hotness accounting.
    """

    enabled: bool = False
    min_period: int = 96
    max_period: int = 512
    hot_line_samples: int = 4
    window: int = 60_000
    evaluate_interval: int = 10_000
    tighten_factor: float = 0.5
    backoff_factor: float = 2.0
    rotation: Tuple[str, ...] = ("all",)
    rotate_interval: int = 40_000
    line_size: int = 64

    def __post_init__(self) -> None:
        object.__setattr__(self, "rotation", tuple(self.rotation))
        if self.min_period < 1:
            raise ConfigError("min_period must be >= 1")
        if self.max_period < self.min_period:
            raise ConfigError("max_period must be >= min_period")
        if self.hot_line_samples < 1:
            raise ConfigError("hot_line_samples must be >= 1")
        if self.window < 1:
            raise ConfigError("window must be >= 1")
        if self.evaluate_interval < 1:
            raise ConfigError("evaluate_interval must be >= 1")
        if not 0.0 < self.tighten_factor <= 1.0:
            raise ConfigError("tighten_factor must be in (0, 1]")
        if self.backoff_factor < 1.0:
            raise ConfigError("backoff_factor must be >= 1")
        if not self.rotation:
            raise ConfigError("rotation must name at least one slot")
        bad = sorted(set(self.rotation) - set(ROTATION_MODES))
        if bad:
            raise ConfigError(
                f"unknown rotation mode(s): {', '.join(bad)} "
                f"(valid: {', '.join(ROTATION_MODES)})")
        if self.rotate_interval < 1:
            raise ConfigError("rotate_interval must be >= 1")
        if self.line_size <= 0 or self.line_size & (self.line_size - 1):
            raise ConfigError(
                f"line_size must be a power of two, got {self.line_size}")


class AdaptiveController:
    """Steers a live PMU period from the delivered-sample stream.

    The controller is pull-free: the PMU calls :meth:`wants_sample` on
    every fire to apply the rotation gate and :meth:`on_fire` afterwards
    to feed hotness accounting; policy evaluation happens inline when a
    fire's timestamp crosses the next evaluation boundary. All state is
    derived from sample timestamps, so behaviour is deterministic for a
    deterministic simulation.
    """

    def __init__(self, pmu, config: AdaptiveConfig):
        self.pmu = pmu
        self.config = config
        self._shift = config.line_size.bit_length() - 1
        # line -> (windowed count, last-seen timestamp)
        self._hits: Dict[int, Tuple[int, int]] = {}
        self._next_eval = config.evaluate_interval
        self.hot_lines = 0
        self.evaluations = 0
        self.tightenings = 0
        self.backoffs = 0
        #: (timestamp, new period) for every live change, oldest first.
        self.history: List[Tuple[int, int]] = []

    # -- rotation ------------------------------------------------------------

    def current_mode(self, now: int) -> str:
        rotation = self.config.rotation
        if len(rotation) == 1:
            return rotation[0]
        return rotation[(now // self.config.rotate_interval) % len(rotation)]

    def wants_sample(self, is_write: bool, now: int) -> bool:
        """Whether the current rotation slot delivers this fire."""
        mode = self.current_mode(now)
        if mode == "all":
            return True
        return (mode == "write") == is_write

    # -- hotness + policy ----------------------------------------------------

    def on_fire(self, addr: int, now: int) -> None:
        """Feed one memory fire (delivered or not) into hotness state."""
        line = addr >> self._shift
        entry = self._hits.get(line)
        if entry is not None and now - entry[1] <= self.config.window:
            self._hits[line] = (entry[0] + 1, now)
        else:
            self._hits[line] = (1, now)
        if now >= self._next_eval:
            self._evaluate(now)

    def _evaluate(self, now: int) -> None:
        cfg = self.config
        self.evaluations += 1
        self._next_eval = now + cfg.evaluate_interval
        hot = 0
        stale = []
        for line, (count, last) in self._hits.items():
            if now - last > cfg.window:
                stale.append(line)
            elif count >= cfg.hot_line_samples:
                hot += 1
        for line in stale:
            del self._hits[line]
        self.hot_lines = hot
        period = self.pmu.period
        if hot:
            target = max(cfg.min_period, int(period * cfg.tighten_factor))
        else:
            target = min(cfg.max_period, int(period * cfg.backoff_factor))
        if target != period:
            if target < period:
                self.tightenings += 1
            else:
                self.backoffs += 1
            self.pmu.set_period(target)
            self.history.append((now, target))
