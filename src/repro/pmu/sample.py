"""The record a PMU sample delivers to the profiler.

For each sample "the PMU distinguishes whether it is a memory read or
write, captures the memory address, and records the thread ID that
triggered the sample" (Section 2.1), plus the access latency in cycles
(Observation 2, Section 3) — exactly the fields carried here.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class MemorySample:
    """One sampled memory access.

    Attributes:
        tid: id of the thread that triggered the sample (samples are
            delivered to the triggering thread, as Cheetah configures via
            ``F_SETOWN_EX``).
        core: core the thread runs on.
        addr: sampled memory address.
        is_write: True for stores, False for loads.
        latency: access latency in cycles, as measured by the PMU.
        size: access width in bytes.
        timestamp: the thread's clock when the sample fired.
    """

    tid: int
    core: int
    addr: int
    is_write: bool
    latency: int
    size: int
    timestamp: int
