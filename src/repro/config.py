"""Shared configuration conventions for every public config dataclass.

All four user-facing configuration dataclasses — ``MachineConfig``,
``PMUConfig``, ``DetectorConfig`` and ``CheetahConfig`` (plus their
nested ``LatencyModel`` / ``AssessmentConfig`` members and the
observability ``ObsConfig``) — share one construction convention,
provided by :class:`ConfigBase`:

- ``Cls.from_dict(data)`` builds a config from a plain mapping,
  recursing into nested config dataclasses, rejecting unknown keys with
  :class:`~repro.errors.ConfigError`, and running the class's own
  ``__post_init__`` validation;
- ``cfg.to_dict()`` produces the inverse plain-dict form (nested
  configs become nested dicts), suitable for JSON round-tripping;
- ``cfg.replace(**changes)`` is :func:`dataclasses.replace` spelled as
  a method, so callers need not import ``dataclasses`` to vary one
  field.

The CLI builds all of its configs through :func:`build_configs`, one
helper mapping a parsed ``argparse`` namespace onto the config objects
instead of ad-hoc kwargs plumbing per subcommand.
"""

from __future__ import annotations

import dataclasses
import typing
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigError


class ConfigBase:
    """Mixin giving config dataclasses ``from_dict``/``to_dict``/``replace``.

    Subclasses must be dataclasses; construction-time validation lives in
    each subclass's ``__post_init__`` and is exercised by every
    ``from_dict`` call (a dict that decodes to an invalid config raises
    :class:`~repro.errors.ConfigError` exactly like direct construction).
    """

    @classmethod
    def _field_types(cls) -> Dict[str, Any]:
        # ``from __future__ import annotations`` turns field types into
        # strings; resolve them so nested config dataclasses can be
        # detected. Fall back to the raw annotations when resolution
        # fails (e.g. names only available under TYPE_CHECKING).
        try:
            return typing.get_type_hints(cls)
        except Exception:  # pragma: no cover - defensive
            return {f.name: f.type for f in dataclasses.fields(cls)}

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ConfigBase":
        """Build a validated config from a plain mapping.

        Unknown keys raise :class:`~repro.errors.ConfigError`; values for
        fields that are themselves config dataclasses may be given as
        nested mappings and are converted recursively.
        """
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"{cls.__name__}.from_dict expects a mapping, "
                f"got {type(data).__name__}")
        fields = {f.name: f for f in dataclasses.fields(cls) if f.init}
        unknown = sorted(set(data) - set(fields))
        if unknown:
            raise ConfigError(
                f"unknown {cls.__name__} key(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(fields))})")
        hints = cls._field_types()
        kwargs: Dict[str, Any] = {}
        for name in fields:
            if name not in data:
                continue
            value = data[name]
            ftype = hints.get(name)
            if (isinstance(value, Mapping) and isinstance(ftype, type)
                    and dataclasses.is_dataclass(ftype)):
                if issubclass(ftype, ConfigBase):
                    value = ftype.from_dict(value)
                else:  # pragma: no cover - all nested configs use the mixin
                    value = ftype(**value)
            kwargs[name] = value
        return cls(**kwargs)

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form; nested config dataclasses become nested dicts."""
        out: Dict[str, Any] = {}
        for f in dataclasses.fields(self):
            if not f.init:
                continue
            value = getattr(self, f.name)
            if dataclasses.is_dataclass(value) and not isinstance(value, type):
                value = (value.to_dict() if isinstance(value, ConfigBase)
                         else dataclasses.asdict(value))
            out[f.name] = value
        return out

    def replace(self, **changes: Any) -> "ConfigBase":
        """A new config with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)


@dataclasses.dataclass(frozen=True)
class CLIConfigs:
    """Everything :func:`build_configs` derives from a CLI namespace."""

    workload_kwargs: Dict[str, Any]
    jitter_seed: int
    machine: Optional[Any]  # MachineConfig
    pmu: Optional[Any]      # PMUConfig
    cheetah: Optional[Any]  # CheetahConfig
    obs: Optional[Any]      # ObsConfig
    cache_enabled: bool = True
    cache_dir: Optional[str] = None  # None: repro.service.default_cache_dir
    jobs: Optional[int] = None
    check: bool = False  # run under the coherence sanitizer
    #: The unified :class:`repro.request.RunRequest` the configs above
    #: were derived from; None for subcommands without a workload.
    request: Optional[Any] = None


def build_configs(args: Any) -> CLIConfigs:
    """Map a parsed CLI namespace onto the public config dataclasses.

    Every ``repro`` subcommand that runs a workload funnels its arguments
    through here, so flag-to-config wiring lives in exactly one place.
    Missing attributes fall back to their defaults, which lets commands
    with different flag subsets share the helper.
    """
    # Local imports: this module sits below the config-owning packages in
    # the import graph (sim.params and friends import ConfigBase from
    # here), so importing them at module load would be circular.
    from repro.obs.config import ObsConfig
    from repro.request import RunRequest

    def get(name: str, default: Any = None) -> Any:
        return getattr(args, name, default)

    workload_kwargs: Dict[str, Any] = {
        "num_threads": get("threads"),
        "scale": get("scale", 1.0),
        "fixed": bool(get("fixed", False)),
    }

    line_size = get("line_size")
    cores = get("cores")
    kernel = get("kernel")
    mode = get("mode")
    check = bool(get("check", False))
    want_trace = bool(get("trace")) or get("command") == "trace"
    want_metrics = bool(get("metrics")) or get("command") == "metrics"

    # Execution-mode sanity: the analytical modes skip (most of) the full
    # simulation, so flags that need to observe every access of the real
    # run cannot mean anything. Reject the combination here — with the
    # flag spellings the user typed — instead of deep in the run layer.
    if mode is not None and mode != "simulate":
        if mode == "predict" and check:
            raise ConfigError(
                "--mode predict cannot be combined with --check: "
                "prediction performs no full simulation for the "
                "sanitizer to shadow; use --mode sampled (bursts run "
                "under the sanitizer) or --mode simulate")
        if want_trace or want_metrics:
            offender = "--trace" if want_trace else "--metrics"
            command = get("command")
            if command in ("trace", "metrics"):
                offender = f"the '{command}' command"
            raise ConfigError(
                f"--mode {mode} cannot be combined with {offender}: "
                "predicted runs have no full simulation timeline to "
                "observe; use --mode simulate")

    # Every selection knob funnels through one RunRequest; the configs
    # below are *derived* from it, so the CLI, Session, RunService and
    # the serve daemon's HTTP body all resolve knobs identically.
    # Subcommands without a workload (experiment, cache, ...) share the
    # derivation through a placeholder request that is not exposed.
    workload = get("workload")
    command = get("command")
    request = RunRequest(
        workload=workload if isinstance(workload, str) and workload else "_",
        threads=workload_kwargs["num_threads"],
        scale=workload_kwargs["scale"],
        fixed=workload_kwargs["fixed"],
        seed=0,
        jitter_seed=get("seed", 0xC0FFEE),
        profile=(bool(get("profile", False))
                 or command in ("profile", "predict")),
        kernel=kernel,
        mode=mode,
        detector=get("detector"),
        adaptive=bool(get("adaptive", False)),
        period=get("period") or None,
        true_sharing=bool(get("true_sharing", False)),
        line_size=line_size,
        cores=cores,
        numa_nodes=get("numa_nodes"),
        remote_fetch_penalty=get("remote_fetch_penalty"),
        remote_transfer_penalty=get("remote_transfer_penalty"),
    )
    machine = request.machine_config()
    pmu = request.pmu_config()
    cheetah = request.cheetah_config()

    obs = None
    if want_trace or want_metrics:
        obs = ObsConfig(
            trace=want_trace,
            metrics=want_metrics,
            trace_accesses=bool(get("accesses", False)),
            max_events=get("max_events") or ObsConfig.max_events,
        )

    return CLIConfigs(
        workload_kwargs=workload_kwargs,
        jitter_seed=get("seed", 0xC0FFEE),
        machine=machine,
        pmu=pmu,
        cheetah=cheetah,
        obs=obs,
        cache_enabled=bool(get("cache", True)),
        cache_dir=get("cache_dir"),
        jobs=get("jobs"),
        check=check,
        request=request if request.workload != "_" else None,
    )
