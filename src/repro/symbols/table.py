"""Symbol table for simulated global variables.

Cheetah reports falsely-shared *globals* by "searching through the symbol
table in the binary executable" for names and addresses (Section 2.4).
Workloads declare their globals here before running; the table assigns
addresses from a dedicated globals segment (distinct from the heap arena)
and supports reverse lookup from any address inside a symbol.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import SymbolError
from repro.heap.arena import GLOBALS_BASE

GLOBALS_SEGMENT_SIZE = 1 << 26  # 64 MiB of simulated globals


@dataclass(frozen=True)
class GlobalSymbol:
    """One global variable: name, base address and size."""

    name: str
    addr: int
    size: int

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end

    def __str__(self) -> str:
        return f"global '{self.name}' at {self.addr:#x} (size {self.size})"


class SymbolTable:
    """Registry of global variables with address assignment."""

    def __init__(self, base: int = GLOBALS_BASE,
                 size: int = GLOBALS_SEGMENT_SIZE, align: int = 8):
        self.base = base
        self.size = size
        self._default_align = align
        self._cursor = base
        self._by_name = {}
        self._starts: List[int] = []
        self._by_start = {}

    @property
    def end(self) -> int:
        return self.base + self.size

    def define(self, name: str, size: int, align: Optional[int] = None) -> int:
        """Define global ``name`` of ``size`` bytes; returns its address.

        Globals are laid out in definition order, so two small globals can
        share a cache line — exactly the layout hazard that causes false
        sharing among globals in real binaries.
        """
        if name in self._by_name:
            raise SymbolError(f"global '{name}' is already defined")
        if size <= 0:
            raise SymbolError(f"global '{name}' must have positive size")
        alignment = align or self._default_align
        addr = (self._cursor + alignment - 1) & ~(alignment - 1)
        if addr + size > self.end:
            raise SymbolError("globals segment exhausted")
        self._cursor = addr + size
        symbol = GlobalSymbol(name=name, addr=addr, size=size)
        self._by_name[name] = symbol
        bisect.insort(self._starts, addr)
        self._by_start[addr] = symbol
        return addr

    def lookup(self, name: str) -> GlobalSymbol:
        """Symbol by name; raises :class:`SymbolError` if undefined."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SymbolError(f"unknown global '{name}'") from None

    def find(self, addr: int) -> Optional[GlobalSymbol]:
        """The symbol whose range contains ``addr``, if any."""
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        symbol = self._by_start[self._starts[idx]]
        if symbol.contains(addr):
            return symbol
        return None

    def contains(self, addr: int) -> bool:
        """True when ``addr`` falls inside the globals segment."""
        return self.base <= addr < self.end

    def symbols(self) -> List[GlobalSymbol]:
        return [self._by_start[s] for s in self._starts]
