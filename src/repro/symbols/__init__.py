"""Global-variable symbol table (ELF symbol-table analogue)."""

from repro.symbols.table import GlobalSymbol, SymbolTable

__all__ = ["GlobalSymbol", "SymbolTable"]
