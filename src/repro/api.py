"""One front door for the whole reproduction: :class:`Session`.

Instead of importing from five subpackages (engine from ``repro.sim``,
PMU from ``repro.pmu``, profiler from ``repro.core``, runner from
``repro.run``, workloads from ``repro.workloads``), a user states *what*
to run and *how* once, and asks for results::

    from repro.api import Session

    session = Session("linear_regression", threads=8)
    outcome = session.profile()          # PMU + Cheetah attached
    print(session.report().render())

    from repro.obs import ObsConfig
    traced = Session("histogram", threads=4, obs=ObsConfig())
    outcome = traced.run()               # outcome.obs has trace + metrics

The session accepts a workload in any of four shapes: a registry name
(``"histogram"``), a :class:`~repro.workloads.base.Workload` subclass, a
ready-made instance, or a bare generator function taking the thread API.
For names and classes, a *fresh* workload instance is built per run —
workload objects carry a mutable ``rng``, so reusing one across runs
would change its access stream. A pre-built instance is used as-is
(run it once, or accept that a second run continues its rng stream).

Results are computed lazily and cached: ``.run()`` and ``.profile()``
each execute at most once per session. The memo is keyed by the
*content* of the session's configuration (the
:meth:`repro.service.RunSpec.key` hash), not by session identity, so two
equal sessions share one result — and when an ambient
:class:`repro.service.RunService` is active, that shared result lives in
its persistent store. Sessions with an observer, a coherence check, an
observability collector, or a non-registry workload always execute.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Union

from repro.core.detection import DetectorConfig
from repro.core.profiler import CheetahConfig, CheetahReport
from repro.errors import ConfigError
from repro.obs import ObsConfig, Observability
from repro.obs import current_default as _obs_default
from repro.pmu.sampler import PMUConfig
from repro.run import RunOutcome, run_workload
from repro.service import RunSpec, current_service, spec_for_workload_cls
from repro.sim.engine import Observer
from repro.sim.params import MachineConfig
from repro.workloads import Workload, get_workload

#: In-process memo shared by every Session without an ambient service,
#: keyed by RunSpec content hash. Bounded: oldest entries fall out first.
_MEMO: Dict[str, RunOutcome] = {}
_MEMO_MAX = 64


def _memo_put(key: str, outcome: RunOutcome) -> None:
    while len(_MEMO) >= _MEMO_MAX:
        _MEMO.pop(next(iter(_MEMO)))
    _MEMO[key] = outcome


def clear_session_memo() -> None:
    """Drop the in-process Session result memo (tests, long processes)."""
    _MEMO.clear()


class _CallableWorkload(Workload):
    """Adapter wrapping a bare generator function as a Workload."""

    suite = "adhoc"

    def __init__(self, fn: Callable[..., Any], num_threads: Optional[int],
                 scale: float, fixed: bool, seed: int):
        super().__init__(num_threads=num_threads, scale=scale, fixed=fixed,
                         seed=seed)
        self.name = getattr(fn, "__name__", "callable")
        self._fn = fn

    def main(self, api) -> Any:
        return self._fn(api)


class Session:
    """A configured (workload, machine, profiling, observability) bundle.

    Args:
        workload: registry name, Workload subclass, Workload instance,
            or a generator function ``fn(api)``.
        threads/scale/fixed/seed: workload construction knobs; only legal
            when the session builds the workload itself (name, class or
            function form) — passing them with a ready-made instance
            raises :class:`~repro.errors.ConfigError`.
        jitter_seed: the machine's timing-jitter seed (run-to-run
            hardware variation).
        machine: :class:`~repro.sim.params.MachineConfig`.
        pmu: :class:`~repro.pmu.sampler.PMUConfig` (profiled runs).
        detector: :class:`~repro.core.detection.DetectorConfig`; folded
            into ``cheetah`` (mutually exclusive with a ``cheetah`` that
            already carries a non-default detector is fine — ``detector``
            wins).
        cheetah: full :class:`~repro.core.profiler.CheetahConfig`.
        detector_mode: ``"offline"`` or ``"windowed"``; folded into
            ``cheetah`` (like ``detector``, the explicit kwarg wins).
        adaptive: ``True`` enables the adaptive PMU policy with default
            knobs (folded into ``pmu``); pass a full ``pmu`` config with
            its own :class:`~repro.pmu.adaptive.AdaptiveConfig` for
            fine-grained control.
        obs: :class:`~repro.obs.ObsConfig` (each run gets its own
            collector) or a single unwired
            :class:`~repro.obs.Observability`.
        observer: full-instrumentation :class:`~repro.sim.engine.Observer`
            (Predator-style baselines, or a bare ``Tracer``).
        check: run under the coherence sanitizer.
    """

    def __init__(self, workload: Union[str, type, Workload, Callable], *,
                 threads: Optional[int] = None,
                 scale: float = 1.0,
                 fixed: bool = False,
                 seed: int = 0,
                 jitter_seed: int = 0xC0FFEE,
                 machine: Optional[MachineConfig] = None,
                 pmu: Optional[PMUConfig] = None,
                 detector: Optional[DetectorConfig] = None,
                 cheetah: Optional[CheetahConfig] = None,
                 detector_mode: Optional[str] = None,
                 adaptive: bool = False,
                 obs: Optional[Union[ObsConfig, Observability]] = None,
                 observer: Optional[Observer] = None,
                 check: bool = False):
        overrides = (threads is not None or scale != 1.0 or fixed
                     or seed != 0)
        # Remembered for content-hash memoization: only sessions that
        # build a registry workload themselves have a well-defined
        # RunSpec (instances carry hidden rng state; ad-hoc callables
        # carry arbitrary code).
        self._workload_cls: Optional[type] = None
        self._build_kwargs: Dict[str, Any] = dict(
            num_threads=threads, scale=scale, fixed=fixed, seed=seed)
        if isinstance(workload, Workload):
            if overrides:
                raise ConfigError(
                    "threads/scale/fixed/seed can only be passed when the "
                    "Session builds the workload; configure the instance "
                    "directly instead")
            instance = workload
            self._make_workload = lambda: instance
        elif isinstance(workload, type) and issubclass(workload, Workload):
            cls = workload
            self._workload_cls = cls
            self._make_workload = lambda: cls(
                num_threads=threads, scale=scale, fixed=fixed, seed=seed)
        elif isinstance(workload, str):
            cls = get_workload(workload)
            self._workload_cls = cls
            self._make_workload = lambda: cls(
                num_threads=threads, scale=scale, fixed=fixed, seed=seed)
        elif callable(workload):
            fn = workload
            self._make_workload = lambda: _CallableWorkload(
                fn, num_threads=threads, scale=scale, fixed=fixed, seed=seed)
        else:
            raise ConfigError(
                f"workload must be a name, Workload class/instance or "
                f"generator function, got {type(workload).__name__}")
        if detector is not None:
            cheetah = (cheetah or CheetahConfig()).replace(detector=detector)
        if detector_mode is not None:
            cheetah = (cheetah or CheetahConfig()).replace(
                detector_mode=detector_mode)
        if adaptive:
            base = pmu or PMUConfig()
            pmu = base.replace(adaptive=base.adaptive.replace(enabled=True))
        self.jitter_seed = jitter_seed
        self.machine = machine
        self.pmu = pmu
        self.cheetah = cheetah
        self.obs = obs
        self.observer = observer
        self.check = check
        self._run_outcome: Optional[RunOutcome] = None
        self._profile_outcome: Optional[RunOutcome] = None

    # -- construction ----------------------------------------------------------

    @classmethod
    def from_request(cls, request: Any, *,
                     obs: Optional[Union[ObsConfig, Observability]] = None,
                     observer: Optional[Observer] = None,
                     check: bool = False) -> "Session":
        """A session configured from a :class:`repro.request.RunRequest`.

        The v2 front door: the request carries every selection knob
        (kernel, mode, detector, sampling) in one object; observation
        concerns (``obs``/``observer``/``check``) stay per-session
        because they are not part of a run's content-addressed identity.
        """
        from repro.request import RunRequest
        if not isinstance(request, RunRequest):
            raise ConfigError(
                f"Session.from_request expects a RunRequest, "
                f"got {type(request).__name__}")
        return request.session(obs=obs, observer=observer, check=check)

    # -- execution -------------------------------------------------------------

    def run(self) -> RunOutcome:
        """Native run (no PMU, no profiler); cached."""
        if self._run_outcome is None:
            self._run_outcome = self._execute(with_cheetah=False)
        return self._run_outcome

    def profile(self) -> RunOutcome:
        """Profiled run (PMU + Cheetah attached); cached."""
        if self._profile_outcome is None:
            self._profile_outcome = self._execute(with_cheetah=True)
        return self._profile_outcome

    def report(self) -> CheetahReport:
        """The Cheetah report of the profiled run."""
        outcome = self.profile()
        assert outcome.report is not None
        return outcome.report

    def _spec(self, with_cheetah: bool) -> Optional[RunSpec]:
        """The content-addressed spec of this run, or None if uncacheable.

        Sessions that watch the simulation happen (observer, obs
        collector, coherence check) and sessions whose workload is not a
        canonical registry class have no spec: they must execute.
        """
        if (self._workload_cls is None or self.observer is not None
                or self.obs is not None or self.check):
            return None
        return spec_for_workload_cls(
            self._workload_cls,
            jitter_seed=self.jitter_seed,
            with_cheetah=with_cheetah,
            machine_config=self.machine,
            pmu_config=self.pmu,
            cheetah_config=self.cheetah,
            **self._build_kwargs)

    def _execute(self, with_cheetah: bool) -> RunOutcome:
        spec = self._spec(with_cheetah)
        if spec is not None and _obs_default() is None:
            service = current_service()
            if service is not None and service.enabled:
                return service.run(spec)
            key = spec.key()
            cached = _MEMO.get(key)
            if cached is not None:
                return cached
            outcome = self._execute_direct(with_cheetah)
            _memo_put(key, outcome)
            return outcome
        return self._execute_direct(with_cheetah)

    def _execute_direct(self, with_cheetah: bool) -> RunOutcome:
        return run_workload(
            self._make_workload(),
            machine_config=self.machine,
            jitter_seed=self.jitter_seed,
            pmu_config=self.pmu,
            with_cheetah=with_cheetah,
            cheetah_config=self.cheetah,
            observer=self.observer,
            check=self.check,
            obs=self.obs,
        )
