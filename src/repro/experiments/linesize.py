"""Cache-line-size sensitivity (Sections 4.2.2 and 6.1).

The streamcluster bug exists *because* the authors' padding assumed
32-byte lines while the machine has 64-byte lines; Predator's
"predictive" mode exists because false sharing "can be affected by ...
the size of the cache line". This experiment runs streamcluster on
machines with 32-, 64- and 128-byte lines and shows:

- no false sharing on 32-byte-line machines (the padding is correct
  there);
- false sharing on 64- and 128-byte lines, growing with line size;
- Predator's virtual-line analysis predicting the 128-byte behaviour
  from a 64-byte-machine trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.baselines.predator import PredatorDetector
from repro.experiments.runner import format_table
from repro.run import run_workload
from repro.sim.params import MachineConfig
from repro.workloads.parsec import StreamCluster

LINE_SIZES = (32, 64, 128)


@dataclass
class LineSizeRow:
    line_size: int
    slot_invalidations: int  # ground truth on the work_mem object
    matched_fix_improvement: float  # padding matched to the line size
    padding64_improvement: float  # the 64-byte padding, regardless


@dataclass
class LineSizeResult:
    rows: List[LineSizeRow] = field(default_factory=list)
    predictive_detects_128: bool = False

    def render(self) -> str:
        table = format_table(
            ["line size", "work_mem invalidations",
             "matched-padding fix", "64B-padding fix"],
            [[f"{r.line_size}B", r.slot_invalidations,
              f"{r.matched_fix_improvement:.3f}x",
              f"{r.padding64_improvement:.3f}x"] for r in self.rows])
        predictive = ("yes" if self.predictive_detects_128 else "no")
        return ("Line-size sensitivity — streamcluster "
                "(padding assumes 32-byte lines)\n" + table +
                "\n(64B padding stops helping on 128B-line machines: "
                "padding must match the real line)\n"
                f"Predator predicts the 128B problem from a 64B-machine "
                f"trace: {predictive}")


def _slot_invalidations(outcome) -> int:
    result = outcome.result
    shift = result.machine.config.line_shift
    total = 0
    for line, count in (result.machine.directory
                        .lines_with_invalidations(1).items()):
        info = result.allocator.find(line << shift)
        if info is not None and "streamcluster" in info.callsite:
            total += count
    return total


def run(num_threads: int = 8, scale: float = 1.0, jitter_seed: int = 11,
        line_sizes: Sequence[int] = LINE_SIZES) -> LineSizeResult:
    """Regenerate the line-size sensitivity study."""
    result = LineSizeResult()
    for line_size in line_sizes:
        config = MachineConfig(cache_line_size=line_size)
        unfixed = run_workload(
            StreamCluster(num_threads=num_threads, scale=scale),
            machine_config=config, jitter_seed=jitter_seed)
        matched = run_workload(
            StreamCluster(num_threads=num_threads, scale=scale,
                          fixed=True,
                          fixed_slot_bytes=max(64, line_size)),
            machine_config=config, jitter_seed=jitter_seed)
        padded64 = run_workload(
            StreamCluster(num_threads=num_threads, scale=scale,
                          fixed=True, fixed_slot_bytes=64),
            machine_config=config, jitter_seed=jitter_seed)
        result.rows.append(LineSizeRow(
            line_size=line_size,
            slot_invalidations=_slot_invalidations(unfixed),
            matched_fix_improvement=unfixed.runtime / matched.runtime,
            padding64_improvement=unfixed.runtime / padded64.runtime))

    # Predictive cross-check: trace on the 64B machine, regroup words
    # into virtual 128B lines.
    predator = PredatorDetector(line_size=64, min_invalidations=40)
    traced = run_workload(
        StreamCluster(num_threads=num_threads, scale=scale),
        machine_config=MachineConfig(cache_line_size=64),
        jitter_seed=jitter_seed, observer=predator)
    findings = predator.findings_for_line_size(
        128, traced.result.allocator, traced.result.symbols)
    result.predictive_detects_128 = any(
        f.is_false_sharing and "streamcluster" in f.label
        for f in findings)
    return result
