"""Table 1: precision of Cheetah's performance-impact assessment.

For linear_regression and streamcluster at 16/8/4/2 threads, the paper
compares Cheetah's predicted improvement ("Predict") against the speedup
actually obtained by the padding fix ("Real"), finding less than 10%
difference on every row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.runner import (
    format_table,
    measure_predicted_improvement,
    measure_real_improvement,
)
from repro.run import DEFAULT_SEEDS
from repro.pmu.sampler import PMUConfig
from repro.workloads import get_workload

APPLICATIONS = ("linear_regression", "streamcluster")
THREAD_COUNTS = (16, 8, 4, 2)

#: The paper's Table 1, for side-by-side rendering.
PAPER_ROWS = {
    ("linear_regression", 16): (6.44, 6.7),
    ("linear_regression", 8): (5.56, 5.4),
    ("linear_regression", 4): (3.86, 4.1),
    ("linear_regression", 2): (2.18, 2.0),
    ("streamcluster", 16): (1.016, 1.015),
    ("streamcluster", 8): (1.017, 1.018),
    ("streamcluster", 4): (1.024, 1.022),
    ("streamcluster", 2): (1.033, 1.035),
}


@dataclass
class Table1Row:
    application: str
    threads: int
    predicted: float
    real: float

    @property
    def diff_percent(self) -> float:
        """Positive when the prediction exceeds the real improvement."""
        return (self.predicted - self.real) / self.real * 100.0


@dataclass
class Table1Result:
    rows: List[Table1Row] = field(default_factory=list)

    @property
    def worst_diff_percent(self) -> float:
        return max(abs(r.diff_percent) for r in self.rows)

    def render(self) -> str:
        body = []
        for r in self.rows:
            paper = PAPER_ROWS.get((r.application, r.threads))
            paper_txt = (f"{paper[0]:.3g}X/{paper[1]:.3g}X" if paper else "-")
            body.append([r.application, r.threads, f"{r.predicted:.3f}X",
                         f"{r.real:.3f}X", f"{r.diff_percent:+.1f}%",
                         paper_txt])
        table = format_table(
            ["application", "threads", "predict", "real", "diff",
             "paper(pred/real)"], body)
        return ("Table 1 — precision of assessment\n"
                "(paper: <10% difference on every row)\n" + table)


def run(scale: float = 1.0,
        seeds: Sequence[int] = DEFAULT_SEEDS,
        applications: Sequence[str] = APPLICATIONS,
        thread_counts: Sequence[int] = THREAD_COUNTS,
        pmu_config: Optional[PMUConfig] = None) -> Table1Result:
    """Regenerate Table 1."""
    result = Table1Result()
    for name in applications:
        cls = get_workload(name)
        for threads in thread_counts:
            real = measure_real_improvement(
                cls, num_threads=threads, scale=scale, seeds=seeds)
            predicted = measure_predicted_improvement(
                cls, num_threads=threads, scale=scale, seeds=seeds,
                pmu_config=pmu_config)
            result.rows.append(Table1Row(
                application=name, threads=threads,
                predicted=predicted, real=real))
    return result
