"""Experiment helpers over the canonical runner, plus a compatibility shim.

``run_workload``, ``RunOutcome`` and ``DEFAULT_SEEDS`` moved to
:mod:`repro.run` (they are core machinery used by every layer, not
experiment plumbing). Importing them from here still works but emits a
:class:`DeprecationWarning` via the module ``__getattr__`` below.

What legitimately lives here: the multi-seed measurement helpers behind
Table 1 and Figure 4, and the fixed-width table formatter every
experiment's ``render()`` shares.
"""

from __future__ import annotations

import dataclasses
import statistics
import warnings
from typing import Any, List, Optional, Sequence

from repro.core.profiler import CheetahConfig
from repro.pmu.sampler import PMUConfig
from repro.run import DEFAULT_SEEDS as _DEFAULT_SEEDS
from repro.service import cached_run as _cached_run
from repro.sim.params import MachineConfig

# Old import path -> object now living in repro.run. Kept out of module
# globals so PEP 562 __getattr__ fires for them.
_MOVED_TO_RUN = ("run_workload", "RunOutcome", "DEFAULT_SEEDS")


def __getattr__(name: str) -> Any:
    if name in _MOVED_TO_RUN:
        warnings.warn(
            f"importing {name} from repro.experiments.runner is "
            f"deprecated; use repro.run.{name} (or the repro top-level "
            "re-export) instead",
            DeprecationWarning, stacklevel=2)
        import repro.run
        return getattr(repro.run, name)
    raise AttributeError(
        f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> List[str]:
    return sorted(list(globals()) + list(_MOVED_TO_RUN))


def measure_real_improvement(workload_cls, *, num_threads: int,
                             scale: float = 1.0,
                             seeds: Sequence[int] = _DEFAULT_SEEDS,
                             machine_config: Optional[MachineConfig] = None,
                             ) -> float:
    """Mean of ``runtime(original) / runtime(fixed)`` over seeds.

    This is the "Real" column of Table 1: the speedup actually obtained
    by applying the padding fix, measured without any profiling.
    """
    ratios = []
    for seed in seeds:
        original = _cached_run(
            workload_cls, num_threads=num_threads, scale=scale,
            jitter_seed=seed, machine_config=machine_config)
        fixed = _cached_run(
            workload_cls, num_threads=num_threads, scale=scale, fixed=True,
            jitter_seed=seed, machine_config=machine_config)
        ratios.append(original.runtime / fixed.runtime)
    return statistics.mean(ratios)


def measure_predicted_improvement(workload_cls, *, num_threads: int,
                                  scale: float = 1.0,
                                  seeds: Sequence[int] = _DEFAULT_SEEDS,
                                  pmu_config: Optional[PMUConfig] = None,
                                  cheetah_config: Optional[CheetahConfig] = None,
                                  machine_config: Optional[MachineConfig] = None,
                                  ) -> float:
    """Mean of Cheetah's predicted improvement over seeds.

    This is the "Predict" column of Table 1: the improvement Cheetah
    forecasts from a profiled run of the *unfixed* program, using the top
    reported false sharing instance.
    """
    predictions = []
    base = pmu_config or PMUConfig()
    for index, seed in enumerate(seeds):
        # Vary only the sampling seed per run; replace() keeps every
        # other field (including any added later) from the base config.
        pmu = dataclasses.replace(base, seed=base.seed + index + 1)
        outcome = _cached_run(
            workload_cls, num_threads=num_threads, scale=scale,
            jitter_seed=seed, pmu_config=pmu, with_cheetah=True,
            cheetah_config=cheetah_config, machine_config=machine_config)
        assert outcome.report is not None
        best = outcome.report.best()
        if best is None:
            # Table 1 evaluates the known instance even when a borderline
            # prediction falls below the significance cutoff; excluding
            # those runs would bias the mean upward.
            instances = outcome.report.false_sharing_instances()
            best = instances[0] if instances else None
        if best is not None:
            predictions.append(best.improvement)
    if not predictions:
        return float("nan")
    return statistics.mean(predictions)


def measure_overhead(workload_cls, *, num_threads: Optional[int] = None,
                     scale: float = 1.0,
                     seeds: Sequence[int] = _DEFAULT_SEEDS,
                     pmu_config: Optional[PMUConfig] = None,
                     machine_config: Optional[MachineConfig] = None,
                     ) -> float:
    """Mean normalized runtime (profiled / native) over seeds.

    This is one bar of Figure 4: 1.0 means no overhead.
    """
    ratios = []
    for seed in seeds:
        native = _cached_run(workload_cls, num_threads=num_threads,
                             scale=scale, jitter_seed=seed,
                             machine_config=machine_config)
        profiled = _cached_run(workload_cls, num_threads=num_threads,
                               scale=scale, jitter_seed=seed,
                               pmu_config=pmu_config, with_cheetah=True,
                               machine_config=machine_config)
        ratios.append(profiled.runtime / native.runtime)
    return statistics.mean(ratios)


def format_table(headers: List[str], rows: List[Sequence[object]]) -> str:
    """Fixed-width text table used by every experiment's render()."""
    columns = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in columns)
              for i in range(len(headers))]
    def fmt(row):
        return "  ".join(str(cell).ljust(width)
                         for cell, width in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in columns[1:])
    return "\n".join(lines)
