"""Shared machinery for running (workload, configuration) pairs.

The paper runs each application five times and reports averages
(Section 4.1); experiments here do the same over deterministic seeds —
both the machine's timing-jitter seed (run-to-run hardware variation) and
the PMU's sampling-jitter seed.
"""

from __future__ import annotations

import dataclasses
import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.profiler import CheetahConfig, CheetahProfiler, CheetahReport
from repro.heap.allocator import CheetahAllocator
from repro.pmu.sampler import PMU, PMUConfig
from repro.sim.engine import Engine, Observer, RunResult
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable
from repro.workloads.base import Workload

DEFAULT_SEEDS: Tuple[int, ...] = (11, 22, 33)


@dataclass
class RunOutcome:
    """Result of one workload run, optionally with a Cheetah report."""

    result: RunResult
    report: Optional[CheetahReport] = None

    @property
    def runtime(self) -> int:
        return self.result.runtime


def run_workload(workload: Workload, *,
                 machine_config: Optional[MachineConfig] = None,
                 jitter_seed: int = 0xC0FFEE,
                 pmu_config: Optional[PMUConfig] = None,
                 with_cheetah: bool = False,
                 cheetah_config: Optional[CheetahConfig] = None,
                 observer: Optional[Observer] = None,
                 check: bool = False) -> RunOutcome:
    """Run ``workload`` once on a fresh machine.

    ``with_cheetah`` attaches the PMU and the Cheetah profiler;
    ``observer`` attaches a full-instrumentation tool (Predator baseline);
    ``check`` runs in sanitizer mode (every access shadowed against the
    reference MESI oracle — slow, raises
    :class:`~repro.errors.ValidationError` on divergence).
    """
    config = machine_config or MachineConfig()
    symbols = SymbolTable()
    workload.setup(symbols)
    machine = Machine(config, jitter_seed=jitter_seed, check=check)
    pmu = None
    profiler = None
    if with_cheetah:
        pmu = PMU(pmu_config or PMUConfig())
    engine = Engine(config=config, machine=machine, symbols=symbols,
                    pmu=pmu, observer=observer,
                    allocator=CheetahAllocator(line_size=config.cache_line_size))
    if with_cheetah:
        profiler = CheetahProfiler(cheetah_config)
        profiler.attach(engine)
    result = engine.run(workload.main)
    report = profiler.finalize(result) if profiler else None
    return RunOutcome(result=result, report=report)


def measure_real_improvement(workload_cls, *, num_threads: int,
                             scale: float = 1.0,
                             seeds: Sequence[int] = DEFAULT_SEEDS,
                             machine_config: Optional[MachineConfig] = None,
                             ) -> float:
    """Mean of ``runtime(original) / runtime(fixed)`` over seeds.

    This is the "Real" column of Table 1: the speedup actually obtained
    by applying the padding fix, measured without any profiling.
    """
    ratios = []
    for seed in seeds:
        original = run_workload(
            workload_cls(num_threads=num_threads, scale=scale),
            jitter_seed=seed, machine_config=machine_config)
        fixed = run_workload(
            workload_cls(num_threads=num_threads, scale=scale, fixed=True),
            jitter_seed=seed, machine_config=machine_config)
        ratios.append(original.runtime / fixed.runtime)
    return statistics.mean(ratios)


def measure_predicted_improvement(workload_cls, *, num_threads: int,
                                  scale: float = 1.0,
                                  seeds: Sequence[int] = DEFAULT_SEEDS,
                                  pmu_config: Optional[PMUConfig] = None,
                                  cheetah_config: Optional[CheetahConfig] = None,
                                  machine_config: Optional[MachineConfig] = None,
                                  ) -> float:
    """Mean of Cheetah's predicted improvement over seeds.

    This is the "Predict" column of Table 1: the improvement Cheetah
    forecasts from a profiled run of the *unfixed* program, using the top
    reported false sharing instance.
    """
    predictions = []
    base = pmu_config or PMUConfig()
    for index, seed in enumerate(seeds):
        # Vary only the sampling seed per run; replace() keeps every
        # other field (including any added later) from the base config.
        pmu = dataclasses.replace(base, seed=base.seed + index + 1)
        outcome = run_workload(
            workload_cls(num_threads=num_threads, scale=scale),
            jitter_seed=seed, pmu_config=pmu, with_cheetah=True,
            cheetah_config=cheetah_config, machine_config=machine_config)
        assert outcome.report is not None
        best = outcome.report.best()
        if best is None:
            # Table 1 evaluates the known instance even when a borderline
            # prediction falls below the significance cutoff; excluding
            # those runs would bias the mean upward.
            instances = outcome.report.false_sharing_instances()
            best = instances[0] if instances else None
        if best is not None:
            predictions.append(best.improvement)
    if not predictions:
        return float("nan")
    return statistics.mean(predictions)


def measure_overhead(workload_cls, *, num_threads: Optional[int] = None,
                     scale: float = 1.0,
                     seeds: Sequence[int] = DEFAULT_SEEDS,
                     pmu_config: Optional[PMUConfig] = None,
                     machine_config: Optional[MachineConfig] = None,
                     ) -> float:
    """Mean normalized runtime (profiled / native) over seeds.

    This is one bar of Figure 4: 1.0 means no overhead.
    """
    ratios = []
    for seed in seeds:
        kwargs = {"scale": scale}
        if num_threads is not None:
            kwargs["num_threads"] = num_threads
        native = run_workload(workload_cls(**kwargs), jitter_seed=seed,
                              machine_config=machine_config)
        profiled = run_workload(workload_cls(**kwargs), jitter_seed=seed,
                                pmu_config=pmu_config, with_cheetah=True,
                                machine_config=machine_config)
        ratios.append(profiled.runtime / native.runtime)
    return statistics.mean(ratios)


def format_table(headers: List[str], rows: List[Sequence[object]]) -> str:
    """Fixed-width text table used by every experiment's render()."""
    columns = [headers] + [[str(cell) for cell in row] for row in rows]
    widths = [max(len(row[i]) for row in columns)
              for i in range(len(headers))]
    def fmt(row):
        return "  ".join(str(cell).ljust(width)
                         for cell, width in zip(row, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in columns[1:])
    return "\n".join(lines)
