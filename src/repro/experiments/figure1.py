"""Figure 1(b): the motivating microbenchmark.

``array[index]++`` over adjacent elements, 1/2/4/8 threads. The grey bars
of the paper's figure are the linear-speedup *expectation*
(``T(1) / n``); the black bars are *reality*. On the paper's 8-core
machine reality is ~13x the expectation at 8 threads.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.experiments.runner import format_table
from repro.run import DEFAULT_SEEDS, run_workload
from repro.workloads.micro import ArrayIncrement

THREAD_COUNTS = (1, 2, 4, 8)


@dataclass
class Figure1Row:
    threads: int
    expectation: float  # cycles, T(1)/n
    reality: float  # cycles, measured
    slowdown: float  # reality / expectation


@dataclass
class Figure1Result:
    rows: List[Figure1Row] = field(default_factory=list)

    @property
    def worst_slowdown(self) -> float:
        return max(row.slowdown for row in self.rows)

    def render(self) -> str:
        from repro.experiments.charts import paired_bar_chart
        table = format_table(
            ["threads", "expectation(cycles)", "reality(cycles)",
             "reality/expectation"],
            [[r.threads, f"{r.expectation:.0f}", f"{r.reality:.0f}",
              f"{r.slowdown:.1f}x"] for r in self.rows])
        chart = paired_bar_chart(
            [(str(r.threads), r.expectation, r.reality)
             for r in self.rows],
            series=("expectation", "reality"))
        return ("Figure 1(b) — false sharing microbenchmark\n"
                "(paper: ~13x slower than linear-speedup expectation "
                "at 8 threads)\n" + table + "\n\n" + chart)


def run(scale: float = 1.0,
        seeds: Sequence[int] = DEFAULT_SEEDS,
        thread_counts: Sequence[int] = THREAD_COUNTS) -> Figure1Result:
    """Regenerate Figure 1(b)."""
    result = Figure1Result()
    base_runtime = None
    for threads in thread_counts:
        runtimes = [
            run_workload(ArrayIncrement(num_threads=threads, scale=scale),
                         jitter_seed=seed).runtime
            for seed in seeds
        ]
        reality = statistics.mean(runtimes)
        if base_runtime is None:
            base_runtime = reality
        expectation = base_runtime / threads
        result.rows.append(Figure1Row(
            threads=threads, expectation=expectation, reality=reality,
            slowdown=reality / expectation))
    return result
