"""Figure 7: false sharing missed by Cheetah is negligible.

histogram, reverse_index and word_count have real false sharing that
Predator reports but Cheetah's sampling misses. The paper shows fixing
them changes runtime by less than 0.2% — i.e. Cheetah's misses do not
matter. This experiment measures with-FS vs no-FS runtimes and verifies
that Cheetah indeed reports nothing significant on them.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.experiments.runner import format_table
from repro.run import DEFAULT_SEEDS, run_workload
from repro.workloads import get_workload

TRIO = ("histogram", "reverse_index", "word_count")


@dataclass
class Figure7Row:
    name: str
    with_fs: float  # mean runtime with the false sharing present
    no_fs: float  # mean runtime with the padding fix applied
    cheetah_reported: bool  # did Cheetah report anything significant?

    @property
    def normalized(self) -> float:
        """Runtime with FS normalized to without (paper plots ~1.000)."""
        return self.with_fs / self.no_fs

    @property
    def impact_percent(self) -> float:
        return (self.normalized - 1.0) * 100.0


@dataclass
class Figure7Result:
    rows: List[Figure7Row] = field(default_factory=list)

    @property
    def worst_impact_percent(self) -> float:
        return max(abs(r.impact_percent) for r in self.rows)

    def render(self) -> str:
        table = format_table(
            ["application", "with-FS/no-FS", "impact", "Cheetah reported"],
            [[r.name, f"{r.normalized:.4f}", f"{r.impact_percent:+.2f}%",
              "yes" if r.cheetah_reported else "no"] for r in self.rows])
        return ("Figure 7 — impact of false sharing Cheetah misses\n"
                "(paper: <0.2% performance impact; Cheetah reports "
                "nothing)\n" + table)


def run(scale: float = 1.0, num_threads: int = 16,
        seeds: Sequence[int] = DEFAULT_SEEDS) -> Figure7Result:
    """Regenerate Figure 7."""
    result = Figure7Result()
    for name in TRIO:
        cls = get_workload(name)
        with_fs, no_fs = [], []
        for seed in seeds:
            with_fs.append(run_workload(
                cls(num_threads=num_threads, scale=scale),
                jitter_seed=seed).runtime)
            no_fs.append(run_workload(
                cls(num_threads=num_threads, scale=scale, fixed=True),
                jitter_seed=seed).runtime)
        profiled = run_workload(cls(num_threads=num_threads, scale=scale),
                                jitter_seed=seeds[0], with_cheetah=True)
        assert profiled.report is not None
        result.rows.append(Figure7Row(
            name=name,
            with_fs=statistics.mean(with_fs),
            no_fs=statistics.mean(no_fs),
            cheetah_reported=bool(profiled.report.significant),
        ))
    return result
