"""Quantifying the cost of Cheetah's two assumptions (paper Section 2).

Cheetah computes invalidations assuming (1) each thread runs on its own
core with a private cache, and (2) caches are infinite. The paper argues
both may cause *over*-reporting — counting invalidations that the real
machine never performs — and that this is acceptable because it offsets
sampling losses. This experiment makes the argument quantitative:

- **Oversubscription** (Assumption 1): run the same contended workload
  with progressively fewer cores. Threads that share a core also share
  its cache, so ground-truth invalidations fall, while Cheetah's
  thread-id-based rule keeps counting — the over-reporting ratio grows
  as cores shrink.
- **Finite caches** (Assumption 2): with small private caches, lines are
  evicted between conflicting accesses, so some ground-truth
  invalidations disappear (the copy was already gone); Cheetah's
  infinite-cache rule again keeps counting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.profiler import CheetahProfiler
from repro.experiments.runner import format_table
from repro.heap.allocator import CheetahAllocator
from repro.pmu.sampler import PMU, PMUConfig
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable
from repro.workloads.synthetic import SyntheticSharing


@dataclass
class AssumptionRow:
    label: str
    ground_truth_invalidations: int
    cheetah_sampled_invalidations: int

    def overreport_ratio(self, baseline: "AssumptionRow") -> float:
        """How much Cheetah's (relative) count exceeds ground truth's
        relative count, both normalized to the unconstrained baseline."""
        if (baseline.ground_truth_invalidations == 0
                or baseline.cheetah_sampled_invalidations == 0
                or self.ground_truth_invalidations == 0):
            return float("inf")
        truth_rel = (self.ground_truth_invalidations
                     / baseline.ground_truth_invalidations)
        cheetah_rel = (self.cheetah_sampled_invalidations
                       / baseline.cheetah_sampled_invalidations)
        return cheetah_rel / truth_rel


@dataclass
class AssumptionsResult:
    kind: str
    rows: List[AssumptionRow] = field(default_factory=list)

    def render(self) -> str:
        baseline = self.rows[0]
        body = []
        for row in self.rows:
            ratio = row.overreport_ratio(baseline)
            if row is baseline:
                shown = "-"
            elif ratio == float("inf"):
                shown = "inf (no real invalidations remain)"
            else:
                shown = f"{ratio:.2f}x"
            body.append([row.label, row.ground_truth_invalidations,
                         row.cheetah_sampled_invalidations, shown])
        return (f"Assumption study — {self.kind}\n"
                "(paper Section 2: both assumptions may over-report "
                "invalidations)\n"
                + format_table(["configuration", "ground truth",
                                "Cheetah (sampled)", "over-report"],
                               body))


def _contended_program(num_threads: int, scan_lines: int = 0,
                       iterations: int = 800):
    """Threads RMW adjacent words of one line; optionally each iteration
    also scans a private buffer of ``scan_lines`` cache lines (a working
    set that finite caches cannot hold alongside the contested line)."""

    def worker(api, mine, scan_base, my_scan):
        for _ in range(iterations):
            yield from api.loop(mine, 0, 1, read=True, write=True, work=3)
            if my_scan:
                yield from api.loop(scan_base, 64, my_scan,
                                    read=True, write=False, work=1)

    def main(api):
        region = yield from api.malloc(num_threads * 4,
                                       callsite="assumptions.py:region")
        max_scan = scan_lines + 3 * num_threads
        scans = yield from api.malloc(num_threads * max_scan * 64 + 64,
                                      callsite="assumptions.py:scans")
        tids = []
        for i in range(num_threads):
            # Stagger scan lengths so RMW bursts do not stay aligned
            # across threads (real threads drift; perfectly synchronised
            # bursts would mask the eviction effect).
            my_scan = (scan_lines + 3 * i) if scan_lines else 0
            tid = yield from api.spawn(worker, region + i * 4,
                                       scans + i * max_scan * 64, my_scan)
            tids.append(tid)
        yield from api.join_all(tids)

    return main


def _run_once(num_threads: int, num_cores: int,
              capacity_lines: Optional[int], jitter_seed: int = 11,
              period: int = 16, scan_lines: int = 0) -> AssumptionRow:
    config = MachineConfig(num_cores=num_cores)
    machine = Machine(config, jitter_seed=jitter_seed,
                      capacity_lines=capacity_lines)
    pmu = PMU(PMUConfig(period=period))
    engine = Engine(config=config, machine=machine, symbols=SymbolTable(),
                    pmu=pmu,
                    allocator=CheetahAllocator(line_size=config.cache_line_size))
    profiler = CheetahProfiler()
    profiler.attach(engine)
    engine.run(_contended_program(num_threads, scan_lines=scan_lines))
    detector = profiler.detector
    sampled = sum(d.invalidations for d in detector._detailed.values())
    truth = machine.directory.total_invalidations()
    label_cap = (f", {capacity_lines}-line cache" if capacity_lines
                 else "")
    return AssumptionRow(
        label=f"{num_threads} threads / {num_cores} cores{label_cap}",
        ground_truth_invalidations=truth,
        cheetah_sampled_invalidations=sampled)


def run_oversubscription(num_threads: int = 8,
                         core_counts: Sequence[int] = (8, 4, 2, 1),
                         jitter_seed: int = 11) -> AssumptionsResult:
    """Assumption 1: threads sharing cores -> Cheetah over-reports."""
    result = AssumptionsResult(kind="oversubscription (Assumption 1)")
    for cores in core_counts:
        result.rows.append(_run_once(num_threads, cores, None,
                                     jitter_seed=jitter_seed))
    return result


def run_finite_cache(num_threads: int = 2,
                     capacities: Sequence[Optional[int]] = (None, 64, 4, 2),
                     jitter_seed: int = 11) -> AssumptionsResult:
    """Assumption 2: finite caches evict lines -> some ground-truth
    invalidations vanish while Cheetah keeps counting.

    Two threads by default: with many sharers, *some* fresh copy nearly
    always exists when a write lands, so eviction barely changes the
    invalidation count — the assumption's cost is largest exactly where
    sharing is sparsest.
    """
    result = AssumptionsResult(kind="finite caches (Assumption 2)")
    for capacity in capacities:
        # Each thread's iteration scans a 16-line private buffer, so
        # small caches evict the contested line between its accesses.
        result.rows.append(_run_once(num_threads, num_threads, capacity,
                                     jitter_seed=jitter_seed,
                                     scan_lines=16))
    return result
