"""Overhead vs effectiveness across PMU sampling policies (ROADMAP 4).

Cheetah's headline claim is ~7% overhead *without* losing detections;
the lever behind both numbers is the sampling policy. This experiment
reruns the prediction-validation workload set (4 documented
false-sharing positives, 4 negative controls) under a matrix of
policies — fixed periods at several rates plus the adaptive controller
(tighten on hot lines, back off in quiet phases, optionally rotating
sampled-event emphasis) — and reports, per policy:

- **overhead**: mean profiled-vs-native runtime inflation;
- **recall**: detected positives / ground-truth positives (ground truth
  = the reference fixed-period verdicts, which match the documented
  workload table);
- **false positives**: negative-control workloads flagged significant;
- **samples**: mean delivered memory samples (the cost driver);
- **early findings**: streaming findings emitted before run end
  (every run uses the windowed detector, so mid-run emission rides
  along for free).

The adaptive policy starts coarse (twice the default period) and lets
the controller tighten only when lines actually turn hot — the point of
the experiment is that it reaches the fixed policy's recall at lower
overhead.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.profiler import CheetahConfig
from repro.experiments.runner import format_table
from repro.pmu.adaptive import AdaptiveConfig
from repro.pmu.sampler import PMUConfig
from repro.predict.validate import VALIDATION_SET
from repro.run import run_workload
from repro.sim.params import MachineConfig
from repro.workloads.base import get_workload


def _policies() -> "Dict[str, PMUConfig]":
    adaptive = AdaptiveConfig(enabled=True)
    return {
        "fixed-64": PMUConfig(period=64),
        "fixed-128": PMUConfig(period=128),
        "fixed-256": PMUConfig(period=256),
        "adaptive": PMUConfig(period=256, adaptive=adaptive),
        "adaptive-rotate": PMUConfig(
            period=256,
            adaptive=adaptive.replace(rotation=("all", "write"))),
    }


#: The reference policy whose verdicts define ground truth for recall.
REFERENCE_POLICY = "fixed-128"


@dataclass
class PolicyCell:
    """One (policy, workload) profiled run."""

    policy: str
    workload: str
    threads: int
    scale: float
    overhead: float          # profiled/native runtime - 1
    verdict: bool            # significant false sharing reported
    memory_samples: int
    findings: int            # streaming findings (emitted mid-run)
    first_finding: Optional[int]  # timestamp of the first one
    runtime: int
    period_changes: int

    def to_dict(self) -> Dict[str, object]:
        return dict(self.__dict__)


@dataclass
class AdaptiveResult:
    cells: List[PolicyCell] = field(default_factory=list)
    truth: Dict[str, bool] = field(default_factory=dict)
    seconds: float = 0.0

    @property
    def rows(self) -> List[List[object]]:
        return [list(self.summary(policy)) for policy in self.policies()]

    def policies(self) -> List[str]:
        seen: List[str] = []
        for cell in self.cells:
            if cell.policy not in seen:
                seen.append(cell.policy)
        return seen

    def cells_for(self, policy: str) -> List[PolicyCell]:
        return [c for c in self.cells if c.policy == policy]

    def summary(self, policy: str) -> Tuple[str, float, float, int, float,
                                            int]:
        """(policy, mean overhead, recall, false positives, mean
        samples, early findings)."""
        cells = self.cells_for(policy)
        positives = [c for c in cells if self.truth.get(c.workload)]
        negatives = [c for c in cells if not self.truth.get(c.workload)]
        recall = (sum(1 for c in positives if c.verdict) / len(positives)
                  if positives else 0.0)
        false_pos = sum(1 for c in negatives if c.verdict)
        overhead = (sum(c.overhead for c in cells) / len(cells)
                    if cells else 0.0)
        samples = (sum(c.memory_samples for c in cells) / len(cells)
                   if cells else 0.0)
        early = sum(c.findings for c in cells)
        return (policy, overhead, recall, false_pos, samples, early)

    def render(self) -> str:
        table = format_table(
            ["policy", "overhead", "recall", "false pos",
             "mean samples", "early findings"],
            [[p, f"{o:.2%}", f"{r:.0%}", fp, f"{s:,.0f}", e]
             for p, o, r, fp, s, e in self.rows])
        return ("Adaptive-sampling overhead vs effectiveness "
                f"({len(self.truth)} workloads, "
                f"{sum(self.truth.values())} true positives; "
                "windowed detector)\n" + table)

    def to_dict(self) -> Dict[str, object]:
        return {
            "truth": dict(self.truth),
            "policies": {
                policy: {
                    "overhead": round(self.summary(policy)[1], 5),
                    "recall": self.summary(policy)[2],
                    "false_positives": self.summary(policy)[3],
                    "mean_samples": round(self.summary(policy)[4], 1),
                    "early_findings": self.summary(policy)[5],
                }
                for policy in self.policies()
            },
            "seconds": round(self.seconds, 2),
        }


def run(scale: float = 1.0, jitter_seed: int = 11,
        workloads: Sequence[Tuple[str, int, float]] = VALIDATION_SET,
        policies: Optional[Dict[str, PMUConfig]] = None) -> AdaptiveResult:
    """Run the policy x workload matrix; every cell uses the windowed
    detector so incremental findings are measured alongside verdicts."""
    start = time.perf_counter()
    policies = dict(policies) if policies else _policies()
    if REFERENCE_POLICY in policies:  # ground truth first
        order = [REFERENCE_POLICY] + [p for p in policies
                                      if p != REFERENCE_POLICY]
    else:
        order = list(policies)
    cheetah = CheetahConfig(detector_mode="windowed")
    machine = MachineConfig()
    result = AdaptiveResult()

    for name, threads, wl_scale in workloads:
        cls = get_workload(name)
        eff_scale = wl_scale * scale

        def build():
            return cls(num_threads=threads, scale=eff_scale)

        native = run_workload(build(), machine_config=machine,
                              jitter_seed=jitter_seed)
        for policy in order:
            outcome = run_workload(build(), machine_config=machine,
                                   jitter_seed=jitter_seed,
                                   with_cheetah=True,
                                   pmu_config=policies[policy],
                                   cheetah_config=cheetah)
            detector = outcome.profiler.detector
            findings = getattr(detector, "findings", [])
            verdict = bool(outcome.report.significant)
            cell = PolicyCell(
                policy=policy, workload=name, threads=threads,
                scale=eff_scale,
                overhead=outcome.runtime / native.runtime - 1,
                verdict=verdict,
                memory_samples=outcome.pmu.memory_samples,
                findings=len(findings),
                first_finding=(findings[0].timestamp if findings else None),
                runtime=outcome.runtime,
                period_changes=outcome.pmu.period_changes,
            )
            result.cells.append(cell)
            if policy == order[0] and name not in result.truth:
                result.truth[name] = verdict
    result.seconds = time.perf_counter() - start
    return result
