"""Detection table: observed vs. declared verdict per workload.

The concurrent workload families (producer/consumer rings, work-stealing
deques, lock-free queues, seqlocks, NUMA ping-pong) exist to exercise
sharing patterns the paper's fork/join applications never produce. This
experiment runs each workload under Cheetah (with true-sharing
reporting on, so the three-way verdict is visible) and checks the
classification against the workload's declared
:class:`~repro.workloads.GroundTruth`:

- every workload declaring *significant* false sharing must be reported
  with a significant instance (100% recall);
- no workload declaring true sharing or no sharing may produce a false
  sharing verdict (zero false positives);
- negligible-false-sharing workloads (the Figure 7 trio) pass either
  way — sampling is *expected* to miss them, but finding them is not a
  false positive.

Workloads carrying ``machine_defaults`` (the NUMA family) run on the
machine they were designed around.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.profiler import CheetahConfig
from repro.experiments.runner import format_table
from repro.service import cached_run
from repro.sim.params import MachineConfig
from repro.workloads import Verdict, get_workload, iter_workloads

def default_names() -> List[str]:
    """The concurrent suite plus fork/join anchors (``array_increment``
    for significant false sharing, ``kmeans`` for no sharing) so the
    table always demonstrates every verdict class."""
    names = [cls.name for cls in iter_workloads(suite="concurrent")]
    for name in ("array_increment", "kmeans"):
        if name not in names:
            names.append(name)
    return names


def observed_verdict(report) -> str:
    """Collapse a Cheetah report to the three-way workload verdict."""
    kinds = {instance.kind.value for instance in report.all_instances}
    if "false sharing" in kinds:
        return "false sharing"
    if "true sharing" in kinds:
        return "true sharing"
    return "no sharing"


@dataclass
class DetectionRow:
    workload: str
    family: str
    expected: str          # declared verdict ("false sharing (significant)")
    observed: str          # three-way verdict from the report
    significant: bool      # report carries a significant FS instance
    ok: bool


@dataclass
class DetectionResult:
    rows: List[DetectionRow] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return all(r.ok for r in self.rows)

    def render(self) -> str:
        body = [[r.workload, r.family, r.expected, r.observed,
                 "yes" if r.significant else "no",
                 "ok" if r.ok else "MISMATCH"]
                for r in self.rows]
        table = format_table(
            ["workload", "family", "expected", "observed", "significant",
             "verdict"], body)
        status = ("all verdicts match declared ground truth" if self.all_ok
                  else "MISMATCH: detector disagrees with ground truth")
        return ("Detection table — classification vs. declared ground "
                "truth\n" + table + "\n" + status)


def _judge(cls, observed: str, significant: bool) -> DetectionRow:
    truth = cls.ground_truth
    expected = truth.verdict.value
    if truth.verdict is Verdict.FALSE_SHARING:
        expected += " (significant)" if truth.significant else " (negligible)"
        if truth.significant:
            # Recall: must be reported, and as significant.
            ok = observed == "false sharing" and significant
        else:
            # Figure 7 class: missing it is the expected outcome,
            # finding it is still correct — only a *significant* report
            # would overstate the impact, and even that matches the
            # declared verdict. Never a mismatch.
            ok = True
    else:
        # Precision: true-sharing / no-sharing workloads must never be
        # classified as false sharing.
        ok = observed != "false sharing" and not significant
    return DetectionRow(workload=cls.name, family=cls.family,
                        expected=expected, observed=observed,
                        significant=significant, ok=ok)


def run_one(name: str, scale: float = 1.0,
            jitter_seed: int = 0xC0FFEE) -> DetectionRow:
    """One detection cell: run under Cheetah, judge against ground truth."""
    cls = get_workload(name)
    machine = (MachineConfig(**cls.machine_defaults)
               if cls.machine_defaults else None)
    outcome = cached_run(
        cls, scale=scale, jitter_seed=jitter_seed, with_cheetah=True,
        machine_config=machine,
        cheetah_config=CheetahConfig(report_true_sharing=True))
    report = outcome.report
    return _judge(cls, observed_verdict(report),
                  bool(report.significant))


def run(scale: float = 1.0,
        names: Optional[Sequence[str]] = None,
        jitter_seed: int = 0xC0FFEE) -> DetectionResult:
    """Regenerate the detection table."""
    result = DetectionResult()
    for name in (names if names is not None else default_names()):
        result.rows.append(run_one(name, scale=scale,
                                   jitter_seed=jitter_seed))
    return result
