"""Parallel experiment matrix: fan independent cells across processes.

Every experiment in this package is a loop over independent
(workload, seed, configuration) cells — each cell builds its own
:class:`~repro.sim.machine.Machine` and runs its own simulation, so
cells share no mutable state and can run in separate OS processes.
This module mirrors the serial ``run()`` entry points of ``table1``,
``figure4``, ``comparison`` and ``scaling`` with a ``jobs`` parameter:

- ``jobs`` of ``None``/``0``/``1`` delegates to the serial ``run()``
  (byte-identical default path);
- ``jobs > 1`` fans the cells over the
  :class:`repro.service.Scheduler` and merges results **in submission
  order**, so the returned result object is equal to the serial one
  regardless of completion order.

The scheduler adds resilience the bare executor of PR-2 lacked: a cell
that keeps crashing (or exceeding the scheduler's per-job timeout) is
retried with backoff and finally degrades to a structured
:class:`repro.service.JobFailure` instead of killing the whole matrix —
failed cells are dropped from the result's rows and collected on its
``failures`` attribute. When an ambient :class:`repro.service.RunService`
is active (``repro experiment`` pushes one), worker processes re-open the
same result store, so cells are served from — and populate — the shared
cache.

Determinism: each cell derives all randomness from its arguments (the
machine jitter seed and the PMU seed), never from process-global state,
so a cell computes the same row in any process. The merge discards
nothing and never reorders, which is what the serial/parallel
equivalence test in ``tests/test_parallel_experiments.py`` pins down.

Cell functions are top-level (picklable) and take plain tuples so the
fork *and* spawn start methods both work; workloads travel by name
through :func:`repro.workloads.get_workload`.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence, Tuple

from repro.experiments import comparison, detection, figure4, scaling, table1
from repro.experiments.runner import (
    measure_overhead,
    measure_predicted_improvement,
    measure_real_improvement,
)
from repro.run import DEFAULT_SEEDS
from repro.pmu.sampler import PMUConfig
from repro.service import (
    JobFailure,
    Scheduler,
    ambient_cache_dir,
    current_service,
    open_worker_service,
)
from repro.workloads import FIGURE4_NAMES, get_workload

#: Experiment names (as the CLI spells them) with a parallel runner.
PARALLEL_EXPERIMENTS = ("table1", "figure4", "comparison", "scaling",
                        "detection")


def _map_cells(cell_fn, cells, jobs: int) -> List[Any]:
    """Run ``cell_fn`` over ``cells`` via the scheduler, in cell order.

    With an ambient run service, its scheduler (carrying the configured
    timeout/retry policy and metrics registry) is used and every worker
    process re-opens the shared result store; otherwise a plain
    scheduler with default resilience runs the cells.
    """
    service = current_service()
    initargs = (ambient_cache_dir(),)
    if service is not None:
        scheduler = service.make_scheduler(
            jobs, initializer=open_worker_service, initargs=initargs)
    else:
        scheduler = Scheduler(jobs=jobs, initializer=open_worker_service,
                              initargs=initargs)
    return scheduler.map(cell_fn, cells)


def _split_failures(outcomes: List[Any]) -> Tuple[List[Any], List[JobFailure]]:
    """Partition scheduler output into (rows, failures), preserving order."""
    rows = [o for o in outcomes if not isinstance(o, JobFailure)]
    failures = [o for o in outcomes if isinstance(o, JobFailure)]
    return rows, failures


def _degraded(result, failures: List[JobFailure]):
    """Attach ``failures`` to an experiment result (dataclass-eq neutral)."""
    result.failures = failures
    return result


# -- table1 ------------------------------------------------------------------

def _table1_cell(cell):
    name, threads, scale, seeds, pmu_config = cell
    cls = get_workload(name)
    real = measure_real_improvement(
        cls, num_threads=threads, scale=scale, seeds=seeds)
    predicted = measure_predicted_improvement(
        cls, num_threads=threads, scale=scale, seeds=seeds,
        pmu_config=pmu_config)
    return table1.Table1Row(application=name, threads=threads,
                            predicted=predicted, real=real)


def run_table1(scale: float = 1.0,
               seeds: Sequence[int] = DEFAULT_SEEDS,
               applications: Sequence[str] = table1.APPLICATIONS,
               thread_counts: Sequence[int] = table1.THREAD_COUNTS,
               pmu_config: Optional[PMUConfig] = None,
               jobs: Optional[int] = None) -> "table1.Table1Result":
    """Table 1 with one (application, thread-count) cell per task."""
    if not jobs or jobs <= 1:
        return table1.run(scale=scale, seeds=seeds,
                          applications=applications,
                          thread_counts=thread_counts,
                          pmu_config=pmu_config)
    cells = [(name, threads, scale, tuple(seeds), pmu_config)
             for name in applications for threads in thread_counts]
    rows, failures = _split_failures(_map_cells(_table1_cell, cells, jobs))
    return _degraded(table1.Table1Result(rows=rows), failures)


# -- figure4 -----------------------------------------------------------------

def _figure4_cell(cell):
    name, scale, seeds, pmu_config = cell
    cls = get_workload(name)
    normalized = measure_overhead(cls, scale=scale, seeds=seeds,
                                  pmu_config=pmu_config)
    return figure4.Figure4Row(name=name, normalized_runtime=normalized)


def run_figure4(scale: float = 1.0,
                seeds: Sequence[int] = figure4.OVERHEAD_SEEDS,
                names: Optional[Sequence[str]] = None,
                pmu_config: Optional[PMUConfig] = None,
                jobs: Optional[int] = None) -> "figure4.Figure4Result":
    """Figure 4 with one workload per task."""
    if not jobs or jobs <= 1:
        return figure4.run(scale=scale, seeds=seeds, names=names,
                           pmu_config=pmu_config)
    cells = [(name, scale, tuple(seeds), pmu_config)
             for name in (names or FIGURE4_NAMES)]
    rows, failures = _split_failures(_map_cells(_figure4_cell, cells, jobs))
    return _degraded(figure4.Figure4Result(rows=rows), failures)


# -- comparison --------------------------------------------------------------

def _comparison_cell(cell):
    name, scale, num_threads, jitter_seed, predator_min = cell
    result = comparison.run(scale=scale, num_threads=num_threads,
                            jitter_seed=jitter_seed,
                            predator_min_invalidations=predator_min,
                            applications=(name,))
    return result.rows[0]


def run_comparison(scale: float = 1.0, num_threads: int = 16,
                   jitter_seed: int = 11,
                   predator_min_invalidations: int = 40,
                   applications: Sequence[str] = comparison.APPLICATIONS,
                   jobs: Optional[int] = None
                   ) -> "comparison.ComparisonResult":
    """Section 4.2.3 comparison with one application per task."""
    if not jobs or jobs <= 1:
        return comparison.run(
            scale=scale, num_threads=num_threads, jitter_seed=jitter_seed,
            predator_min_invalidations=predator_min_invalidations,
            applications=applications)
    cells = [(name, scale, num_threads, jitter_seed,
              predator_min_invalidations) for name in applications]
    rows, failures = _split_failures(
        _map_cells(_comparison_cell, cells, jobs))
    return _degraded(comparison.ComparisonResult(rows=rows), failures)


# -- scaling -----------------------------------------------------------------

def _scaling_cell(cell):
    scale, threads, jitter_seed = cell
    result = scaling.run(scale=scale, thread_counts=(threads,),
                         jitter_seed=jitter_seed)
    return result.rows[0]


def run_scaling(scale: float = 0.5,
                thread_counts: Sequence[int] = scaling.THREAD_COUNTS,
                jitter_seed: int = 11,
                jobs: Optional[int] = None) -> "scaling.ScalingResult":
    """Thread-scaling study with one thread count per task."""
    if not jobs or jobs <= 1:
        return scaling.run(scale=scale, thread_counts=thread_counts,
                           jitter_seed=jitter_seed)
    cells = [(scale, threads, jitter_seed) for threads in thread_counts]
    rows, failures = _split_failures(
        _map_cells(_scaling_cell, cells, jobs))
    return _degraded(scaling.ScalingResult(rows=rows), failures)


# -- detection ---------------------------------------------------------------

def _detection_cell(cell):
    name, scale, jitter_seed = cell
    return detection.run_one(name, scale=scale, jitter_seed=jitter_seed)


def run_detection(scale: float = 1.0,
                  names: Optional[Sequence[str]] = None,
                  jitter_seed: int = 0xC0FFEE,
                  jobs: Optional[int] = None
                  ) -> "detection.DetectionResult":
    """Detection table with one workload per task."""
    if not jobs or jobs <= 1:
        return detection.run(scale=scale, names=names,
                             jitter_seed=jitter_seed)
    cells = [(name, scale, jitter_seed)
             for name in (names if names is not None
                          else detection.default_names())]
    rows, failures = _split_failures(
        _map_cells(_detection_cell, cells, jobs))
    return _degraded(detection.DetectionResult(rows=rows), failures)


RUNNERS = {
    "table1": run_table1,
    "figure4": run_figure4,
    "comparison": run_comparison,
    "scaling": run_scaling,
    "detection": run_detection,
}
