"""Run the complete evaluation and render one combined report.

``python -m repro experiment all`` (or :func:`run`) regenerates every
table and figure plus the extension studies, and renders them as a
single document — the programmatic source of EXPERIMENTS.md's numbers.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from repro.experiments import (
    assumptions,
    comparison,
    figure1,
    figure4,
    figure5,
    figure7,
    linesize,
    scaling,
    synchronization,
    table1,
)

SECTIONS: List[Tuple[str, Callable[[float], object]]] = [
    ("Figure 1(b) — motivating microbenchmark",
     lambda scale: figure1.run(scale=scale)),
    ("Figure 4 — runtime overhead",
     lambda scale: figure4.run(scale=scale)),
    ("Figure 5 — linear_regression report",
     lambda scale: figure5.run(scale=scale)),
    ("Figure 7 — negligible misses",
     lambda scale: figure7.run(scale=scale)),
    ("Table 1 — assessment precision",
     lambda scale: table1.run(scale=scale)),
    ("Section 4.2.3 — tool comparison",
     lambda scale: comparison.run(scale=scale)),
    ("Assumption 1 — oversubscription",
     lambda scale: assumptions.run_oversubscription()),
    ("Assumption 2 — finite caches",
     lambda scale: assumptions.run_finite_cache()),
    ("Extension — line-size sensitivity",
     lambda scale: linesize.run(scale=scale)),
    ("Extension — thread scaling",
     lambda scale: scaling.run(scale=min(scale, 0.5))),
    ("Extension — synchronisation limitation",
     lambda scale: synchronization.run()),
]


@dataclass
class FullReport:
    sections: List[Tuple[str, object, float]] = field(default_factory=list)
    total_seconds: float = 0.0

    def render(self) -> str:
        parts = [
            "=" * 70,
            "Cheetah reproduction — full evaluation",
            f"total wall time: {self.total_seconds:.0f}s",
            "=" * 70,
        ]
        for title, result, seconds in self.sections:
            parts.append("")
            parts.append(f"### {title}  [{seconds:.0f}s]")
            parts.append(result.render())
        return "\n".join(parts)


def run(scale: float = 1.0,
        progress: Callable[[str], None] = lambda msg: None) -> FullReport:
    """Run every experiment; ``progress`` is called before each one."""
    report = FullReport()
    start = time.time()
    for title, runner in SECTIONS:
        progress(title)
        began = time.time()
        result = runner(scale)
        report.sections.append((title, result, time.time() - began))
    report.total_seconds = time.time() - start
    return report
