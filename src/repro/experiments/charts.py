"""ASCII bar charts for experiment renders.

The paper's evaluation is mostly bar figures; these helpers render the
same shapes in plain text so ``render()`` output reads like the figure,
not just a table.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

FULL = "#"
HALF = "+"


def bar_chart(rows: Sequence[Tuple[str, float]], width: int = 44,
              fmt: str = "{:.2f}", baseline: Optional[float] = None,
              ) -> str:
    """Horizontal bars scaled to the max value.

    ``baseline`` draws a marker column at that value (e.g. 1.0 for
    normalized-runtime charts).
    """
    if not rows:
        return "(no data)"
    peak = max(value for _, value in rows)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(label) for label, _ in rows)
    lines = []
    marker_pos = None
    if baseline is not None and baseline <= peak:
        marker_pos = int(round(baseline / peak * width))
    for label, value in rows:
        length = int(round(value / peak * width))
        bar = FULL * length
        if marker_pos is not None and marker_pos <= width:
            padded = bar.ljust(max(marker_pos + 1, len(bar)))
            if marker_pos < len(padded):
                bar = (padded[:marker_pos]
                       + ("|" if marker_pos >= length else padded[marker_pos])
                       + padded[marker_pos + 1:]).rstrip()
        lines.append(f"{label:>{label_width}} | {bar} {fmt.format(value)}")
    return "\n".join(lines)


def paired_bar_chart(rows: Sequence[Tuple[str, float, float]],
                     series: Tuple[str, str], width: int = 44,
                     fmt: str = "{:.0f}") -> str:
    """Two bars per row (e.g. expectation vs reality in Figure 1b)."""
    if not rows:
        return "(no data)"
    peak = max(max(a, b) for _, a, b in rows) or 1.0
    label_width = max(len(label) for label, _, _ in rows)
    legend = (f"{'':>{label_width}}   {FULL} = {series[0]}, "
              f"{HALF} = {series[1]}")
    lines = [legend]
    for label, first, second in rows:
        first_len = int(round(first / peak * width))
        second_len = int(round(second / peak * width))
        lines.append(f"{label:>{label_width}} | "
                     f"{FULL * first_len} {fmt.format(first)}")
        lines.append(f"{'':>{label_width}} | "
                     f"{HALF * second_len} {fmt.format(second)}")
    return "\n".join(lines)
