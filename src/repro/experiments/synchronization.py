"""Synchronisation wait time vs assessment accuracy (paper Section 3.2).

    "In current implementation, we do not take into account the waiting
    time of different threads caused by synchronizations; we leave this
    for future work."

This experiment makes the limitation measurable. A false-sharing kernel
runs with a per-step barrier and a configurable *work imbalance*: one
thread gets `imbalance` extra compute per step, so every other thread
waits at the barrier. Barrier waiting inflates every thread's runtime
(RT_t) without adding access cycles, so EQ 3's proportional scaling
attributes the waiting to memory behaviour and the predicted
improvement drifts away from reality as the imbalance grows (to >10x
error at a ~25% wait fraction).

The *extended model* (``AssessmentConfig.model_sync_and_compute``)
implements the future work: it decomposes each thread's runtime into
barrier waiting, memory time (sampled cycles x period — an unbiased
estimator), profiler overhead and compute, predicts post-fix *busy*
time only, and lets the phase maximum rebuild the critical path. In the
sync-dominated regime it cuts the error by an order of magnitude; in
the balanced regime the paper's simpler EQ 3 remains competitive
(runtime decomposition from sparse samples is noisy) — neither model
dominates, which is presumably why the authors deferred this.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.core.assessment import AssessmentConfig
from repro.core.profiler import CheetahConfig, CheetahProfiler
from repro.experiments.runner import format_table
from repro.heap.allocator import CheetahAllocator
from repro.pmu.sampler import PMU, PMUConfig
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable

NUM_THREADS = 8
STEPS = 120
ITERS_PER_STEP = 24


def _program(imbalance: int, fixed: bool):
    stride = 64 if fixed else 4

    def worker(api, mine, extra):
        for step in range(STEPS):
            yield from api.loop(mine, 0, 1, read=True, write=True,
                                work=3, repeat=ITERS_PER_STEP)
            if extra:
                yield from api.work(extra)
            yield from api.barrier("step", NUM_THREADS)

    def main(api):
        region = yield from api.malloc(NUM_THREADS * stride,
                                       callsite="sync.py:region")
        yield from api.loop(region, 4, NUM_THREADS, read=False,
                            write=True, work=1)
        yield from api.loop(region, 4, NUM_THREADS, write=False, work=1,
                            repeat=40)
        tids = []
        for i in range(NUM_THREADS):
            extra = imbalance if i == 0 else 0
            tids.append((yield from api.spawn(
                worker, region + i * stride, extra)))
        yield from api.join_all(tids)

    return main


@dataclass
class SyncRow:
    imbalance: int
    real_improvement: float
    predicted_improvement: float  # the paper's EQ 3
    extended_prediction: float  # with the future-work model enabled
    wait_fraction: float  # barrier waits / total thread time

    @property
    def error_percent(self) -> float:
        return ((self.predicted_improvement - self.real_improvement)
                / self.real_improvement * 100.0)

    @property
    def extended_error_percent(self) -> float:
        return ((self.extended_prediction - self.real_improvement)
                / self.real_improvement * 100.0)


@dataclass
class SyncResult:
    rows: List[SyncRow] = field(default_factory=list)

    def render(self) -> str:
        table = format_table(
            ["imbalance", "wait fraction", "real", "paper EQ3", "error",
             "extended model", "error"],
            [[r.imbalance, f"{r.wait_fraction:.0%}",
              f"{r.real_improvement:.2f}x",
              f"{r.predicted_improvement:.2f}x",
              f"{r.error_percent:+.0f}%",
              f"{r.extended_prediction:.2f}x",
              f"{r.extended_error_percent:+.0f}%"] for r in self.rows])
        return ("Synchronisation waiting vs assessment accuracy\n"
                "(paper Section 3.2: waiting time is not modelled — "
                "'future work';\nthe extended model implements that "
                "future work: sync waits + compute time)\n" + table)


def _run(imbalance: int, fixed: bool, jitter_seed: int = 11,
         with_cheetah: bool = False, extended: bool = False):
    config = MachineConfig()
    machine = Machine(config, jitter_seed=jitter_seed)
    pmu = PMU(PMUConfig(period=32)) if with_cheetah else None
    engine = Engine(config=config, machine=machine, symbols=SymbolTable(),
                    pmu=pmu,
                    allocator=CheetahAllocator(line_size=config.cache_line_size))
    profiler = None
    if with_cheetah:
        cheetah_config = CheetahConfig(assessment=AssessmentConfig(
            model_sync_and_compute=extended))
        profiler = CheetahProfiler(cheetah_config)
        profiler.attach(engine)
    result = engine.run(_program(imbalance, fixed))
    report = profiler.finalize(result) if profiler else None
    return result, report


def _best_prediction(report) -> float:
    instances = report.significant or report.false_sharing_instances()
    return instances[0].improvement if instances else float("nan")


def run(imbalances: Sequence[int] = (0, 500, 2000, 8000),
        jitter_seed: int = 11) -> SyncResult:
    """Regenerate the synchronisation-limitation study."""
    out = SyncResult()
    for imbalance in imbalances:
        unfixed, _ = _run(imbalance, fixed=False, jitter_seed=jitter_seed)
        fixed, _ = _run(imbalance, fixed=True, jitter_seed=jitter_seed)
        real = unfixed.runtime / fixed.runtime
        profiled, report = _run(imbalance, fixed=False,
                                jitter_seed=jitter_seed,
                                with_cheetah=True)
        predicted = _best_prediction(report)
        _, extended_report = _run(imbalance, fixed=False,
                                  jitter_seed=jitter_seed,
                                  with_cheetah=True, extended=True)
        extended = _best_prediction(extended_report)
        children = [t for tid, t in profiled.threads.items() if tid]
        waits = sum(t.barrier_waits for t in children)
        total = sum(t.runtime for t in children)
        out.rows.append(SyncRow(
            imbalance=imbalance,
            real_improvement=real,
            predicted_improvement=predicted,
            extended_prediction=extended,
            wait_fraction=waits / total if total else 0.0))
    return out
