"""Figure 4: runtime overhead of Cheetah on 17 Phoenix+PARSEC apps.

Each bar is the profiled runtime normalized to the native ("pthreads")
runtime. The paper reports ~7% overhead on average, under 12% for every
application except the two thread-heavy outliers — kmeans (224 threads)
and x264 (1024 threads), where per-thread PMU setup pushes overhead past
20% (Section 4.1).
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments.runner import format_table, measure_overhead
from repro.pmu.sampler import PMUConfig
from repro.workloads import FIGURE4_NAMES, get_workload

# Overhead runs use two seeds by default: each data point is already two
# full simulations, and the paper's bar chart averages five *hardware*
# runs, which our deterministic simulator does not need as badly.
OVERHEAD_SEEDS = (11, 22)


@dataclass
class Figure4Row:
    name: str
    normalized_runtime: float  # profiled / native; 1.0 = no overhead

    @property
    def overhead_percent(self) -> float:
        return (self.normalized_runtime - 1.0) * 100.0


@dataclass
class Figure4Result:
    rows: List[Figure4Row] = field(default_factory=list)

    @property
    def average(self) -> float:
        return statistics.mean(r.normalized_runtime for r in self.rows)

    @property
    def average_excluding_thread_heavy(self) -> float:
        rest = [r.normalized_runtime for r in self.rows
                if r.name not in ("kmeans", "x264")]
        return statistics.mean(rest)

    def row(self, name: str) -> Figure4Row:
        for row in self.rows:
            if row.name == name:
                return row
        raise KeyError(name)

    def render(self) -> str:
        from repro.experiments.charts import bar_chart
        table = format_table(
            ["application", "normalized runtime", "overhead"],
            [[r.name, f"{r.normalized_runtime:.3f}",
              f"{r.overhead_percent:+.1f}%"] for r in self.rows]
            + [["AVERAGE", f"{self.average:.3f}",
                f"{(self.average - 1) * 100:+.1f}%"]])
        chart = bar_chart(
            [(r.name, r.normalized_runtime) for r in self.rows],
            baseline=1.0, fmt="{:.3f}")
        return ("Figure 4 — Cheetah runtime overhead (normalized to "
                "native execution)\n(paper: ~7% average; kmeans/x264 "
                ">20% due to per-thread PMU setup)\n" + table
                + "\n\n" + chart)


def run(scale: float = 1.0,
        seeds: Sequence[int] = OVERHEAD_SEEDS,
        names: Optional[Sequence[str]] = None,
        pmu_config: Optional[PMUConfig] = None) -> Figure4Result:
    """Regenerate Figure 4."""
    result = Figure4Result()
    for name in (names or FIGURE4_NAMES):
        cls = get_workload(name)
        normalized = measure_overhead(cls, scale=scale, seeds=seeds,
                                      pmu_config=pmu_config)
        result.rows.append(Figure4Row(name=name,
                                      normalized_runtime=normalized))
    return result
