"""Thread-scaling of false sharing damage (the paper's intro claim).

    "The hardware trend, such as adding more cores on chip and enlarging
    the cache line size, will further degrade the performance of
    multithreaded programs due to false sharing."

This experiment sweeps thread counts for linear_regression and reports
the slowdown caused by its false sharing (runtime with the bug over
runtime with the fix) — the damage grows with parallelism and then
saturates once every cache line of the object is contended.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.experiments.runner import format_table
from repro.service import cached_run
from repro.workloads.phoenix import LinearRegression

THREAD_COUNTS = (2, 4, 8, 16, 24, 32)


@dataclass
class ScalingRow:
    threads: int
    unfixed_runtime: int
    fixed_runtime: int

    @property
    def damage(self) -> float:
        """Slowdown attributable to the false sharing bug."""
        return self.unfixed_runtime / self.fixed_runtime


@dataclass
class ScalingResult:
    rows: List[ScalingRow] = field(default_factory=list)

    def render(self) -> str:
        from repro.experiments.charts import bar_chart
        table = format_table(
            ["threads", "with bug", "fixed", "FS damage"],
            [[r.threads, r.unfixed_runtime, r.fixed_runtime,
              f"{r.damage:.2f}x"] for r in self.rows])
        chart = bar_chart([(str(r.threads), r.damage) for r in self.rows],
                          fmt="{:.2f}x")
        return ("Thread-scaling of false sharing damage "
                "(linear_regression)\n"
                "(paper intro: more cores worsen false sharing)\n"
                + table + "\n\n" + chart)


def run(scale: float = 0.5,
        thread_counts: Sequence[int] = THREAD_COUNTS,
        jitter_seed: int = 11) -> ScalingResult:
    """Regenerate the thread-scaling study."""
    result = ScalingResult()
    for threads in thread_counts:
        unfixed = cached_run(
            LinearRegression, num_threads=threads, scale=scale,
            jitter_seed=jitter_seed)
        fixed = cached_run(
            LinearRegression, num_threads=threads, scale=scale,
            fixed=True, jitter_seed=jitter_seed)
        result.rows.append(ScalingRow(
            threads=threads,
            unfixed_runtime=unfixed.runtime,
            fixed_runtime=fixed.runtime))
    return result
