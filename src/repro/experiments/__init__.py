"""Regeneration of every table and figure in the paper's evaluation.

- :mod:`repro.experiments.figure1` — the motivating microbenchmark
  (expectation vs reality, Figure 1b);
- :mod:`repro.experiments.figure4` — Cheetah's runtime overhead over the
  17 Phoenix+PARSEC applications (Figure 4);
- :mod:`repro.experiments.figure5` — the linear_regression report
  (Figure 5);
- :mod:`repro.experiments.figure7` — the negligible-impact trio
  (Figure 7);
- :mod:`repro.experiments.table1` — assessment precision (Table 1);
- :mod:`repro.experiments.comparison` — the Section 4.2.3 comparison
  with the Predator baseline;
- :mod:`repro.experiments.detection` — classification vs. declared
  ground truth over the concurrent workload families.

Each module exposes ``run(...)`` returning a result object with ``rows``
and ``render()``.
"""

from repro.experiments import (  # noqa: F401
    adaptive,
    assumptions,
    comparison,
    detection,
    figure1,
    figure4,
    figure5,
    figure7,
    linesize,
    scaling,
    synchronization,
    table1,
)
from repro.experiments.runner import (
    measure_overhead,
    measure_predicted_improvement,
    measure_real_improvement,
)
from repro.run import run_workload

__all__ = [
    "assumptions",
    "comparison",
    "detection",
    "figure1",
    "figure4",
    "figure5",
    "figure7",
    "linesize",
    "scaling",
    "synchronization",
    "measure_overhead",
    "measure_predicted_improvement",
    "measure_real_improvement",
    "run_workload",
    "table1",
]
