"""Section 4.2.3: comparison with the state of the art.

Predator instruments every access: it detects the most instances —
including the Figure 7 trio Cheetah's sampling misses — at ~6x runtime
overhead. Sheriff (the OS-based approach of Section 6.1) captures
writes at page granularity for ~20% overhead but cannot see read-write
false sharing. Cheetah detects the instances that matter at ~7%
overhead. This experiment runs all three on a representative set and
tabulates (detected?, overhead) per tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence

from repro.baselines.predator import PredatorDetector
from repro.baselines.sheriff import SheriffDetector
from repro.experiments.runner import format_table
from repro.run import run_workload
from repro.service import cached_run
from repro.workloads import get_workload

APPLICATIONS = ("linear_regression", "streamcluster", "histogram",
                "reverse_index", "word_count")

#: Ground truth from the paper: which applications have false sharing
#: that each tool reports.
PAPER_CHEETAH_DETECTS = {"linear_regression", "streamcluster"}
PAPER_PREDATOR_DETECTS = {"linear_regression", "streamcluster",
                          "histogram", "reverse_index", "word_count"}


@dataclass
class ComparisonRow:
    name: str
    cheetah_detected: bool
    cheetah_overhead: float
    predator_detected: bool
    predator_overhead: float
    sheriff_detected: bool = False
    sheriff_overhead: float = 1.0


@dataclass
class ComparisonResult:
    rows: List[ComparisonRow] = field(default_factory=list)

    def render(self) -> str:
        table = format_table(
            ["application", "Cheetah", "ovh", "Predator", "ovh",
             "Sheriff", "ovh"],
            [[r.name,
              "yes" if r.cheetah_detected else "no",
              f"{r.cheetah_overhead:.2f}x",
              "yes" if r.predator_detected else "no",
              f"{r.predator_overhead:.2f}x",
              "yes" if r.sheriff_detected else "no",
              f"{r.sheriff_overhead:.2f}x"] for r in self.rows])
        return ("Section 4.2.3 — Cheetah vs Predator vs Sheriff\n"
                "(paper: Predator finds the most at ~6x; Sheriff is "
                "write-write-only at ~1.2x;\nCheetah finds the "
                "significant ones at ~1.07x)\n" + table)


def run(scale: float = 1.0, num_threads: int = 16,
        jitter_seed: int = 11,
        predator_min_invalidations: int = 40,
        applications: Sequence[str] = APPLICATIONS) -> ComparisonResult:
    """Regenerate the Section 4.2.3 comparison."""
    result = ComparisonResult()
    for name in applications:
        cls = get_workload(name)
        # Native and profiled runs are pure functions of their spec and go
        # through the cache; the Predator/Sheriff runs attach an observer
        # (whose findings are read back out), so they always execute.
        native = cached_run(cls, num_threads=num_threads, scale=scale,
                            jitter_seed=jitter_seed)
        cheetah = cached_run(cls, num_threads=num_threads, scale=scale,
                             jitter_seed=jitter_seed, with_cheetah=True)
        assert cheetah.report is not None
        predator = PredatorDetector(
            min_invalidations=predator_min_invalidations)
        predator_run = run_workload(
            cls(num_threads=num_threads, scale=scale),
            jitter_seed=jitter_seed, observer=predator)
        findings = predator.false_sharing_findings(
            predator_run.result.allocator, predator_run.result.symbols)
        sheriff = SheriffDetector(min_writes=predator_min_invalidations)
        sheriff_run = run_workload(
            cls(num_threads=num_threads, scale=scale),
            jitter_seed=jitter_seed, observer=sheriff)
        sheriff_findings = sheriff.false_sharing_findings(
            sheriff_run.result.allocator, sheriff_run.result.symbols)
        result.rows.append(ComparisonRow(
            name=name,
            cheetah_detected=bool(cheetah.report.significant),
            cheetah_overhead=cheetah.runtime / native.runtime,
            predator_detected=bool(findings),
            predator_overhead=predator_run.runtime / native.runtime,
            sheriff_detected=bool(sheriff_findings),
            sheriff_overhead=sheriff_run.runtime / native.runtime,
        ))
    return result
