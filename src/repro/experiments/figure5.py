"""Figure 5: Cheetah's report for linear_regression.

The paper's report (16 threads) identifies the ``tid_args`` object
allocated at linear_regression-pthread.c:139, prints its address range,
access/invalidation/latency counts and a predicted improvement of
~5.76x. This experiment regenerates the same report from a profiled run
and extracts the headline quantities for comparison.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

from repro.core.report import ObjectReport
from repro.run import run_workload
from repro.pmu.sampler import PMUConfig
from repro.workloads.phoenix import LINEAR_REGRESSION_CALLSITE, LinearRegression


@dataclass
class Figure5Result:
    report_text: str
    instance: Optional[ObjectReport]
    runtime: int

    @property
    def detected(self) -> bool:
        return self.instance is not None

    @property
    def predicted_improvement(self) -> float:
        return self.instance.improvement if self.instance else float("nan")

    @property
    def callsite(self) -> str:
        return self.instance.profile.label if self.instance else ""

    def render(self) -> str:
        header = ("Figure 5 — Cheetah report for linear_regression "
                  "(paper: 5.76x predicted improvement,\ncallsite "
                  f"{LINEAR_REGRESSION_CALLSITE})\n")
        return header + self.report_text


def run(num_threads: int = 16, scale: float = 1.0,
        jitter_seed: int = 11,
        pmu_config: Optional[PMUConfig] = None) -> Figure5Result:
    """Regenerate the Figure 5 report."""
    outcome = run_workload(
        LinearRegression(num_threads=num_threads, scale=scale),
        jitter_seed=jitter_seed, with_cheetah=True, pmu_config=pmu_config)
    report = outcome.report
    assert report is not None
    instance = None
    for candidate in report.significant:
        if candidate.profile.label == LINEAR_REGRESSION_CALLSITE:
            instance = candidate
            break
    return Figure5Result(report_text=report.render(), instance=instance,
                         runtime=outcome.runtime)
