"""Synthetic Phoenix / PARSEC workloads (paper Section 4, Figure 4).

The paper evaluates on two suites; each synthetic workload here
reproduces the documented *memory sharing pattern* of its namesake —
which is all the evaluation depends on — including the three documented
false sharing bugs:

- ``linear_regression`` (Phoenix): severe intra-object false sharing on
  the per-thread argument structs (Figure 5/6, 5.7x after fixing);
- ``streamcluster`` (PARSEC): padding computed with an assumed 32-byte
  cache line, half the machine's 64 bytes (Section 4.2.2, ~1.02x);
- ``histogram``/``reverse_index``/``word_count`` (Phoenix): real but
  negligible false sharing (<0.2% on the paper's runs) that Predator
  reports and Cheetah deliberately misses (Figure 7).

Every workload supports ``fixed=True`` (the padded/fixed layout) so the
*real* improvement of fixing can be measured as
``runtime(unfixed) / runtime(fixed)``.

Beyond the paper's fork-join suites, :mod:`repro.workloads.concurrent`
adds families real runtimes produce — producer/consumer rings,
work-stealing deques, CAS-retry queues, seqlocks, NUMA ping-pong —
each with a declared :class:`~repro.workloads.base.GroundTruth`.
"""

from repro.workloads.base import (
    GroundTruth,
    Verdict,
    Workload,
    all_workload_names,
    families,
    get_workload,
    iter_workloads,
    parameter_schema,
    register,
    suites,
    workload_info,
)
from repro.workloads import (  # noqa: F401
    concurrent,
    micro,
    parsec,
    phoenix,
    synthetic,
)
from repro.workloads.micro import ArrayIncrement
from repro.workloads.synthetic import SyntheticSharing

PHOENIX_NAMES = [
    "histogram", "kmeans", "linear_regression", "matrix_multiply",
    "pca", "string_match", "reverse_index", "word_count",
]

PARSEC_NAMES = [
    "blackscholes", "bodytrack", "canneal", "facesim", "fluidanimate",
    "freqmine", "streamcluster", "swaptions", "x264",
]

# The 17 applications of Figure 4, in the figure's display order.
FIGURE4_NAMES = [
    "blackscholes", "bodytrack", "canneal", "facesim", "fluidanimate",
    "freqmine", "histogram", "kmeans", "linear_regression",
    "matrix_multiply", "pca", "string_match", "reverse_index",
    "streamcluster", "swaptions", "word_count", "x264",
]

# The concurrent families (one workload per family), detection-table order.
CONCURRENT_NAMES = [
    "producer_consumer_ring", "work_stealing_deque", "cas_retry_queue",
    "seqlock_read_mostly", "numa_ping_pong",
]

__all__ = [
    "ArrayIncrement",
    "SyntheticSharing",
    "CONCURRENT_NAMES",
    "FIGURE4_NAMES",
    "PARSEC_NAMES",
    "PHOENIX_NAMES",
    "GroundTruth",
    "Verdict",
    "Workload",
    "all_workload_names",
    "families",
    "get_workload",
    "iter_workloads",
    "parameter_schema",
    "register",
    "suites",
    "workload_info",
]
