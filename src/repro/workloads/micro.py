"""The Figure 1 microbenchmark: adjacent-element increments.

The paper's motivating example::

    int array[total];
    int window = total / numThreads;
    void threadFunc(int start) {
        for (index = start; index < start + window; index++)
            for (j = 0; j < 10000000; j++)
                array[index]++;
    }

Every thread hammers its own element, but adjacent 4-byte elements share
one cache line, so the coherence protocol serialises the "independent"
increments: on the paper's 8-core machine the program runs ~13x slower
than its linear-speedup expectation.

The ``fixed`` layout gives each element its own cache line (the padding
fix of Section 1), restoring near-linear scaling.
"""

from __future__ import annotations

from repro.workloads.base import GroundTruth, Workload, register


@register
class ArrayIncrement(Workload):
    """``array[index]++`` in a tight loop, one window per thread."""

    name = "array_increment"
    suite = "micro"
    ground_truth = GroundTruth.false_sharing(
        objects=("micro.py:array",), lines=1, fix_speedup=13.0,
        note="Figure 1: adjacent 4-byte counters pack one cache line")
    default_threads = 8

    #: Total array elements; 16 ints = exactly one 64-byte cache line, the
    #: worst case (every thread shares the single line with every other).
    TOTAL_ELEMENTS = 16
    #: Inner ``j`` iterations per element (paper: 10^7, scaled down).
    INNER_ITERS = 1500
    #: Private stack/loop-state words touched per iteration (spills,
    #: counters). The paper's own Figure 1 runs at ~150 cycles per
    #: iteration single-threaded, far above a bare load-inc-store, so the
    #: iteration carries non-trivial private traffic and compute.
    PRIVATE_WORDS_PER_ITER = 8
    #: Pure computation cycles per iteration.
    WORK_PER_ITER = 28

    def __init__(self, num_threads=None, scale=1.0, fixed=False, seed=0,
                 total_elements=None):
        super().__init__(num_threads, scale, fixed, seed)
        self.total_elements = total_elements or self.TOTAL_ELEMENTS
        if self.num_threads > self.total_elements:
            self.num_threads = self.total_elements
        self.inner_iters = self.scaled(self.INNER_ITERS)

    def element_stride(self) -> int:
        """Bytes between consecutive elements: 4 normally, 64 when fixed."""
        return 64 if self.fixed else 4

    def main(self, api):
        stride = self.element_stride()
        array = yield from api.malloc(self.total_elements * stride,
                                      callsite="micro.py:array")
        # Per-thread private stack slice (line-aligned: never shared).
        stacks = yield from api.malloc(self.num_threads * 64,
                                       callsite="micro.py:stacks")
        window = self.total_elements // self.num_threads
        args = [(array + i * window * stride, window, stride,
                 stacks + i * 64, self.inner_iters)
                for i in range(self.num_threads)]
        yield from self.fork_join(api, self._thread_func, args)

    def _thread_func(self, api, start_addr, window, stride, stack, inner):
        private = self.PRIVATE_WORDS_PER_ITER
        for index in range(window):
            addr = start_addr + index * stride
            for _ in range(inner):
                # The inner j-loop: spill/reload loop state, then the
                # increment of the (falsely shared) element.
                yield from api.loop(stack, 4, private, read=True,
                                    write=False, work=1)
                yield from api.loop(addr, 0, 1, read=True, write=True,
                                    work=self.WORK_PER_ITER - private)
