"""Workload base class and registry.

A workload bundles: global-variable declarations (:meth:`Workload.setup`),
a fork-join ``main`` generator (:meth:`Workload.main`), and a ``fixed``
switch selecting the padded layout that eliminates its false sharing (if
it has any). The ``scale`` knob multiplies iteration counts so tests can
run small while benchmarks run at full size.
"""

from __future__ import annotations

import abc
import inspect
import random
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Type

from repro.errors import ConfigError
from repro.symbols.table import SymbolTable

_REGISTRY: Dict[str, Type["Workload"]] = {}


def register(cls: Type["Workload"]) -> Type["Workload"]:
    """Class decorator adding a workload to the global registry."""
    name = cls.name
    if not name:
        raise ConfigError(f"workload class {cls.__name__} has no name")
    if name in _REGISTRY:
        raise ConfigError(f"duplicate workload name '{name}'")
    _REGISTRY[name] = cls
    return cls


def get_workload(name: str) -> Type["Workload"]:
    """Workload class by name; raises :class:`ConfigError` if unknown."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise ConfigError(f"unknown workload '{name}' (known: {known})") from None


def all_workload_names() -> List[str]:
    return sorted(_REGISTRY)


class Workload(abc.ABC):
    """Base class for synthetic benchmarks.

    Class attributes:
        name: registry key (e.g. ``"linear_regression"``).
        suite: ``"phoenix"``, ``"parsec"`` or ``"micro"``.
        documented_false_sharing: True when the paper documents a false
            sharing problem in this application.
        significant_false_sharing: True when that problem is significant
            enough that Cheetah should report it (False for the Figure 7
            trio, which Cheetah intentionally misses).
        default_threads: thread count used by the paper's evaluation.
    """

    name: str = ""
    suite: str = ""
    documented_false_sharing: bool = False
    significant_false_sharing: bool = False
    default_threads: int = 16

    def __init__(self, num_threads: Optional[int] = None, scale: float = 1.0,
                 fixed: bool = False, seed: int = 0):
        if num_threads is not None and num_threads < 1:
            raise ConfigError(f"num_threads must be >= 1, got {num_threads}")
        if scale <= 0:
            raise ConfigError(f"scale must be positive, got {scale}")
        self.num_threads = num_threads or self.default_threads
        self.scale = scale
        self.fixed = fixed
        self.seed = seed
        self.rng = random.Random(seed)

    # -- lifecycle -------------------------------------------------------------

    def setup(self, symbols: SymbolTable) -> None:
        """Declare global variables; default: none."""

    @abc.abstractmethod
    def main(self, api) -> Any:
        """The main-thread generator (use ``yield from api....``)."""

    # -- helpers ---------------------------------------------------------------

    def scaled(self, value: int, minimum: int = 1) -> int:
        """Scale an iteration count by the workload's ``scale``."""
        return max(minimum, int(value * self.scale))

    def fork_join(self, api, thread_fn: Callable[..., Any],
                  args_list: Sequence[tuple]):
        """Spawn a thread per argument tuple and join them all in order."""
        tids = []
        for args in args_list:
            tid = yield from api.spawn(thread_fn, *args)
            tids.append(tid)
        yield from api.join_all(tids)

    def chunks(self, total: int, parts: int) -> List[tuple]:
        """Split ``range(total)`` into ``parts`` (start, count) chunks."""
        base = total // parts
        remainder = total % parts
        out = []
        start = 0
        for index in range(parts):
            count = base + (1 if index < remainder else 0)
            out.append((start, count))
            start += count
        return out

    def clone(self, **overrides: Any) -> "Workload":
        """A fresh instance with this workload's constructor arguments,
        selectively overridden.

        Every constructor parameter (of the subclass's ``__init__``) is
        read back from the same-named instance attribute — the
        convention all registry workloads follow — so extra knobs like
        ``pattern`` or ``total_elements`` survive the copy. The clone
        gets a *fresh* rng seeded from ``seed``, so cloning an
        already-run workload yields the same access stream a new
        instance would (prefix extraction in :mod:`repro.predict`
        depends on this).
        """
        sig = inspect.signature(type(self).__init__)
        kwargs: Dict[str, Any] = {}
        for name, param in sig.parameters.items():
            if name == "self" or param.kind in (
                    inspect.Parameter.VAR_POSITIONAL,
                    inspect.Parameter.VAR_KEYWORD):
                continue
            if name in overrides:
                kwargs[name] = overrides.pop(name)
            elif hasattr(self, name):
                kwargs[name] = getattr(self, name)
        if overrides:
            unknown = ", ".join(sorted(overrides))
            raise ConfigError(
                f"{type(self).__name__}.clone: unknown override(s) {unknown}")
        try:
            return type(self)(**kwargs)
        except TypeError as exc:
            raise ConfigError(
                f"{type(self).__name__} cannot be cloned: constructor "
                f"arguments are not recoverable from attributes ({exc})"
            ) from exc

    def describe(self) -> str:
        fs = "has documented FS" if self.documented_false_sharing else "no FS"
        layout = "fixed layout" if self.fixed else "original layout"
        return (f"{self.name} ({self.suite}, {self.num_threads} threads, "
                f"scale {self.scale:g}, {layout}, {fs})")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
