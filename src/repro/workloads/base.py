"""Workload base class, structured ground truth and the queryable registry.

A workload bundles: global-variable declarations (:meth:`Workload.setup`),
a ``main`` generator (:meth:`Workload.main`), and a ``fixed`` switch
selecting the padded layout that eliminates its false sharing (if it has
any). The ``scale`` knob multiplies iteration counts so tests can run
small while benchmarks run at full size.

Every workload declares a structured :class:`GroundTruth` — the sharing
verdict the detector *should* reach on the default (unfixed) layout —
replacing the pre-v2 ``documented_false_sharing`` /
``significant_false_sharing`` boolean pair (still readable through
deprecation shims). The registry is queryable: :func:`iter_workloads`
filters by suite, family and verdict, and :func:`parameter_schema`
exposes each workload's constructor knobs for CLI/HTTP listings.
"""

from __future__ import annotations

import abc
import difflib
import enum
import inspect
import random
import warnings
from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
    Union,
)

from repro.errors import ConfigError
from repro.symbols.table import SymbolTable

_REGISTRY: Dict[str, Type["Workload"]] = {}


class Verdict(enum.Enum):
    """The sharing classification a detector should reach on a workload.

    Values mirror :class:`repro.core.detection.SharingKind` so ground
    truth and detector output compare directly (by ``.value``) without a
    workloads -> core import edge.
    """

    FALSE_SHARING = "false sharing"
    TRUE_SHARING = "true sharing"
    NONE = "no sharing"

    @classmethod
    def coerce(cls, value: Union["Verdict", str]) -> "Verdict":
        """A :class:`Verdict` from itself, its value, or its name."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            for member in cls:
                if value == member.value or value == member.name:
                    return member
        known = ", ".join(m.value for m in cls)
        raise ConfigError(f"unknown verdict {value!r} (known: {known})")


@dataclass(frozen=True)
class GroundTruth:
    """Declared sharing behaviour of a workload's default (unfixed) layout.

    Attributes:
        verdict: the classification the detector should reach.
        significant: for ``FALSE_SHARING`` verdicts, whether the instance
            is impactful enough that Cheetah must report it (False for
            the Figure 7 trio, whose false sharing is real but negligible
            and deliberately missed by sampling).
        expected_objects: label substrings (heap callsites or global
            symbol names) of the objects carrying the sharing, so tests
            can check *what* was reported, not just that something was.
        expected_lines: number of distinct falsely-shared cache lines
            the default layout produces, when it is a stable small
            number (``None``: unspecified).
        expected_fix_speedup: the speedup the padding fix should yield
            (the paper's Table 1 numbers where applicable; ``None``:
            unspecified or no fix exists).
        note: one-line rationale, shown by ``repro workloads list``.
    """

    verdict: Verdict = Verdict.NONE
    significant: bool = False
    expected_objects: Tuple[str, ...] = ()
    expected_lines: Optional[int] = None
    expected_fix_speedup: Optional[float] = None
    note: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "verdict", Verdict.coerce(self.verdict))
        object.__setattr__(self, "expected_objects",
                           tuple(self.expected_objects))
        if self.significant and self.verdict is not Verdict.FALSE_SHARING:
            raise ConfigError(
                "GroundTruth.significant applies only to FALSE_SHARING "
                f"verdicts, got {self.verdict.value!r}")
        if self.expected_lines is not None and self.expected_lines < 1:
            raise ConfigError("GroundTruth.expected_lines must be >= 1")
        if (self.expected_fix_speedup is not None
                and self.expected_fix_speedup <= 0):
            raise ConfigError(
                "GroundTruth.expected_fix_speedup must be positive")

    # -- convenience constructors -------------------------------------------

    @classmethod
    def false_sharing(cls, *, significant: bool = True,
                      objects: Sequence[str] = (),
                      lines: Optional[int] = None,
                      fix_speedup: Optional[float] = None,
                      note: str = "") -> "GroundTruth":
        return cls(verdict=Verdict.FALSE_SHARING, significant=significant,
                   expected_objects=tuple(objects), expected_lines=lines,
                   expected_fix_speedup=fix_speedup, note=note)

    @classmethod
    def true_sharing(cls, *, objects: Sequence[str] = (),
                     note: str = "") -> "GroundTruth":
        return cls(verdict=Verdict.TRUE_SHARING,
                   expected_objects=tuple(objects), note=note)

    @classmethod
    def none(cls, *, note: str = "") -> "GroundTruth":
        return cls(verdict=Verdict.NONE, note=note)

    # -- comparisons ---------------------------------------------------------

    def matches(self, kind: Any) -> bool:
        """Whether a detector classification agrees with this verdict.

        ``kind`` may be a :class:`Verdict`, a
        :class:`~repro.core.detection.SharingKind`, or either's string
        value — the enums share their value vocabulary.
        """
        value = kind.value if isinstance(kind, enum.Enum) else str(kind)
        return value == self.verdict.value

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "verdict": self.verdict.value,
            "significant": self.significant,
            "expected_objects": list(self.expected_objects),
            "expected_lines": self.expected_lines,
            "expected_fix_speedup": self.expected_fix_speedup,
            "note": self.note,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "GroundTruth":
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"GroundTruth.from_dict expects a mapping, "
                f"got {type(data).__name__}")
        known = {"verdict", "significant", "expected_objects",
                 "expected_lines", "expected_fix_speedup", "note"}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ConfigError(
                f"unknown GroundTruth key(s): {', '.join(unknown)}")
        kwargs = dict(data)
        if "expected_objects" in kwargs:
            kwargs["expected_objects"] = tuple(kwargs["expected_objects"])
        return cls(**kwargs)


class _DeprecatedFlag:
    """Pre-v2 boolean attribute, derived from :attr:`Workload.ground_truth`.

    Works for both class and instance access (``cls.documented_false_sharing``
    and ``workload.documented_false_sharing``), emitting a
    DeprecationWarning either way.
    """

    def __init__(self, name: str,
                 derive: Callable[[GroundTruth], bool]) -> None:
        self._name = name
        self._derive = derive

    def __get__(self, obj, objtype=None) -> bool:
        warnings.warn(
            f"Workload.{self._name} is deprecated; read "
            "Workload.ground_truth (verdict/significant) instead",
            DeprecationWarning, stacklevel=2)
        truth = (obj.ground_truth if obj is not None
                 else objtype.ground_truth)
        return self._derive(truth)


def register(cls: Type["Workload"]) -> Type["Workload"]:
    """Class decorator adding a workload to the global registry."""
    name = cls.name
    if not name:
        raise ConfigError(f"workload class {cls.__name__} has no name")
    if name in _REGISTRY:
        raise ConfigError(f"duplicate workload name '{name}'")
    if not isinstance(cls.ground_truth, GroundTruth):
        raise ConfigError(
            f"workload '{name}' must declare ground_truth as a "
            f"GroundTruth, got {type(cls.ground_truth).__name__}")
    _REGISTRY[name] = cls
    return cls


def get_workload(name: str) -> Type["Workload"]:
    """Workload class by name; raises :class:`ConfigError` if unknown,
    suggesting the nearest registered name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        close = difflib.get_close_matches(name, _REGISTRY, n=1)
        hint = f"; did you mean '{close[0]}'?" if close else ""
        raise ConfigError(
            f"unknown workload '{name}'{hint} (known: {known})") from None


def all_workload_names() -> List[str]:
    return sorted(_REGISTRY)


def iter_workloads(*, suite: Optional[str] = None,
                   family: Optional[str] = None,
                   verdict: Optional[Union[Verdict, str]] = None,
                   significant: Optional[bool] = None,
                   ) -> Iterator[Type["Workload"]]:
    """Registered workload classes, in name order, optionally filtered.

    ``verdict`` accepts a :class:`Verdict` or its string value;
    ``significant`` filters on ``ground_truth.significant``.
    """
    want = Verdict.coerce(verdict) if verdict is not None else None
    for name in sorted(_REGISTRY):
        cls = _REGISTRY[name]
        if suite is not None and cls.suite != suite:
            continue
        if family is not None and cls.family != family:
            continue
        if want is not None and cls.ground_truth.verdict is not want:
            continue
        if (significant is not None
                and cls.ground_truth.significant != significant):
            continue
        yield cls


def families() -> List[str]:
    """Every distinct workload family, sorted."""
    return sorted({cls.family for cls in _REGISTRY.values()})


def suites() -> List[str]:
    """Every distinct workload suite, sorted."""
    return sorted({cls.suite for cls in _REGISTRY.values()})


def parameter_schema(cls: Type["Workload"]) -> Dict[str, Dict[str, Any]]:
    """Constructor-parameter schema of a workload class.

    One entry per ``__init__`` parameter (excluding ``self``), carrying
    the default value and, when an annotation is present, its string
    form. Drives ``repro workloads list --json`` and the daemon's
    ``GET /v1/workloads``.
    """
    sig = inspect.signature(cls.__init__)
    schema: Dict[str, Dict[str, Any]] = {}
    for name, param in sig.parameters.items():
        if name == "self" or param.kind in (
                inspect.Parameter.VAR_POSITIONAL,
                inspect.Parameter.VAR_KEYWORD):
            continue
        entry: Dict[str, Any] = {
            "required": param.default is inspect.Parameter.empty,
        }
        if param.default is not inspect.Parameter.empty:
            entry["default"] = param.default
        if param.annotation is not inspect.Parameter.empty:
            entry["type"] = (param.annotation
                             if isinstance(param.annotation, str)
                             else getattr(param.annotation, "__name__",
                                          str(param.annotation)))
        schema[name] = entry
    return schema


def workload_info(cls: Type["Workload"]) -> Dict[str, Any]:
    """JSON-ready description of one registered workload."""
    return {
        "name": cls.name,
        "suite": cls.suite,
        "family": cls.family,
        "default_threads": cls.default_threads,
        "ground_truth": cls.ground_truth.to_dict(),
        "machine_defaults": dict(cls.machine_defaults),
        "parameters": parameter_schema(cls),
    }


class Workload(abc.ABC):
    """Base class for synthetic benchmarks.

    Class attributes:
        name: registry key (e.g. ``"linear_regression"``).
        suite: ``"phoenix"``, ``"parsec"``, ``"micro"`` or
            ``"concurrent"``.
        family: the concurrency shape — ``"fork_join"`` for the paper's
            17 applications, or one of the concurrent families
            (``"producer_consumer"``, ``"work_stealing"``,
            ``"lock_free"``, ``"seqlock"``, ``"numa"``).
        ground_truth: the declared :class:`GroundTruth` of the default
            (unfixed) layout. ``fixed=True`` layouts of false-sharing
            workloads are expected to classify as no sharing.
        machine_defaults: :class:`~repro.sim.params.MachineConfig`
            overrides the workload is designed around (e.g. NUMA
            latency knobs); consumers that honor them build the machine
            via ``MachineConfig(**cls.machine_defaults)``.
        default_threads: thread count used by the paper's evaluation.
    """

    name: str = ""
    suite: str = ""
    family: str = "fork_join"
    ground_truth: GroundTruth = GroundTruth()
    machine_defaults: Mapping[str, Any] = {}
    default_threads: int = 16

    #: Deprecated boolean pair (pre-v2), derived from ``ground_truth``.
    documented_false_sharing = _DeprecatedFlag(
        "documented_false_sharing",
        lambda truth: truth.verdict is Verdict.FALSE_SHARING)
    significant_false_sharing = _DeprecatedFlag(
        "significant_false_sharing",
        lambda truth: (truth.verdict is Verdict.FALSE_SHARING
                       and truth.significant))

    def __init__(self, num_threads: Optional[int] = None, scale: float = 1.0,
                 fixed: bool = False, seed: int = 0):
        if num_threads is not None and num_threads < 1:
            raise ConfigError(f"num_threads must be >= 1, got {num_threads}")
        if scale <= 0:
            raise ConfigError(f"scale must be positive, got {scale}")
        self.num_threads = num_threads or self.default_threads
        self.scale = scale
        self.fixed = fixed
        self.seed = seed
        self.rng = random.Random(seed)

    # -- lifecycle -------------------------------------------------------------

    def setup(self, symbols: SymbolTable) -> None:
        """Declare global variables; default: none."""

    @abc.abstractmethod
    def main(self, api) -> Any:
        """The main-thread generator (use ``yield from api....``)."""

    # -- helpers ---------------------------------------------------------------

    def scaled(self, value: int, minimum: int = 1) -> int:
        """Scale an iteration count by the workload's ``scale``."""
        return max(minimum, int(value * self.scale))

    def fork_join(self, api, thread_fn: Callable[..., Any],
                  args_list: Sequence[tuple]):
        """Spawn a thread per argument tuple and join them all in order."""
        tids = []
        for args in args_list:
            tid = yield from api.spawn(thread_fn, *args)
            tids.append(tid)
        yield from api.join_all(tids)

    def chunks(self, total: int, parts: int) -> List[tuple]:
        """Split ``range(total)`` into ``parts`` (start, count) chunks."""
        base = total // parts
        remainder = total % parts
        out = []
        start = 0
        for index in range(parts):
            count = base + (1 if index < remainder else 0)
            out.append((start, count))
            start += count
        return out

    def clone(self, **overrides: Any) -> "Workload":
        """A fresh instance with this workload's constructor arguments,
        selectively overridden.

        Every constructor parameter (of the subclass's ``__init__``) is
        read back from the same-named instance attribute — the
        convention all registry workloads follow — so extra knobs like
        ``pattern`` or ``total_elements`` survive the copy. The clone
        gets a *fresh* rng seeded from ``seed``, so cloning an
        already-run workload yields the same access stream a new
        instance would (prefix extraction in :mod:`repro.predict`
        depends on this).
        """
        sig = inspect.signature(type(self).__init__)
        kwargs: Dict[str, Any] = {}
        for name, param in sig.parameters.items():
            if name == "self" or param.kind in (
                    inspect.Parameter.VAR_POSITIONAL,
                    inspect.Parameter.VAR_KEYWORD):
                continue
            if name in overrides:
                kwargs[name] = overrides.pop(name)
            elif hasattr(self, name):
                kwargs[name] = getattr(self, name)
        if overrides:
            unknown = ", ".join(sorted(overrides))
            raise ConfigError(
                f"{type(self).__name__}.clone: unknown override(s) {unknown}")
        try:
            return type(self)(**kwargs)
        except TypeError as exc:
            raise ConfigError(
                f"{type(self).__name__} cannot be cloned: constructor "
                f"arguments are not recoverable from attributes ({exc})"
            ) from exc

    def describe(self) -> str:
        truth = self.ground_truth
        if truth.verdict is Verdict.FALSE_SHARING:
            fs = ("significant FS" if truth.significant
                  else "negligible FS")
        elif truth.verdict is Verdict.TRUE_SHARING:
            fs = "true sharing"
        else:
            fs = "no FS"
        layout = "fixed layout" if self.fixed else "original layout"
        return (f"{self.name} ({self.suite}, {self.num_threads} threads, "
                f"scale {self.scale:g}, {layout}, {fs})")

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.describe()}>"
