"""Concurrent workload families beyond fork-join.

The paper's 17 applications all follow one shape — fork, hammer, join —
so everything downstream (detector thresholds, prediction, streaming)
was only ever exercised on that pattern. These workloads reproduce the
access patterns real concurrent runtimes generate:

- :class:`ProducerConsumerRing` — bounded SPSC rings; the *intended*
  communication (slot hand-off) is true sharing, while the packed
  per-thread cursor words falsely share;
- :class:`WorkStealingDeque` — Chase-Lev-style deques; owners hammer
  their packed ``bottom`` words (false sharing), thieves CAS victims'
  line-aligned ``top`` words (true sharing);
- :class:`CASRetryQueue` — a lock-free MPSC queue head under CAS retry
  storms: heavy invalidation traffic that is *all* true sharing, the
  classic detector false-positive bait;
- :class:`SeqlockReadMostly` — one writer bumping a seqlock, many
  readers spinning on the same words: true sharing, read-dominated;
- :class:`NumaPingPong` — packed per-thread counters ping-ponging
  between NUMA nodes; ships :attr:`~Workload.machine_defaults` enabling
  the :class:`~repro.sim.params.MachineConfig` remote-latency knobs.

Layout discipline matters here: a falsely-shared line must contain only
single-toucher words, so every *communicating* word (ring slots, deque
tops, queue head, seqlock words) lives in its own allocation. That is
exactly how the real bugs look — the bug object and the communication
object are distinct — and it keeps each workload's ground truth crisp.
"""

from __future__ import annotations

from repro.workloads.base import GroundTruth, Workload, register


@register
class ProducerConsumerRing(Workload):
    """Bounded single-producer/single-consumer rings, one per thread pair.

    Each pair shares a small ring of slots (intended communication: the
    producer stores a slot, the consumer loads the same slot — true
    sharing). Both threads also bump their own progress cursor once per
    item; the cursors of *all* threads are packed 4 bytes apart in one
    allocation, so neighbouring pairs' cursors falsely share a line.
    The ``fixed`` layout pads each cursor to its own line.
    """

    name = "producer_consumer_ring"
    suite = "concurrent"
    family = "producer_consumer"
    ground_truth = GroundTruth.false_sharing(
        objects=("concurrent.py:pc_cursors",), lines=1,
        note="packed per-thread cursors; ring slots are true sharing")
    default_threads = 8

    RING_SLOTS = 8
    ITEMS_PER_PAIR = 1200
    WORK_PER_ITEM = 6

    def __init__(self, num_threads=None, scale=1.0, fixed=False, seed=0):
        super().__init__(num_threads, scale, fixed, seed)
        # One producer + one consumer per pair; force an even count >= 2.
        self.num_threads = max(2, self.num_threads - self.num_threads % 2)
        self.items = self.scaled(self.ITEMS_PER_PAIR)

    def cursor_stride(self) -> int:
        return 64 if self.fixed else 4

    def main(self, api):
        pairs = self.num_threads // 2
        stride = self.cursor_stride()
        # Every thread's progress cursor, packed (the bug object).
        cursors = yield from api.malloc(self.num_threads * stride,
                                        callsite="concurrent.py:pc_cursors")
        args = []
        for pair in range(pairs):
            # The pair's ring: communication object, one per pair.
            ring = yield from api.malloc(self.RING_SLOTS * 4,
                                         callsite="concurrent.py:pc_ring")
            producer_cursor = cursors + (2 * pair) * stride
            consumer_cursor = cursors + (2 * pair + 1) * stride
            args.append((ring, producer_cursor, True))
            args.append((ring, consumer_cursor, False))
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, ring, cursor, is_producer):
        for item in range(self.items):
            slot = ring + (item % self.RING_SLOTS) * 4
            if is_producer:
                yield from api.store(slot)
            else:
                yield from api.load(slot)
            # Publish progress: RMW this thread's own (packed) cursor.
            yield from api.update(cursor)
            yield from api.work(self.WORK_PER_ITEM)


@register
class WorkStealingDeque(Workload):
    """Chase-Lev-style work-stealing deques, one per worker.

    Owners push/pop by hammering their own ``bottom`` index; all bottoms
    are packed 4 bytes apart (false sharing; ``fixed`` pads them).
    Every few operations a worker steals: it CASes the victim's ``top``
    word and reads the victim's task slot — both true sharing, kept in
    separate line-aligned allocations so they cannot contaminate the
    bottoms line.
    """

    name = "work_stealing_deque"
    suite = "concurrent"
    family = "work_stealing"
    ground_truth = GroundTruth.false_sharing(
        objects=("concurrent.py:ws_bottoms",), lines=1,
        note="packed owner bottom indices; steals (tops) are true sharing")
    default_threads = 8

    OPS_PER_WORKER = 1200
    STEAL_EVERY = 16
    TASK_WORDS = 16
    WORK_PER_OP = 5

    def __init__(self, num_threads=None, scale=1.0, fixed=False, seed=0):
        super().__init__(num_threads, scale, fixed, seed)
        self.num_threads = max(2, self.num_threads)
        self.ops = self.scaled(self.OPS_PER_WORKER)

    def bottom_stride(self) -> int:
        return 64 if self.fixed else 4

    def main(self, api):
        n = self.num_threads
        stride = self.bottom_stride()
        # Owner-hammered bottom indices, packed (the bug object).
        bottoms = yield from api.malloc(n * stride,
                                        callsite="concurrent.py:ws_bottoms")
        # Thief-CASed top indices: one line each (true sharing, isolated).
        tops = yield from api.malloc(n * 64, callsite="concurrent.py:ws_tops")
        # Per-worker task arrays: one line each; word 0 is what thieves read.
        tasks = yield from api.malloc(n * self.TASK_WORDS * 4 + n * 64,
                                      callsite="concurrent.py:ws_tasks")
        task_stride = self.TASK_WORDS * 4 + 64
        args = []
        for i in range(n):
            victim = (i + 1) % n
            args.append((bottoms + i * stride,
                         tasks + i * task_stride,
                         tops + victim * 64,
                         tasks + victim * task_stride))
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, bottom, my_tasks, victim_top, victim_tasks):
        for op in range(self.ops):
            if op % self.STEAL_EVERY == 0:
                # steal(): CAS the victim's top, read its task slot 0.
                yield from api.update(victim_top)
                yield from api.load(victim_tasks)
            else:
                # push/pop: write a task slot, bump own bottom.
                yield from api.store(
                    my_tasks + (op % self.TASK_WORDS) * 4)
                yield from api.update(bottom)
            yield from api.work(self.WORK_PER_OP)


@register
class CASRetryQueue(Workload):
    """Lock-free MPSC queue head under CAS retry storms.

    Every thread enqueues by read-modify-writing the single shared head
    word, retrying a few times under contention; node payloads are
    written to private line-aligned arenas. The head line takes massive
    invalidation traffic, but every access lands on the same word —
    textbook *true* sharing. A detector that reports it is wrong;
    ``fixed`` is deliberately a no-op (there is nothing to pad away).
    """

    name = "cas_retry_queue"
    suite = "concurrent"
    family = "lock_free"
    ground_truth = GroundTruth.true_sharing(
        objects=("concurrent.py:casq_head",),
        note="all threads CAS one head word; padding cannot help")
    default_threads = 8

    ENQUEUES_PER_THREAD = 600
    RETRIES = 2
    NODE_WORDS = 4
    WORK_PER_ENQUEUE = 8

    def __init__(self, num_threads=None, scale=1.0, fixed=False, seed=0):
        super().__init__(num_threads, scale, fixed, seed)
        self.num_threads = max(2, self.num_threads)
        self.enqueues = self.scaled(self.ENQUEUES_PER_THREAD)

    def main(self, api):
        n = self.num_threads
        # The shared queue head: one word, its own allocation.
        head = yield from api.malloc(64, callsite="concurrent.py:casq_head")
        # Per-thread node arenas, line-aligned (private).
        arena_bytes = self.enqueues * self.NODE_WORDS * 4
        arena_bytes += (-arena_bytes) % 64
        nodes = yield from api.malloc(n * arena_bytes,
                                      callsite="concurrent.py:casq_nodes")
        args = [(head, nodes + i * arena_bytes) for i in range(n)]
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, head, arena):
        node_bytes = self.NODE_WORDS * 4
        for i in range(self.enqueues):
            # Fill the node (private writes).
            yield from api.loop(arena + i * node_bytes, 4, self.NODE_WORDS,
                                read=False, write=True, work=1)
            # CAS loop on the shared head: load, (fail), retry, publish.
            for _ in range(self.RETRIES):
                yield from api.load(head)
                yield from api.work(1)
            yield from api.update(head)
            yield from api.work(self.WORK_PER_ENQUEUE)


@register
class SeqlockReadMostly(Workload):
    """One writer bumping a seqlock, many readers spinning on it.

    The writer read-modify-writes the sequence word and the guarded data
    words; every reader loads the same words (seq, data, seq again).
    All traffic shares words across threads — true sharing, heavily
    read-dominated. ``fixed`` is a no-op.
    """

    name = "seqlock_read_mostly"
    suite = "concurrent"
    family = "seqlock"
    ground_truth = GroundTruth.true_sharing(
        objects=("concurrent.py:seqlock",),
        note="readers and the writer touch the same seq/data words")
    default_threads = 8

    WRITER_UPDATES = 800
    READS_PER_READER = 1600
    DATA_WORDS = 6
    WORK_PER_OP = 4

    def __init__(self, num_threads=None, scale=1.0, fixed=False, seed=0):
        super().__init__(num_threads, scale, fixed, seed)
        self.num_threads = max(2, self.num_threads)
        self.updates = self.scaled(self.WRITER_UPDATES)
        self.reads = self.scaled(self.READS_PER_READER)

    def main(self, api):
        # seq word + data words, one allocation (one line).
        lock = yield from api.malloc((1 + self.DATA_WORDS) * 4,
                                     callsite="concurrent.py:seqlock")
        args = [(lock, True)]
        args += [(lock, False)] * (self.num_threads - 1)
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, lock, is_writer):
        data = lock + 4
        if is_writer:
            for _ in range(self.updates):
                yield from api.update(lock)      # seq: odd (write begins)
                yield from api.loop(data, 4, self.DATA_WORDS, read=True,
                                    write=True, work=1)
                yield from api.update(lock)      # seq: even (write ends)
                yield from api.work(self.WORK_PER_OP)
        else:
            for _ in range(self.reads):
                yield from api.load(lock)        # seq before
                yield from api.loop(data, 4, self.DATA_WORDS, write=False,
                                    work=1)
                yield from api.load(lock)        # seq after
                yield from api.work(self.WORK_PER_OP)


@register
class NumaPingPong(Workload):
    """Packed per-thread counters ping-ponging across NUMA nodes.

    Identical in shape to :class:`~repro.workloads.micro.ArrayIncrement`
    — each thread increments its own packed 4-byte counter — but
    designed for a two-node machine: the engine binds thread ``tid`` to
    core ``tid % num_cores``, so with ``numa_nodes=2`` neighbouring
    counters belong to threads on *different* nodes and every false
    invalidation also pays the remote-transfer penalty. The workload's
    :attr:`machine_defaults` carry the NUMA knobs; detection math is
    unchanged (the penalty only inflates the latency cost of the same
    false sharing, as on real asymmetric-latency machines).
    """

    name = "numa_ping_pong"
    suite = "concurrent"
    family = "numa"
    ground_truth = GroundTruth.false_sharing(
        objects=("concurrent.py:numa_slots",), lines=1,
        note="packed counters; remote-node invalidations cost extra")
    machine_defaults = {
        "numa_nodes": 2,
        "remote_fetch_penalty": 60,
        "remote_transfer_penalty": 40,
    }
    default_threads = 8

    ITERS_PER_THREAD = 1400
    PRIVATE_WORDS = 8
    WORK_PER_ITER = 10

    def __init__(self, num_threads=None, scale=1.0, fixed=False, seed=0):
        super().__init__(num_threads, scale, fixed, seed)
        self.num_threads = max(2, self.num_threads)
        self.iters = self.scaled(self.ITERS_PER_THREAD)

    def slot_stride(self) -> int:
        return 64 if self.fixed else 4

    def main(self, api):
        n = self.num_threads
        stride = self.slot_stride()
        slots = yield from api.malloc(n * stride,
                                      callsite="concurrent.py:numa_slots")
        # Line-aligned private scratch, one per thread.
        scratch = yield from api.malloc(n * 64,
                                        callsite="concurrent.py:numa_scratch")
        args = [(slots + i * stride, scratch + i * 64) for i in range(n)]
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, slot, scratch):
        for _ in range(self.iters):
            yield from api.loop(scratch, 4, self.PRIVATE_WORDS, read=True,
                                write=False, work=1)
            yield from api.loop(slot, 0, 1, read=True, write=True,
                                work=self.WORK_PER_ITER)
