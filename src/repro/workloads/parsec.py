"""Synthetic PARSEC benchmarks (Bienia, 2011).

``streamcluster`` carries the suite's documented false sharing bug
(Section 4.2.2): its authors padded the per-thread ``work_mem`` regions
using a ``CACHE_LINE`` macro set to 32 bytes, half the actual 64-byte
line, so neighbouring threads still share lines. ``x264`` creates over a
thousand short-lived threads, making it (with kmeans) the Figure 4
overhead outlier. The remaining applications have no documented false
sharing and exist to populate the overhead study with realistic
instruction mixes.
"""

from __future__ import annotations

from repro.workloads.base import GroundTruth, Workload, register
from repro.workloads.phoenix import STREAMCLUSTER_CALLSITE


@register
class StreamCluster(Workload):
    """PARSEC streamcluster: padding computed for 32-byte cache lines.

    Every worker thread owns a slot of the shared ``work_mem`` object
    (allocated at streamcluster.cpp:985), padded to ``CACHE_LINE = 32``
    bytes. On a 64-byte-line machine, slot pairs share a line, so the
    per-iteration cost updates falsely share — a real but modest problem
    (paper Table 1: ~1.015-1.035x after fixing with 64-byte padding).
    """

    name = "streamcluster"
    suite = "parsec"
    ground_truth = GroundTruth.false_sharing(
        objects=(STREAMCLUSTER_CALLSITE,), fix_speedup=1.03,
        note="work_mem padded for 32-byte lines on a 64-byte machine")

    #: The authors' (wrong) CACHE_LINE macro value.
    SLOT_BYTES = 32
    #: The fixed layout pads slots to the machine's real line size.
    SLOT_BYTES_FIXED = 64
    ITERATIONS = 300
    PRIVATE_WORDS = 192
    WORK_PER_WORD = 3
    #: work_mem is updated once every this many iterations (pgain updates
    #: the per-thread cost entries on every pass).
    UPDATE_EVERY = 1
    #: Words of the slot written per update (cost, total).
    SLOT_WORDS = 4

    def __init__(self, num_threads=None, scale=1.0, fixed=False, seed=0,
                 fixed_slot_bytes=None):
        super().__init__(num_threads, scale, fixed, seed)
        self.iterations = self.scaled(self.ITERATIONS)
        # The padding the "fix" applies; 64 bytes fixes 64-byte-line
        # machines. Machines with larger lines need larger padding (the
        # bug's root cause, generalized).
        self.fixed_slot_bytes = fixed_slot_bytes or self.SLOT_BYTES_FIXED

    @property
    def slot_stride(self) -> int:
        return self.fixed_slot_bytes if self.fixed else self.SLOT_BYTES

    def main(self, api):
        stride = self.slot_stride
        points_words = self.num_threads * self.PRIVATE_WORDS
        points = yield from api.malloc(points_words * 4,
                                       callsite="parsec.py:sc_points")
        yield from api.loop(points, 4, points_words, read=False, write=True,
                            work=1)
        yield from api.loop(points, 4, points_words, read=True, write=False,
                            work=1, repeat=2)
        work_mem = yield from api.malloc(self.num_threads * stride,
                                         callsite=STREAMCLUSTER_CALLSITE)
        args = [(points + i * self.PRIVATE_WORDS * 4,
                 work_mem + i * stride)
                for i in range(self.num_threads)]
        yield from self.fork_join(api, self._worker, args)
        yield from api.loop(work_mem, stride, self.num_threads,
                            read=True, write=False, work=2)

    def _worker(self, api, points, slot):
        for iteration in range(self.iterations):
            # pgain(): scan this thread's points, computing cost deltas.
            yield from api.loop(points, 4, self.PRIVATE_WORDS, write=False,
                                work=self.WORK_PER_WORD)
            if iteration % self.UPDATE_EVERY == 0:
                # Update the per-thread cost entries in work_mem.
                yield from api.loop(slot, 4, self.SLOT_WORDS, read=True,
                                    write=True, work=1)


@register
class BlackScholes(Workload):
    """PARSEC blackscholes: embarrassingly parallel option pricing."""

    name = "blackscholes"
    suite = "parsec"
    ground_truth = GroundTruth.none(note="embarrassingly parallel option pricing")

    OPTIONS_PER_THREAD = 700
    WORDS_PER_OPTION = 6
    WORK_PER_OPTION = 60

    def main(self, api):
        options = self.scaled(self.OPTIONS_PER_THREAD)
        opt_bytes = self.WORDS_PER_OPTION * 4
        data = yield from api.malloc(self.num_threads * options * opt_bytes,
                                     callsite="parsec.py:options")
        yield from api.loop(data, 4, min(self.num_threads * options *
                                         self.WORDS_PER_OPTION, 4096),
                            read=False, write=True, work=1)
        prices = yield from api.malloc(self.num_threads * options * 4,
                                       callsite="parsec.py:prices")
        args = [(data + i * options * opt_bytes,
                 prices + i * options * 4, options)
                for i in range(self.num_threads)]
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, chunk, prices, options):
        opt_bytes = self.WORDS_PER_OPTION * 4
        for opt in range(options):
            yield from api.loop(chunk + opt * opt_bytes, 4,
                                self.WORDS_PER_OPTION, write=False,
                                work=self.WORK_PER_OPTION)
            yield from api.store(prices + opt * 4)


@register
class BodyTrack(Workload):
    """PARSEC bodytrack: repeated fork-join over a shared read-only model."""

    name = "bodytrack"
    suite = "parsec"
    ground_truth = GroundTruth.none(note="shared model is read-only in the parallel phase")

    FRAMES = 4
    MODEL_WORDS = 512
    PARTICLES_PER_THREAD = 40
    WORK_PER_PARTICLE = 30

    def setup(self, symbols):
        self.model = symbols.define("body_model", self.MODEL_WORDS * 4,
                                    align=64)

    def main(self, api):
        particles = self.scaled(self.PARTICLES_PER_THREAD)
        state = yield from api.malloc(self.num_threads * particles * 16,
                                      callsite="parsec.py:particles")
        yield from api.loop(self.model, 4, self.MODEL_WORDS,
                            read=False, write=True, work=1)
        for _ in range(self.FRAMES):
            args = [(state + i * particles * 16, particles)
                    for i in range(self.num_threads)]
            yield from self.fork_join(api, self._worker, args)
            # Serial: pick the best particle, update the model.
            yield from api.loop(self.model, 4, 64, read=True, write=True,
                                work=2)

    def _worker(self, api, particles, count):
        for p in range(count):
            yield from api.loop(self.model, 4, 48, write=False, work=2)
            yield from api.loop(particles + p * 16, 4, 4, read=True,
                                write=True, work=self.WORK_PER_PARTICLE)


@register
class Canneal(Workload):
    """PARSEC canneal: random element swaps over one big shared array.

    Simulated annealing swaps random netlist elements; cross-thread
    collisions on a cache line exist but are spread uniformly over a huge
    array, so no single object accumulates enough invalidations to matter.
    """

    name = "canneal"
    suite = "parsec"
    ground_truth = GroundTruth.none(note="collisions spread uniformly; no object accumulates")

    ELEMENTS = 40_000
    SWAPS_PER_THREAD = 500
    WORK_PER_SWAP = 12

    def main(self, api):
        elements = self.scaled(self.ELEMENTS, minimum=1024)
        netlist = yield from api.malloc(elements * 4,
                                        callsite="parsec.py:netlist")
        yield from api.loop(netlist, 4, min(elements, 4096),
                            read=False, write=True, work=1)
        swaps = self.scaled(self.SWAPS_PER_THREAD)
        args = []
        for i in range(self.num_threads):
            seed = self.seed * 1_000_003 + i
            args.append((netlist, elements, swaps, seed))
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, netlist, elements, swaps, seed):
        import random
        rng = random.Random(seed)
        for _ in range(swaps):
            a = netlist + rng.randrange(elements) * 4
            b = netlist + rng.randrange(elements) * 4
            yield from api.update(a)
            yield from api.update(b)
            yield from api.work(self.WORK_PER_SWAP)


@register
class FaceSim(Workload):
    """PARSEC facesim: private mesh partitions, iterative relaxation."""

    name = "facesim"
    suite = "parsec"
    ground_truth = GroundTruth.none(note="private mesh partitions")

    NODES_PER_THREAD = 1_024
    SWEEPS = 6
    WORK_PER_NODE = 4

    def main(self, api):
        nodes = self.scaled(self.NODES_PER_THREAD, minimum=64)
        mesh = yield from api.malloc(self.num_threads * nodes * 4,
                                     callsite="parsec.py:mesh")
        yield from api.loop(mesh, 4, min(self.num_threads * nodes, 4096),
                            read=False, write=True, work=1)
        args = [(mesh + i * nodes * 4, nodes)
                for i in range(self.num_threads)]
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, partition, nodes):
        for _ in range(self.SWEEPS):
            yield from api.loop(partition, 4, nodes, read=True, write=True,
                                work=self.WORK_PER_NODE)


@register
class FluidAnimate(Workload):
    """PARSEC fluidanimate: private cell updates + read-shared boundaries."""

    name = "fluidanimate"
    suite = "parsec"
    ground_truth = GroundTruth.none(note="boundary reads only; no shared writes")

    CELLS_PER_THREAD = 768
    STEPS = 5
    BOUNDARY_WORDS = 16
    WORK_PER_CELL = 5

    def main(self, api):
        cells = self.scaled(self.CELLS_PER_THREAD, minimum=64)
        grid = yield from api.malloc(self.num_threads * cells * 4,
                                     callsite="parsec.py:grid")
        yield from api.loop(grid, 4, min(self.num_threads * cells, 4096),
                            read=False, write=True, work=1)
        args = []
        for i in range(self.num_threads):
            mine = grid + i * cells * 4
            neighbour = grid + ((i + 1) % self.num_threads) * cells * 4
            args.append((mine, neighbour, cells))
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, mine, neighbour, cells):
        for _ in range(self.STEPS):
            # Read the neighbour partition's boundary cells (read-only
            # sharing: no invalidations).
            yield from api.loop(neighbour, 4, self.BOUNDARY_WORDS,
                                write=False, work=2)
            yield from api.loop(mine, 4, cells, read=True, write=True,
                                work=self.WORK_PER_CELL)


@register
class FreqMine(Workload):
    """PARSEC freqmine: shared read-only FP-tree + private counters."""

    name = "freqmine"
    suite = "parsec"
    ground_truth = GroundTruth.none(note="shared FP-tree is read-only")

    TREE_WORDS = 2_048
    TRANSACTIONS_PER_THREAD = 600
    WORK_PER_TRANSACTION = 10

    def setup(self, symbols):
        self.tree = symbols.define("fp_tree", self.TREE_WORDS * 4, align=64)

    def main(self, api):
        transactions = self.scaled(self.TRANSACTIONS_PER_THREAD)
        yield from api.loop(self.tree, 4, self.TREE_WORDS,
                            read=False, write=True, work=1)
        counters = yield from api.malloc(self.num_threads * 64,
                                         callsite="parsec.py:fm_counters")
        args = []
        for i in range(self.num_threads):
            seed = self.seed * 7_777_777 + i
            args.append((counters + i * 64, transactions, seed))
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, counter, transactions, seed):
        import random
        rng = random.Random(seed)
        for _ in range(transactions):
            # Walk a random path down the shared (read-only) tree.
            offset = rng.randrange(self.TREE_WORDS - 16)
            yield from api.loop(self.tree + offset * 4, 4, 16, write=False,
                                work=self.WORK_PER_TRANSACTION)
            yield from api.update(counter)


@register
class Swaptions(Workload):
    """PARSEC swaptions: Monte-Carlo simulation, heavily compute-bound."""

    name = "swaptions"
    suite = "parsec"
    ground_truth = GroundTruth.none(note="line-aligned per-thread path state")

    SIMS_PER_THREAD = 400
    #: One full cache line per thread's path state (16 words x 4 bytes):
    #: per-thread simulation state is line-aligned, so no sharing.
    PATH_WORDS = 16
    WORK_PER_SIM = 80

    def main(self, api):
        sims = self.scaled(self.SIMS_PER_THREAD)
        paths = yield from api.malloc(
            self.num_threads * self.PATH_WORDS * 4,
            callsite="parsec.py:paths")
        yield from api.loop(paths, 4, self.num_threads * self.PATH_WORDS,
                            read=False, write=True, work=1)
        args = [(paths + i * self.PATH_WORDS * 4, sims)
                for i in range(self.num_threads)]
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, path, sims):
        for _ in range(sims):
            yield from api.loop(path, 4, self.PATH_WORDS, read=True,
                                write=True, work=self.WORK_PER_SIM)


@register
class X264(Workload):
    """PARSEC x264: over a thousand short-lived encoder threads.

    One fork-join phase per frame, one thread per slice; the paper counts
    1024 threads in its 40-second run and attributes Cheetah's >20%
    overhead on this application to per-thread PMU setup (Section 4.1).
    """

    name = "x264"
    suite = "parsec"
    ground_truth = GroundTruth.none(note="per-slice buffers; Figure 4 overhead outlier")

    FRAMES = 64  # 64 frames x 16 slice threads = 1024 threads
    MACROBLOCKS_PER_THREAD = 24
    WORDS_PER_MACROBLOCK = 8
    WORK_PER_MACROBLOCK = 14

    def main(self, api):
        blocks = self.scaled(self.MACROBLOCKS_PER_THREAD)
        frame_bytes = self.num_threads * blocks * self.WORDS_PER_MACROBLOCK * 4
        frame = yield from api.malloc(frame_bytes, callsite="parsec.py:frame")
        yield from api.loop(frame, 4, min(frame_bytes // 4, 4096),
                            read=False, write=True, work=1)
        out = yield from api.malloc(self.num_threads * 64,
                                    callsite="parsec.py:bitstream")
        chunk = blocks * self.WORDS_PER_MACROBLOCK * 4
        for _ in range(self.FRAMES):
            args = [(frame + i * chunk, blocks, out + i * 64)
                    for i in range(self.num_threads)]
            yield from self.fork_join(api, self._worker, args)
            # Serial: stitch slice outputs into the bitstream.
            yield from api.loop(out, 64, self.num_threads, read=True,
                                write=False, work=2)

    def _worker(self, api, slice_addr, blocks, out):
        for mb in range(blocks):
            yield from api.loop(
                slice_addr + mb * self.WORDS_PER_MACROBLOCK * 4, 4,
                self.WORDS_PER_MACROBLOCK, write=False,
                work=self.WORK_PER_MACROBLOCK)
            yield from api.update(out)
