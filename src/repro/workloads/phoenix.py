"""Synthetic Phoenix benchmarks (Ranger et al., HPCA'07).

Each workload reproduces the *sharing pattern* of its namesake; see the
class docstrings for what that pattern is and where it comes from in the
paper. ``linear_regression`` is the paper's main case study (Figures 5
and 6, Table 1); ``histogram``, ``reverse_index`` and ``word_count`` are
the Figure 7 trio whose false sharing is real but negligible.
"""

from __future__ import annotations

from repro.workloads.base import GroundTruth, Workload, register

# The callsite string the paper's Figure 5 prints for the tid_args
# allocation; kept verbatim as the allocation label.
LINEAR_REGRESSION_CALLSITE = "linear_regression-pthread.c:139"
STREAMCLUSTER_CALLSITE = "streamcluster.cpp:985"


@register
class LinearRegression(Workload):
    """Phoenix linear_regression: the paper's flagship false sharing bug.

    The main thread allocates one ``tid_args`` array with a 56-byte
    ``lreg_args`` struct per thread (Figure 6); every thread then updates
    its own struct's accumulators (SX, SXX, SY, SYY, SXY) once per input
    point. Adjacent structs share cache lines, so the accumulator updates
    of neighbouring threads falsely share — fixing it by padding the
    struct to a full line yields 5.7x (paper Section 4.2.1).
    """

    name = "linear_regression"
    suite = "phoenix"
    ground_truth = GroundTruth.false_sharing(
        objects=(LINEAR_REGRESSION_CALLSITE,), fix_speedup=5.7,
        note="adjacent 56-byte lreg_args structs share lines (Fig. 6)")

    #: sizeof(lreg_args): pointer + num_elems + 5 accumulators, 7 x 8 bytes.
    STRUCT_SIZE = 56
    #: Padded struct size for the fixed layout (one full cache line).
    STRUCT_SIZE_FIXED = 64
    #: Accumulator fields updated per point: SX, SXX, SY, SYY, SXY.
    FIELDS = 5
    #: Total input points, split across threads. Small on purpose: the
    #: paper itself added "more loop iterations" to make the kernel
    #: dominate, so each thread sweeps its (cached) chunk repeatedly
    #: until it has executed ~ITERS_PER_THREAD kernel iterations.
    TOTAL_POINTS = 256
    ITERS_PER_THREAD = 2400
    WARM_PASSES = 6
    #: Computation cycles per accumulator update (multiply + add).
    FIELD_WORK = 2
    #: Computation cycles per point-coordinate load.
    POINT_WORK = 1

    def __init__(self, num_threads=None, scale=1.0, fixed=False, seed=0):
        super().__init__(num_threads, scale, fixed, seed)
        self.points_per_thread = max(1, self.TOTAL_POINTS // self.num_threads)
        iters = self.scaled(self.ITERS_PER_THREAD)
        self.repeat = max(1, iters // self.points_per_thread)

    @property
    def struct_stride(self) -> int:
        return self.STRUCT_SIZE_FIXED if self.fixed else self.STRUCT_SIZE

    def main(self, api):
        npts = self.points_per_thread * self.num_threads
        # The input: an array of (x, y) points, read-only in the parallel
        # phase. Initialised and warmed serially — the warm passes are the
        # serial-phase samples Cheetah's AverCycles_nofs comes from.
        points = yield from api.malloc(npts * 8, callsite="phoenix.py:points")
        yield from api.loop(points, 4, npts * 2, read=False, write=True,
                            work=1)
        yield from api.loop(points, 4, npts * 2, read=True, write=False,
                            work=1, repeat=self.WARM_PASSES)

        stride = self.struct_stride
        tid_args = yield from api.malloc(
            self.num_threads * stride, callsite=LINEAR_REGRESSION_CALLSITE)

        args = []
        for index in range(self.num_threads):
            args.append((points + index * self.points_per_thread * 8,
                         tid_args + index * stride,
                         self.points_per_thread, self.repeat))
        yield from self.fork_join(api, self._worker, args)

        # Serial reduction: one read per thread's struct.
        yield from api.loop(tid_args, stride, self.num_threads,
                            read=True, write=False, work=2)

    def _worker(self, api, points, struct, count, repeat):
        """linear_regression_pthread: per point, update 5 accumulators."""
        fields = self.FIELDS
        for _ in range(repeat):
            for p in range(count):
                # Load the point's x and y, plus the multiply work.
                yield from api.loop(points + p * 8, 4, 2, write=False,
                                    work=self.POINT_WORK)
                # SX += x; SXX += x*x; SY += y; SYY += y*y; SXY += x*y.
                yield from api.loop(struct, 8, fields, read=True, write=True,
                                    work=self.FIELD_WORK)


@register
class Histogram(Workload):
    """Phoenix histogram: Figure 7 member (negligible false sharing).

    Threads scan private slices of the image and keep private local
    histograms; the only shared writes are occasional bumps of a
    per-thread statistics word, and those words are adjacent — genuine
    false sharing, but touched so rarely that fixing it changes nothing
    measurable (<0.2% on the paper's runs). Cheetah's sampling misses it;
    Predator's full instrumentation reports it (Section 4.2.3).
    """

    name = "histogram"
    suite = "phoenix"
    ground_truth = GroundTruth.false_sharing(
        significant=False, objects=("thread_stats",),
        note="Figure 7: real but negligible; sampling should miss it")

    PIXELS_PER_THREAD = 12_000
    BLOCK = 64
    BLOCKS_PER_UPDATE = 48  # shared-stat bump roughly every 3K pixels
    WORK_PER_PIXEL = 2

    def setup(self, symbols):
        stride = 64 if self.fixed else 4
        self.stats_addr = symbols.define("thread_stats",
                                         self.num_threads * stride,
                                         align=64)
        self.stats_stride = stride

    def main(self, api):
        pixels = self.scaled(self.PIXELS_PER_THREAD)
        image = yield from api.malloc(self.num_threads * pixels * 4,
                                      callsite="phoenix.py:image")
        # Serial: "read the input file" — initialise and warm the image.
        yield from api.loop(image, 4, min(self.num_threads * pixels, 4096),
                            read=False, write=True, work=1)
        yield from api.loop(image, 4, min(self.num_threads * pixels, 4096),
                            read=True, write=False, work=1)
        args = [(image + i * pixels * 4, pixels,
                 self.stats_addr + i * self.stats_stride)
                for i in range(self.num_threads)]
        yield from self.fork_join(api, self._worker, args)
        # Serial merge of the (private) local histograms.
        yield from api.loop(self.stats_addr, self.stats_stride,
                            self.num_threads, read=True, write=False, work=2)

    def _worker(self, api, chunk, pixels, stat_word):
        blocks = pixels // self.BLOCK
        for block in range(blocks):
            yield from api.loop(chunk + block * self.BLOCK * 4, 4,
                                self.BLOCK, write=False,
                                work=self.WORK_PER_PIXEL)
            if block % self.BLOCKS_PER_UPDATE == 0:
                # The rare falsely-shared write: bump this thread's stat.
                yield from api.update(stat_word)


@register
class ReverseIndex(Workload):
    """Phoenix reverse_index: Figure 7 member (negligible false sharing).

    Threads parse private slices of HTML and build private link lists;
    adjacent per-thread link counters are bumped once per parsed block —
    rare false sharing with negligible impact.
    """

    name = "reverse_index"
    suite = "phoenix"
    ground_truth = GroundTruth.false_sharing(
        significant=False, objects=("link_counts",),
        note="Figure 7: real but negligible; sampling should miss it")

    WORDS_PER_THREAD = 10_000
    BLOCK = 128
    BLOCKS_PER_UPDATE = 6
    WORK_PER_WORD = 3

    def setup(self, symbols):
        stride = 64 if self.fixed else 4
        self.counts_addr = symbols.define("link_counts",
                                          self.num_threads * stride,
                                          align=64)
        self.counts_stride = stride

    def main(self, api):
        words = self.scaled(self.WORDS_PER_THREAD)
        corpus = yield from api.malloc(self.num_threads * words * 4,
                                       callsite="phoenix.py:corpus")
        yield from api.loop(corpus, 4, min(self.num_threads * words, 4096),
                            read=False, write=True, work=1)
        yield from api.loop(corpus, 4, min(self.num_threads * words, 4096),
                            read=True, write=False, work=1)
        args = [(corpus + i * words * 4, words,
                 self.counts_addr + i * self.counts_stride)
                for i in range(self.num_threads)]
        yield from self.fork_join(api, self._worker, args)
        yield from api.loop(self.counts_addr, self.counts_stride,
                            self.num_threads, read=True, write=False, work=2)

    def _worker(self, api, chunk, words, count_word):
        blocks = words // self.BLOCK
        for block in range(blocks):
            yield from api.loop(chunk + block * self.BLOCK * 4, 4,
                                self.BLOCK, write=False,
                                work=self.WORK_PER_WORD)
            if block % self.BLOCKS_PER_UPDATE == 0:
                yield from api.update(count_word)


@register
class WordCount(Workload):
    """Phoenix word_count: Figure 7 member (negligible false sharing).

    Same shape as reverse_index with a heavier per-word hash and its own
    adjacent per-thread totals array.
    """

    name = "word_count"
    suite = "phoenix"
    ground_truth = GroundTruth.false_sharing(
        significant=False, objects=("word_totals",),
        note="Figure 7: real but negligible; sampling should miss it")

    WORDS_PER_THREAD = 8_000
    BLOCK = 96
    BLOCKS_PER_UPDATE = 5
    WORK_PER_WORD = 4

    def setup(self, symbols):
        stride = 64 if self.fixed else 4
        self.totals_addr = symbols.define("word_totals",
                                          self.num_threads * stride,
                                          align=64)
        self.totals_stride = stride

    def main(self, api):
        words = self.scaled(self.WORDS_PER_THREAD)
        text = yield from api.malloc(self.num_threads * words * 4,
                                     callsite="phoenix.py:text")
        yield from api.loop(text, 4, min(self.num_threads * words, 4096),
                            read=False, write=True, work=1)
        yield from api.loop(text, 4, min(self.num_threads * words, 4096),
                            read=True, write=False, work=1)
        args = [(text + i * words * 4, words,
                 self.totals_addr + i * self.totals_stride)
                for i in range(self.num_threads)]
        yield from self.fork_join(api, self._worker, args)
        yield from api.loop(self.totals_addr, self.totals_stride,
                            self.num_threads, read=True, write=False, work=2)

    def _worker(self, api, chunk, words, total_word):
        blocks = words // self.BLOCK
        for block in range(blocks):
            yield from api.loop(chunk + block * self.BLOCK * 4, 4,
                                self.BLOCK, write=False,
                                work=self.WORK_PER_WORD)
            if block % self.BLOCKS_PER_UPDATE == 0:
                yield from api.update(total_word)


@register
class KMeans(Workload):
    """Phoenix kmeans: many short-lived threads (224 in the paper).

    No false sharing; its role in the evaluation is the Figure 4 overhead
    outlier: one fork-join phase per clustering iteration re-creates all
    worker threads, so per-thread PMU setup cost accumulates
    (Section 4.1: "kmeans (with 224 threads in 14 seconds)").
    """

    name = "kmeans"
    suite = "phoenix"
    ground_truth = GroundTruth.none(note="many short-lived threads; Figure 4 overhead outlier")

    ITERATIONS = 14  # 14 x 16 threads = the paper's 224 threads
    POINTS_PER_THREAD = 60
    DIMS = 8
    CLUSTERS = 8
    WORK_PER_DIM = 4

    def setup(self, symbols):
        self.centroids = symbols.define(
            "centroids", self.CLUSTERS * self.DIMS * 4, align=64)

    def main(self, api):
        points_per_thread = self.scaled(self.POINTS_PER_THREAD)
        total_words = self.num_threads * points_per_thread * self.DIMS
        points = yield from api.malloc(total_words * 4,
                                       callsite="phoenix.py:kmeans_points")
        yield from api.loop(points, 4, min(total_words, 4096),
                            read=False, write=True, work=1)
        sums = yield from api.malloc(self.num_threads * 64 * self.CLUSTERS,
                                     callsite="phoenix.py:kmeans_sums")
        chunk_bytes = points_per_thread * self.DIMS * 4
        for _ in range(self.ITERATIONS):
            args = [(points + i * chunk_bytes, points_per_thread,
                     sums + i * 64 * self.CLUSTERS)
                    for i in range(self.num_threads)]
            yield from self.fork_join(api, self._worker, args)
            # Serial: recompute centroids from the per-thread sums.
            yield from api.loop(self.centroids, 4,
                                self.CLUSTERS * self.DIMS,
                                read=True, write=True, work=2)

    def _worker(self, api, chunk, points, private_sums):
        for p in range(points):
            yield from api.loop(chunk + p * self.DIMS * 4, 4, self.DIMS,
                                write=False, work=self.WORK_PER_DIM)
            # Accumulate into this thread's own (line-padded) sums.
            yield from api.loop(private_sums, 4, 2, read=True, write=True,
                                work=1)


@register
class MatrixMultiply(Workload):
    """Phoenix matrix_multiply: disjoint output rows, no false sharing."""

    name = "matrix_multiply"
    suite = "phoenix"
    ground_truth = GroundTruth.none(note="disjoint output rows")

    N = 40  # square matrix dimension

    def __init__(self, num_threads=None, scale=1.0, fixed=False, seed=0):
        super().__init__(num_threads, scale, fixed, seed)
        self.n = max(self.num_threads,
                     int(self.N * (self.scale ** (1.0 / 3.0))))

    def main(self, api):
        n = self.n
        a = yield from api.malloc(n * n * 4, callsite="phoenix.py:matrix_a")
        b = yield from api.malloc(n * n * 4, callsite="phoenix.py:matrix_b")
        c = yield from api.malloc(n * n * 4, callsite="phoenix.py:matrix_c")
        yield from api.loop(a, 4, n * n, read=False, write=True, work=1)
        yield from api.loop(b, 4, n * n, read=False, write=True, work=1)
        args = [(a, b, c, n, start, count)
                for start, count in self.chunks(n, self.num_threads)]
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, a, b, c, n, row_start, rows):
        for row in range(row_start, row_start + rows):
            for col in range(n):
                # c[row][col] = dot(a.row, b.col)
                yield from api.loop(a + row * n * 4, 4, n, write=False,
                                    work=1)
                yield from api.loop(b + col * 4, n * 4, n, write=False,
                                    work=1)
                yield from api.store(c + (row * n + col) * 4)


@register
class PCA(Workload):
    """Phoenix pca: two fork-join phases (means, then covariance)."""

    name = "pca"
    suite = "phoenix"
    ground_truth = GroundTruth.none(note="two fork-join phases, private rows")

    ROWS = 384
    COLS = 48
    WORK_PER_ELEM = 6

    def main(self, api):
        rows = self.scaled(self.ROWS, minimum=self.num_threads)
        cols = self.COLS
        matrix = yield from api.malloc(rows * cols * 4,
                                       callsite="phoenix.py:pca_matrix")
        yield from api.loop(matrix, 4, min(rows * cols, 4096),
                            read=False, write=True, work=1)
        means = yield from api.malloc(rows * 64,
                                      callsite="phoenix.py:pca_means")
        row_chunks = self.chunks(rows, self.num_threads)
        # Phase 1: per-row means.
        args = [(matrix, means, cols, start, count)
                for start, count in row_chunks]
        yield from self.fork_join(api, self._mean_worker, args)
        # Phase 2: covariance accumulation (reads rows + means).
        yield from self.fork_join(api, self._cov_worker, args)

    def _mean_worker(self, api, matrix, means, cols, row_start, rows):
        for row in range(row_start, row_start + rows):
            yield from api.loop(matrix + row * cols * 4, 4, cols,
                                write=False, work=self.WORK_PER_ELEM)
            yield from api.update(means + row * 64)

    def _cov_worker(self, api, matrix, means, cols, row_start, rows):
        for row in range(row_start, row_start + rows):
            yield from api.load(means + row * 64)
            yield from api.loop(matrix + row * cols * 4, 4, cols,
                                write=False, work=self.WORK_PER_ELEM + 2)


@register
class StringMatch(Workload):
    """Phoenix string_match: pure private scanning, no false sharing."""

    name = "string_match"
    suite = "phoenix"
    ground_truth = GroundTruth.none(note="pure private scanning")

    WORDS_PER_THREAD = 9_000
    WORK_PER_WORD = 5

    def setup(self, symbols):
        # The small key set every thread compares against (read-only).
        self.keys_addr = symbols.define("match_keys", 256, align=64)

    def main(self, api):
        words = self.scaled(self.WORDS_PER_THREAD)
        data = yield from api.malloc(self.num_threads * words * 4,
                                     callsite="phoenix.py:match_data")
        yield from api.loop(data, 4, min(self.num_threads * words, 4096),
                            read=False, write=True, work=1)
        yield from api.loop(self.keys_addr, 4, 64, read=False, write=True,
                            work=1)
        results = yield from api.malloc(self.num_threads * 64,
                                        callsite="phoenix.py:match_results")
        args = [(data + i * words * 4, words, results + i * 64)
                for i in range(self.num_threads)]
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, chunk, words, result):
        block = 256
        for start in range(0, words - block + 1, block):
            yield from api.loop(chunk + start * 4, 4, block, write=False,
                                work=self.WORK_PER_WORD)
            yield from api.loop(self.keys_addr, 4, 16, write=False, work=2)
            yield from api.update(result)
