"""Configurable synthetic sharing patterns for stress-testing detectors.

Real benchmarks fix one sharing pattern each; this workload generates any
of the canonical patterns on demand, so tests can sweep the detector
over the whole classification matrix:

- ``false`` — threads write disjoint words of shared lines (the bug
  Cheetah exists to find);
- ``true`` — threads read-modify-write the *same* word (real
  communication: must be classified as true sharing, not reported);
- ``read`` — threads read a common region, nobody writes (no
  invalidations at all);
- ``private`` — each thread on its own cache lines (nothing shared);
- ``inter_object`` — each thread allocates its own tiny object, but a
  shared bump allocator would pack them into common lines (pair with
  :class:`repro.heap.bump.BumpAllocator` to exhibit the bug the custom
  heap prevents).
"""

from __future__ import annotations

from repro.errors import ConfigError
from repro.workloads.base import GroundTruth, Workload, register

PATTERNS = ("false", "true", "read", "private", "inter_object")

#: Ground truth per pattern; instances override the class default so
#: ``workload.ground_truth`` always describes the *configured* pattern.
PATTERN_TRUTH = {
    "false": GroundTruth.false_sharing(
        objects=("synthetic.py:region",), lines=1,
        note="threads write disjoint words of one shared line"),
    "true": GroundTruth.true_sharing(
        objects=("synthetic.py:region",),
        note="every thread read-modify-writes the same word"),
    "read": GroundTruth.none(note="read-only sharing, no invalidations"),
    "private": GroundTruth.none(note="each thread on its own lines"),
    "inter_object": GroundTruth.none(
        note="per-thread tiny objects; the Cheetah heap line-isolates "
             "them (a packing bump allocator would falsely share)"),
}


@register
class SyntheticSharing(Workload):
    """Parametric sharing-pattern generator."""

    name = "synthetic"
    suite = "micro"
    ground_truth = PATTERN_TRUTH["false"]
    default_threads = 8

    ITERATIONS = 800
    WORK_PER_ITER = 3

    def __init__(self, num_threads=None, scale=1.0, fixed=False, seed=0,
                 pattern: str = "false"):
        super().__init__(num_threads, scale, fixed, seed)
        if pattern not in PATTERNS:
            raise ConfigError(
                f"unknown pattern '{pattern}' (choose from {PATTERNS})")
        self.pattern = pattern
        self.ground_truth = PATTERN_TRUTH[pattern]
        self.iterations = self.scaled(self.ITERATIONS)

    def main(self, api):
        pattern = self.pattern
        n = self.num_threads
        if pattern == "inter_object":
            args = [(None,)] * n
        elif pattern == "private" or self.fixed:
            region = yield from api.malloc(n * 64,
                                           callsite="synthetic.py:region")
            args = [(region + i * 64,) for i in range(n)]
        elif pattern in ("false",):
            region = yield from api.malloc(n * 4,
                                           callsite="synthetic.py:region")
            args = [(region + i * 4,) for i in range(n)]
        else:  # "true" and "read": everyone on the same word
            region = yield from api.malloc(64,
                                           callsite="synthetic.py:region")
            args = [(region,)] * n
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, addr):
        if addr is None:
            # inter_object: allocate our own tiny object.
            addr = yield from api.malloc(8, callsite="synthetic.py:tiny")
        write = self.pattern != "read"
        yield from api.loop(addr, 0, 1, read=True, write=write,
                            work=self.WORK_PER_ITER,
                            repeat=self.iterations)
