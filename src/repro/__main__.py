"""Entry point for ``python -m repro``.

Exit codes: 0 success, 1 failure (including any
:class:`~repro.errors.ReproError` raised by a command), 2 usage error
(argparse). In-process callers of :func:`repro.cli.main` see the
exception itself; only the process entry point flattens it to a code.
"""

import sys

from repro.cli import main
from repro.errors import ReproError

if __name__ == "__main__":
    try:
        sys.exit(main())
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        sys.exit(1)
