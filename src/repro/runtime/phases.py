"""Fork-join phase tracking (paper Section 3.3, Figure 3).

Cheetah's application-level assessment only supports the fork-join model:
an application alternates between *serial* phases (only the main thread
runs) and *parallel* phases (the main thread has live children). The paper
defines the boundaries precisely:

- an application leaves a serial phase when a thread is created;
- it leaves a parallel phase when all child threads created in the current
  phase have been joined.

The tracker records the cycle-time boundaries of every phase (measured on
the main thread's clock, the RDTSC analogue), which threads ran in each
parallel phase, and whether the program actually conformed to the
fork-join model (spawns from non-main threads, i.e. nested parallelism,
clear the ``fork_join_ok`` flag — Cheetah "tracks the creations and joins
of threads in order to verify whether an application belongs to the
fork-join model").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

MAIN_TID = 0


@dataclass
class Phase:
    """One serial or parallel phase of the execution."""

    kind: str  # "serial" or "parallel"
    start: int
    end: Optional[int] = None
    threads: Set[int] = field(default_factory=set)

    @property
    def length(self) -> int:
        """Phase length in cycles (0 until the phase is closed)."""
        if self.end is None:
            return 0
        return self.end - self.start

    @property
    def is_parallel(self) -> bool:
        return self.kind == "parallel"


class PhaseTracker:
    """Observes spawn/join events and maintains the phase timeline."""

    def __init__(self) -> None:
        self.phases: List[Phase] = [Phase(kind="serial", start=0)]
        self.fork_join_ok = True
        self._live_children: Set[int] = set()
        self._closed = False

    @property
    def current(self) -> Phase:
        return self.phases[-1]

    @property
    def in_parallel_phase(self) -> bool:
        """True while at least one child of the current phase is live.

        Cheetah gates its detailed (word-level) recording on this flag so
        that initialisation by the main thread before the parallel phase
        is not misclassified as sharing (Section 2.4).
        """
        return self.current.is_parallel

    def on_spawn(self, parent_tid: int, child_tid: int, now: int) -> None:
        """A thread was created at main-thread time ``now``."""
        if parent_tid != MAIN_TID:
            # Nested parallelism: outside the supported fork-join model.
            self.fork_join_ok = False
            self.current.threads.add(child_tid)
            self._live_children.add(child_tid)
            return
        if not self.current.is_parallel:
            self._switch(kind="parallel", now=now)
        self.current.threads.add(child_tid)
        self._live_children.add(child_tid)

    def on_join(self, parent_tid: int, child_tid: int, now: int) -> None:
        """A join of ``child_tid`` completed at main-thread time ``now``."""
        self._live_children.discard(child_tid)
        if (parent_tid == MAIN_TID and self.current.is_parallel
                and not self._live_children):
            self._switch(kind="serial", now=now)

    def finish(self, now: int) -> None:
        """Close the trailing phase at program end."""
        if self._closed:
            return
        self.current.end = now
        self._closed = True

    def snapshot(self, now: int) -> "PhaseTracker":
        """A copy of the tracker as if the program ended at ``now``.

        Used for mid-run reporting ("interrupted by the user"): the open
        trailing phase is closed at ``now`` in the copy, while this
        tracker keeps running.
        """
        clone = PhaseTracker()
        clone.phases = [Phase(kind=p.kind, start=p.start, end=p.end,
                              threads=set(p.threads))
                        for p in self.phases]
        clone.fork_join_ok = self.fork_join_ok
        clone._live_children = set(self._live_children)
        if clone.phases and clone.phases[-1].end is None:
            clone.phases[-1].end = now
        clone._closed = True
        return clone

    def _switch(self, kind: str, now: int) -> None:
        self.current.end = now
        self.phases.append(Phase(kind=kind, start=now))

    # -- queries used by assessment and tests ------------------------------

    def serial_phases(self) -> List[Phase]:
        return [p for p in self.phases if not p.is_parallel]

    def parallel_phases(self) -> List[Phase]:
        return [p for p in self.phases if p.is_parallel]

    def phase_of_thread(self, tid: int) -> Optional[Phase]:
        """The parallel phase in which ``tid`` ran, if any."""
        for phase in self.phases:
            if phase.is_parallel and tid in phase.threads:
                return phase
        return None

    def total_time(self) -> int:
        """Sum of all closed phase lengths (== program runtime)."""
        return sum(p.length for p in self.phases if p.end is not None)
