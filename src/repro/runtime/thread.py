"""Simulated threads and the API workload code programs against.

A simulated thread is a Python generator created from a *thread function*
``fn(api, *args)``. The function expresses its behaviour by yielding
operations (see :mod:`repro.sim.ops`), usually through the helper
generators on :class:`ThreadAPI`::

    def worker(api, base, n):
        yield from api.loop(base, stride=4, count=n, work=2)

    def main(api):
        buf = yield from api.malloc(4096)
        tids = []
        for i in range(8):
            tid = yield from api.spawn(worker, buf + i * 512, 128)
            tids.append(tid)
        yield from api.join_all(tids)

Per-thread clocks are the simulation's RDTSC: a thread's runtime is
``end_clock - start_clock``, and the program's runtime is the main
thread's final clock.
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Generator, Iterable, List, Optional

from repro.errors import SimulationError
from repro.sim.ops import (
    Barrier, Fence, Free, Join, Load, LoopAccess, Malloc, Spawn, Store, Work,
)


class ThreadState(enum.Enum):
    RUNNABLE = "runnable"
    BLOCKED = "blocked"
    FINISHED = "finished"


class _BurstState:
    """Progress through an in-flight :class:`LoopAccess` op.

    The op's fields are copied into slots once at creation: the engine's
    fused burst loop re-reads them on every scheduling quantum, and many
    workloads yield very short loops, so per-quantum attribute traffic on
    the op would otherwise dominate.

    Zero-trip loops (``count == 0`` or ``repeat == 0``) are no-ops the
    engine filters out before constructing burst state, so an in-flight
    burst always has strictly positive extents — the burst kernels'
    remaining-iteration arithmetic depends on it, and a negative value
    sneaking through the engine's truthiness guard would silently run
    the loop the wrong way. Enforced here, at the single choke point.
    """

    __slots__ = ("op", "index", "repeat", "base", "stride", "count",
                 "repeat_total", "work", "read", "write")

    def __init__(self, op: LoopAccess):
        if op.count <= 0 or op.repeat <= 0:
            raise SimulationError(
                "burst state requires positive extents: "
                f"count={op.count}, repeat={op.repeat} "
                f"(zero-trip loops must be dropped before dispatch)")
        self.op = op
        self.index = 0
        self.repeat = 0
        self.base = op.base
        self.stride = op.stride
        self.count = op.count
        self.repeat_total = op.repeat
        self.work = op.work
        # One iteration issues a read, then a write (when enabled).
        self.read = op.read
        self.write = op.write


class SimThread:
    """One simulated thread: generator + clock + statistics.

    Attributes:
        tid: thread id (main thread is 0).
        core: core the thread is bound to (``tid % num_cores``, matching
            the paper's thread-to-core binding).
        clock: current time in cycles; advances as the thread executes.
        start_clock / end_clock: lifetime bounds (RDTSC analogues).
        instructions: instructions retired (1 per access, ``n`` per
            ``Work(n)``); this is what the PMU's sampling period counts.
        mem_accesses / mem_cycles: ground-truth totals over every access
            (the profiler never sees these — it only sees samples).
    """

    __slots__ = (
        "tid", "name", "core", "parent_tid", "generator", "clock",
        "start_clock", "end_clock", "state", "instructions",
        "mem_accesses", "mem_cycles", "burst", "pending_value",
        "join_waiters", "barrier_waits",
    )

    def __init__(self, tid: int, core: int,
                 generator: Generator[Any, Any, None],
                 start_clock: int, parent_tid: Optional[int] = None,
                 name: Optional[str] = None):
        self.tid = tid
        self.name = name or f"thread-{tid}"
        self.core = core
        self.parent_tid = parent_tid
        self.generator = generator
        self.clock = start_clock
        self.start_clock = start_clock
        self.end_clock: Optional[int] = None
        self.state = ThreadState.RUNNABLE
        self.instructions = 0
        self.mem_accesses = 0
        self.mem_cycles = 0
        self.burst: Optional[_BurstState] = None
        self.pending_value: Any = None
        self.join_waiters: List["SimThread"] = []
        #: Cycles spent waiting at barriers (synchronisation wait time —
        #: what the paper's assessment does not model).
        self.barrier_waits = 0

    @property
    def runtime(self) -> int:
        """Thread lifetime in cycles (meaningful once finished)."""
        end = self.end_clock if self.end_clock is not None else self.clock
        return end - self.start_clock

    def __repr__(self) -> str:
        return (f"SimThread(tid={self.tid}, core={self.core}, "
                f"state={self.state.value}, clock={self.clock})")


class ThreadAPI:
    """Helper generators for writing thread functions.

    All methods are sub-generators meant to be used with ``yield from``;
    they yield exactly one op and return its result. The object is
    stateless and shared by every thread.
    """

    def load(self, addr: int, size: int = 4):
        """Read ``size`` bytes at ``addr``."""
        return (yield Load(addr, size))

    def store(self, addr: int, size: int = 4):
        """Write ``size`` bytes at ``addr``."""
        return (yield Store(addr, size))

    def update(self, addr: int, size: int = 4):
        """Read-modify-write ``addr`` (a load followed by a store)."""
        yield Load(addr, size)
        yield Store(addr, size)

    def work(self, cycles: int):
        """Spin for ``cycles`` cycles of pure computation."""
        if cycles > 0:
            yield Work(cycles)

    def loop(self, base: int, stride: int, count: int, *,
             read: bool = True, write: bool = True,
             work: int = 0, repeat: int = 1):
        """Strided access loop; see :class:`repro.sim.ops.LoopAccess`."""
        yield LoopAccess(base, stride, count, read=read, write=write,
                         work=work, repeat=repeat)

    def spawn(self, fn: Callable[..., Any], *args: Any,
              name: Optional[str] = None):
        """Create a thread running ``fn(api, *args)``; returns its tid."""
        return (yield Spawn(fn, tuple(args), name))

    def join(self, tid: int):
        """Wait for thread ``tid`` to finish."""
        yield Join(tid)

    def join_all(self, tids: Iterable[int]):
        """Join every thread in ``tids`` in order."""
        for tid in tids:
            yield Join(tid)

    def malloc(self, size: int, callsite: Optional[str] = None):
        """Allocate ``size`` bytes; returns the address.

        When ``callsite`` is omitted the engine captures the workload's
        Python source location, mirroring Cheetah's callsite interception.
        """
        return (yield Malloc(size, callsite))

    def free(self, addr: int):
        """Release a heap allocation."""
        yield Free(addr)

    def fence(self):
        """Synchronisation marker (visible to observers, no timing)."""
        yield Fence()

    def barrier(self, key, parties: int):
        """Wait at barrier ``key`` until ``parties`` threads arrive."""
        yield Barrier(key, parties)
