"""Simulated threading runtime.

Stands in for pthreads: threads are Python generators driven by the
discrete-event engine, spawn/join follow the fork-join model the paper's
assessment assumes, and per-thread clocks play the role of RDTSC
timestamps.
"""

from repro.runtime.phases import Phase, PhaseTracker
from repro.runtime.thread import SimThread, ThreadAPI, ThreadState

__all__ = ["Phase", "PhaseTracker", "SimThread", "ThreadAPI", "ThreadState"]
