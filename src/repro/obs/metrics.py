"""Counters, gauges and histograms with a Prometheus text exporter.

The registry is deliberately small and dependency-free: metric values
are plain ints/floats updated from the simulator's hooks, every
iteration order is deterministic (insertion order for series, sorted
names for export), and a snapshot is a plain nested dict suitable for
JSON. Metrics carry at most one label dimension (``outcome``, ``kind``,
…) — enough for everything the simulator reports while keeping the
exporter and snapshot formats trivially predictable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import ConfigError

Number = Union[int, float]

#: Default histogram bucket upper bounds (powers of two; +Inf implied).
DEFAULT_BUCKETS: Tuple[Number, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)


def _format_value(value: Number) -> str:
    """Prometheus sample value: ints stay ints, floats use repr."""
    if isinstance(value, bool):  # pragma: no cover - never stored
        return str(int(value))
    if isinstance(value, int):
        return str(value)
    return repr(value)


class _Metric:
    """Shared name/help/label plumbing for counters and gauges."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "",
                 label: Optional[str] = None):
        self.name = name
        self.help = help
        self.label = label
        # Unlabelled metrics store their value under the None key.
        self._values: Dict[Optional[str], Number] = {}

    def value(self, label_value: Optional[str] = None) -> Number:
        """Current value of one series (0 when never touched)."""
        self._check_label(label_value)
        return self._values.get(label_value, 0)

    def series(self) -> Dict[Optional[str], Number]:
        """All series, in first-touch order."""
        return dict(self._values)

    def _check_label(self, label_value: Optional[str]) -> None:
        if (label_value is None) != (self.label is None):
            raise ConfigError(
                f"metric {self.name!r} "
                + (f"requires a {self.label!r} label value"
                   if self.label else "takes no label value"))

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}" if self.help else
                 f"# HELP {self.name} (no help)",
                 f"# TYPE {self.name} {self.kind}"]
        for label_value in sorted(self._values, key=lambda v: (v is None, v)):
            value = self._values[label_value]
            if label_value is None:
                lines.append(f"{self.name} {_format_value(value)}")
            else:
                lines.append(f'{self.name}{{{self.label}="{label_value}"}} '
                             f"{_format_value(value)}")
        return lines


class Counter(_Metric):
    """Monotonically increasing count."""

    kind = "counter"

    def inc(self, amount: Number = 1,
            label_value: Optional[str] = None) -> None:
        if amount < 0:
            raise ConfigError(
                f"counter {self.name!r} cannot decrease (inc {amount})")
        self._check_label(label_value)
        self._values[label_value] = self._values.get(label_value, 0) + amount

    def total(self) -> Number:
        """Sum over all series."""
        return sum(self._values.values())


class Gauge(_Metric):
    """Point-in-time value; ``set`` overwrites, ``add`` accumulates."""

    kind = "gauge"

    def set(self, value: Number, label_value: Optional[str] = None) -> None:
        self._check_label(label_value)
        self._values[label_value] = value

    def add(self, amount: Number, label_value: Optional[str] = None) -> None:
        self._check_label(label_value)
        self._values[label_value] = self._values.get(label_value, 0) + amount


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics)."""

    kind = "histogram"

    def __init__(self, name: str, help: str = "",
                 buckets: Sequence[Number] = DEFAULT_BUCKETS):
        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
            raise ConfigError(
                f"histogram {name!r} buckets must be strictly increasing")
        self.name = name
        self.help = help
        self.label = None
        self.bounds: Tuple[Number, ...] = tuple(buckets)
        self._counts: List[int] = [0] * len(self.bounds)
        self.count = 0
        self.sum: Number = 0

    def observe(self, value: Number) -> None:
        self.count += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self._counts[index] += 1

    def bucket_counts(self) -> List[Tuple[str, int]]:
        """Cumulative ``(le, count)`` pairs, ``+Inf`` last."""
        out = [(str(bound), self._counts[index])
               for index, bound in enumerate(self.bounds)]
        out.append(("+Inf", self.count))
        return out

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {self.help}" if self.help else
                 f"# HELP {self.name} (no help)",
                 f"# TYPE {self.name} histogram"]
        for le, count in self.bucket_counts():
            lines.append(f'{self.name}_bucket{{le="{le}"}} {count}')
        lines.append(f"{self.name}_sum {_format_value(self.sum)}")
        lines.append(f"{self.name}_count {self.count}")
        return lines


class MetricsRegistry:
    """Get-or-create registry of named metrics.

    Re-requesting a name returns the existing metric (so hooks and
    finalization can share counters) but re-requesting it as a different
    type or with a different label raises :class:`ConfigError` — silent
    type confusion would corrupt the exported families.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[_Metric, Histogram]] = {}

    def _get_or_create(self, factory, name: str, help: str, **kwargs):
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, factory):
                raise ConfigError(
                    f"metric {name!r} already registered as "
                    f"{existing.kind}")
            label = kwargs.get("label")
            if getattr(existing, "label", None) != label and "label" in kwargs:
                raise ConfigError(
                    f"metric {name!r} already registered with label "
                    f"{existing.label!r}")
            return existing
        metric = factory(name, help, **kwargs)
        self._metrics[name] = metric
        return metric

    def counter(self, name: str, help: str = "",
                label: Optional[str] = None) -> Counter:
        return self._get_or_create(Counter, name, help, label=label)

    def gauge(self, name: str, help: str = "",
              label: Optional[str] = None) -> Gauge:
        return self._get_or_create(Gauge, name, help, label=label)

    def histogram(self, name: str, help: str = "",
                  buckets: Sequence[Number] = DEFAULT_BUCKETS) -> Histogram:
        existing = self._metrics.get(name)
        if existing is not None:
            if not isinstance(existing, Histogram):
                raise ConfigError(
                    f"metric {name!r} already registered as {existing.kind}")
            return existing
        metric = Histogram(name, help, buckets)
        self._metrics[name] = metric
        return metric

    def get(self, name: str):
        """The registered metric, or None."""
        return self._metrics.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    # -- export --------------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition format, families sorted by name."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain nested dict of every metric (JSON-ready, deterministic).

        Counters/gauges without a label map to their value; labelled ones
        map to a ``{label_value: value}`` dict. Histograms map to
        ``{"buckets": [[le, n], ...], "sum": s, "count": c}``.
        """
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Histogram):
                histograms[name] = {
                    "buckets": [[le, n] for le, n in metric.bucket_counts()],
                    "sum": metric.sum,
                    "count": metric.count,
                }
                continue
            series = metric.series()
            if metric.label is None:
                value: object = series.get(None, 0)
            else:
                value = {lv: series[lv] for lv in sorted(series)}
            (counters if isinstance(metric, Counter) else gauges)[name] = value
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms}


def _merge_scalar_family(into: Dict[str, object],
                         family: Dict[str, object]) -> None:
    for name, value in family.items():
        if isinstance(value, dict):
            bucket = into.setdefault(name, {})
            assert isinstance(bucket, dict)
            for label_value, amount in value.items():
                bucket[label_value] = bucket.get(label_value, 0) + amount
        else:
            into[name] = into.get(name, 0) + value  # type: ignore[operator]


def aggregate_snapshots(snapshots: Sequence[Dict[str, Dict[str, object]]]
                        ) -> Dict[str, Dict[str, object]]:
    """Sum per-run :meth:`MetricsRegistry.snapshot` dicts element-wise.

    Used by drivers that trigger many runs (``repro experiment
    --metrics``) to report fleet-wide totals. Counters and gauges are
    summed per series (an aggregated gauge therefore reads as a total
    over runs, not a point-in-time value); histograms require identical
    bucket bounds and sum their counts.
    """
    counters: Dict[str, object] = {}
    gauges: Dict[str, object] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for snap in snapshots:
        _merge_scalar_family(counters, snap.get("counters", {}))
        _merge_scalar_family(gauges, snap.get("gauges", {}))
        for name, hist in snap.get("histograms", {}).items():
            assert isinstance(hist, dict)
            existing = histograms.get(name)
            if existing is None:
                histograms[name] = {
                    "buckets": [list(pair) for pair in hist["buckets"]],
                    "sum": hist["sum"],
                    "count": hist["count"],
                }
                continue
            bounds = [le for le, _ in existing["buckets"]]
            if bounds != [le for le, _ in hist["buckets"]]:
                raise ConfigError(
                    f"histogram {name!r} bucket bounds differ across "
                    f"snapshots; cannot aggregate")
            for pair, (_, count) in zip(existing["buckets"], hist["buckets"]):
                pair[1] += count
            existing["sum"] += hist["sum"]
            existing["count"] += hist["count"]
    return {"counters": counters, "gauges": gauges, "histograms": histograms}
