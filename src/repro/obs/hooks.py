"""Wiring between the simulator and the tracing/metrics collectors.

:class:`Observability` is the one object the rest of the codebase talks
to. It is wired onto an :class:`~repro.sim.engine.Engine` before the run
(``obs.wire(engine)``, or ``Engine(obs=...)``); the engine, machine, PMU
and detector then invoke the ``on_*`` hook methods below at the
interesting moments of the simulation. Every hook call site is guarded
by a plain ``obs is not None`` check, and the machine's per-access
instrumentation is installed by *rebinding* ``machine.access_tuple`` on
the instance (the same pattern the coherence sanitizer uses), so a run
without observability executes exactly the unmodified hot path.

Timestamps passed into hooks are simulated clocks — the resulting trace
and metrics are fully deterministic for a fixed seed.

The module also keeps a small stack of *default* configurations
(:func:`push_default` / :func:`current_default`): experiment drivers
push an :class:`~repro.obs.config.ObsConfig` there so every
``run_workload`` call underneath them gets its own per-run
:class:`Observability` without threading the parameter through each
experiment's signature.
"""

from __future__ import annotations

import contextvars
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ObsError
from repro.obs.config import ObsConfig
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import (CORE_TRACK_BASE, DETECTOR_TRACK, PHASE_TRACK,
                              Tracer)

# Coherence outcome kinds that represent cross-core transitions; these
# get instant events on the per-core tracks when trace_coherence is on.
_COHERENCE_EVENT_KINDS = frozenset(
    ("coherence_read", "coherence_write", "upgrade"))


class Observability:
    """Per-run tracing + metrics state and the hook methods that feed it.

    One instance observes one run: :meth:`wire` attaches it to exactly
    one engine, and :meth:`finalize` (called by ``run_workload`` or
    manually after ``engine.run``) folds the run's ground-truth totals
    into the metrics registry and emits the phase spans.
    """

    def __init__(self, config: Optional[ObsConfig] = None):
        self.config = config or ObsConfig()
        self.tracer: Optional[Tracer] = (
            Tracer(self.config.max_events) if self.config.trace else None)
        self.registry: Optional[MetricsRegistry] = (
            MetricsRegistry() if self.config.metrics else None)
        self._engine: Optional[Any] = None
        self._finalized = False
        reg = self.registry
        if reg is not None:
            # Hot-path metrics are pre-created so hooks never pay the
            # registry lookup.
            self._acc_counter = reg.counter(
                "machine_accesses_total",
                "Simulated memory accesses by coherence outcome.",
                label="outcome")
            self._cyc_counter = reg.counter(
                "machine_cycles_total",
                "Machine-charged cycles by coherence outcome.",
                label="outcome")
            self._quanta_counter = reg.counter(
                "engine_quanta_total", "Scheduling quanta executed.")
            self._spawn_counter = reg.counter(
                "engine_threads_spawned_total",
                "Simulated threads created (including main).")
            self._barrier_rounds = reg.counter(
                "engine_barrier_rounds_total", "Barrier rounds released.")
            self._barrier_wait = reg.counter(
                "engine_barrier_wait_cycles_total",
                "Cycles threads spent waiting at barriers.")
            self._handler_hist = reg.histogram(
                "pmu_handler_cost_cycles",
                "Cycles charged per delivered memory sample.")
            self._promotions = reg.counter(
                "detector_promotions_total",
                "Lines promoted to detailed tracking.")
            self._streaming_findings = reg.counter(
                "streaming_findings_total",
                "Incremental findings emitted by the windowed detector.")

    # -- wiring ----------------------------------------------------------------

    def wire(self, engine: Any) -> "Observability":
        """Attach to ``engine`` (once); installs every needed hook."""
        if self._engine is not None:
            raise ObsError(
                "Observability instance is already wired to an engine; "
                "use a fresh instance per run")
        self._engine = engine
        engine.obs = self
        if self.registry is not None or (
                self.tracer is not None and (self.config.trace_coherence
                                             or self.config.trace_accesses)):
            self._attach_machine(engine.machine)
        if engine.pmu is not None:
            engine.pmu.obs = self
        if self.tracer is not None:
            self.tracer.name_track(PHASE_TRACK, "phases")
        return self

    def _attach_machine(self, machine: Any) -> None:
        """Wrap the machine's per-access entry point.

        The wrapper composes with whatever ``access_tuple`` is currently
        bound on the instance — in sanitizer mode that is the checked
        entry point, so shadowing still sees every access. The engine
        routes bursts through its general loop whenever ``machine.obs``
        is set, so the fused kernel cannot bypass this wrapper.
        """
        machine.obs = self
        inner = machine.access_tuple
        config = self.config
        registry = self.registry
        acc = self._acc_counter if registry is not None else None
        cyc = self._cyc_counter if registry is not None else None
        tracer = self.tracer
        coh = tracer is not None and config.trace_coherence
        raw = tracer is not None and config.trace_accesses

        def observed_access_tuple(core: int, addr: int, is_write: bool,
                                  now: int = 0):
            latency, kind, line = inner(core, addr, is_write, now)
            if acc is not None:
                acc.inc(1, kind)
                cyc.inc(latency, kind)
            if coh and kind in _COHERENCE_EVENT_KINDS:
                track = CORE_TRACK_BASE + core
                tracer.name_track(track, f"core {core}")
                tracer.instant(kind, "coherence", now, track, {
                    "addr": addr, "line": line, "write": is_write,
                    "latency": latency})
            if raw:
                track = CORE_TRACK_BASE + core
                tracer.name_track(track, f"core {core}")
                tracer.instant("access", "memory", now, track, {
                    "addr": addr, "kind": kind, "write": is_write,
                    "latency": latency})
            return latency, kind, line

        machine.access_tuple = observed_access_tuple

    # -- engine hooks ----------------------------------------------------------

    def note_quantum(self, thread: Any, start_clock: int) -> None:
        """One scheduling quantum of ``thread`` ended (clock advanced to
        ``thread.clock`` from ``start_clock``)."""
        if self.registry is not None:
            self._quanta_counter.inc()
        tracer = self.tracer
        if tracer is not None and self.config.trace_quanta:
            dur = thread.clock - start_clock
            if dur > 0:
                tracer.span("quantum", "engine", start_clock, dur,
                            thread.tid)

    def on_thread_spawn(self, thread: Any) -> None:
        """A thread (including main) was created and armed."""
        if self.registry is not None:
            self._spawn_counter.inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.name_track(thread.tid, f"{thread.name}/{thread.tid}")
            tracer.instant("thread_spawn", "thread", thread.start_clock,
                           thread.tid, {"core": thread.core,
                                        "parent": thread.parent_tid})

    def on_thread_finish(self, thread: Any) -> None:
        """A thread finished; emits its lifetime span."""
        tracer = self.tracer
        if tracer is not None and thread.end_clock is not None:
            tracer.span(thread.name, "thread", thread.start_clock,
                        thread.end_clock - thread.start_clock, thread.tid,
                        {"accesses": thread.mem_accesses,
                         "instructions": thread.instructions})

    def on_join(self, parent: Any, child: Any) -> None:
        """``parent`` completed a join on ``child``."""
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("join", "sync", parent.clock, parent.tid,
                           {"child": child.tid})

    def on_barrier_release(self, key: Any,
                           arrivals: List[Tuple[int, int]],
                           release: int, cost: int) -> None:
        """A barrier round released.

        ``arrivals`` holds each waiter's ``(tid, arrival clock)``;
        ``release`` is the common clock all waiters resume at and
        ``cost`` the barrier's crossing cost (the wait charged to a
        thread is ``release - cost - arrival``, matching the engine's
        ``barrier_waits`` accounting).
        """
        if self.registry is not None:
            self._barrier_rounds.inc()
            self._barrier_wait.inc(
                sum(release - cost - arrival for _, arrival in arrivals))
        tracer = self.tracer
        if tracer is not None:
            for tid, arrival in arrivals:
                tracer.span("barrier_wait", "sync", arrival,
                            release - arrival, tid, {"barrier": str(key)})

    # -- PMU hooks -------------------------------------------------------------

    def on_pmu_sample(self, tid: int, core: int, addr: int, is_write: bool,
                      cost: int, now: int) -> None:
        """The PMU delivered a memory sample to its handler."""
        if self.registry is not None:
            self._handler_hist.observe(cost)
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("pmu_sample", "pmu", now, tid,
                           {"addr": addr, "write": is_write, "cost": cost})

    def on_pmu_trap(self, tid: int, fires: int, cost: int,
                    now: Optional[int]) -> None:
        """PMU fires landed on non-memory instructions (trap only)."""
        tracer = self.tracer
        if tracer is not None and now is not None:
            tracer.instant("pmu_trap", "pmu", now, tid,
                           {"fires": fires, "cost": cost})

    # -- detector hooks --------------------------------------------------------

    def on_detector_promotion(self, line: int, writes: int,
                              sample: Any) -> None:
        """The detector promoted ``line`` to detailed tracking."""
        if self.registry is not None:
            self._promotions.inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant("detector_promotion", "detector",
                           sample.timestamp, sample.tid,
                           {"line": line, "writes": writes})

    def on_streaming_finding(self, finding: Any) -> None:
        """The windowed detector emitted an incremental mid-run finding."""
        if self.registry is not None:
            self._streaming_findings.inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.name_track(DETECTOR_TRACK, "detector")
            tracer.instant("streaming_finding", "detector",
                           finding.timestamp, DETECTOR_TRACK,
                           finding.to_dict())

    # -- finalization ----------------------------------------------------------

    def finalize(self, result: Any, pmu: Optional[Any] = None,
                 profiler: Optional[Any] = None) -> "Observability":
        """Fold the run's ground-truth totals in; idempotent.

        Ground-truth counters (total accesses, invalidations, PMU
        overhead decomposition, detector table occupancy) are taken from
        the finished run's own state rather than accumulated per event,
        so they are exact regardless of which live hooks were enabled.
        """
        if self._finalized:
            return self
        self._finalized = True
        tracer = self.tracer
        if tracer is not None:
            for phase in result.phases.phases:
                end = phase.end if phase.end is not None else result.runtime
                if end > phase.start:
                    tracer.span(phase.kind, "phase", phase.start,
                                end - phase.start, PHASE_TRACK)
        reg = self.registry
        if reg is None:
            return self

        reg.gauge("sim_runtime_cycles",
                  "Main-thread runtime of the run.").set(result.runtime)
        reg.gauge("sim_steps", "Simulation steps executed.").set(result.steps)
        reg.counter("sim_accesses_total",
                    "Ground-truth memory accesses (all threads)."
                    ).inc(result.total_accesses)
        reg.counter("sim_instructions_total",
                    "Ground-truth instructions retired (all threads)."
                    ).inc(result.total_instructions)

        directory = result.machine.directory
        reg.counter("coherence_invalidations_total",
                    "Ground-truth cache-line invalidations."
                    ).inc(directory.total_invalidations())
        per_line = reg.histogram(
            "coherence_invalidations_per_line",
            "Distribution of invalidation counts over invalidated lines.")
        invalidated = directory.lines_with_invalidations(1)
        for line in sorted(invalidated):
            per_line.observe(invalidated[line])

        phase_cycles = reg.counter(
            "phase_cycles_total", "Cycles spent per phase kind.",
            label="kind")
        for kind in ("serial", "parallel"):
            total = sum(
                (p.end if p.end is not None else result.runtime) - p.start
                for p in result.phases.phases if p.kind == kind)
            phase_cycles.inc(total, kind)

        if pmu is not None:
            traps = pmu.samples_fired - pmu.memory_samples
            samples = reg.counter(
                "pmu_samples_total", "PMU fires by delivery kind.",
                label="kind")
            samples.inc(pmu.memory_samples, "memory")
            samples.inc(traps, "trap")
            overhead = reg.counter(
                "pmu_overhead_cycles_total",
                "PMU-charged cycles by source.", label="source")
            overhead.inc(
                pmu.threads_set_up * pmu.config.thread_setup_cost, "setup")
            overhead.inc(
                pmu.memory_samples * pmu.config.handler_cost, "handler")
            overhead.inc(traps * pmu.config.trap_cost, "trap")
            reg.gauge("pmu_threads_armed",
                      "Threads the PMU was armed for.").set(pmu.threads_set_up)
            if getattr(pmu, "period_changes", 0):
                reg.counter(
                    "pmu_period_changes_total",
                    "Live sampling-period retunes during the run."
                    ).inc(pmu.period_changes)
                reg.gauge("pmu_period_current",
                          "Sampling period at end of run.").set(pmu.period)
            if getattr(pmu, "rotation_skipped", 0):
                reg.counter(
                    "pmu_rotation_skipped_total",
                    "Memory fires discarded by the rotation schedule."
                    ).inc(pmu.rotation_skipped)
            controller = getattr(pmu, "controller", None)
            if controller is not None:
                reg.gauge("pmu_hot_lines",
                          "Hot lines at the last adaptive evaluation."
                          ).set(controller.hot_lines)

        detector = getattr(profiler, "detector", None)
        if detector is not None:
            reg.gauge("detector_tracked_lines",
                      "Lines with at least one sampled write."
                      ).set(len(detector._line_writes))
            reg.gauge("detector_detailed_lines",
                      "Lines under detailed (word-level) tracking."
                      ).set(len(detector._detailed))
            reg.gauge("detector_pending_lines",
                      "Lines buffering pre-promotion samples."
                      ).set(len(detector._pending))
            det_samples = reg.counter(
                "detector_samples_total",
                "Samples seen vs recorded in word detail.", label="stage")
            det_samples.inc(detector.samples_seen, "seen")
            det_samples.inc(detector.samples_recorded, "recorded")
            det_samples.inc(getattr(detector, "samples_dropped", 0),
                            "dropped")
            findings = getattr(detector, "findings", None)
            if findings is not None:
                reg.gauge("streaming_window_lines",
                          "Window entries live at end of run."
                          ).set(len(detector._window))
                reg.counter("streaming_windows_expired_total",
                            "Window entries expired or evicted."
                            ).inc(detector.windows_expired)

        if tracer is not None:
            reg.gauge("obs_trace_events_retained",
                      "Trace events retained under the cap."
                      ).set(len(tracer.events))
            reg.gauge("obs_trace_events_dropped",
                      "Trace events dropped at the cap.").set(tracer.dropped)
        return self

    # -- convenience exports ---------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Any]:
        """The registry snapshot, or ``{}`` when metrics are disabled."""
        return self.registry.snapshot() if self.registry is not None else {}

    def render_prometheus(self) -> str:
        return (self.registry.render_prometheus()
                if self.registry is not None else "")

    def write_trace(self, path: str, format: str = "chrome") -> None:
        """Write the trace to ``path`` (``"chrome"`` or ``"jsonl"``)."""
        if self.tracer is None:
            raise ObsError("tracing is disabled for this Observability")
        if format == "chrome":
            self.tracer.write_chrome(path)
        elif format == "jsonl":
            self.tracer.write_jsonl(path)
        else:
            raise ObsError(f"unknown trace format {format!r} "
                           "(expected 'chrome' or 'jsonl')")


# -- ambient default configuration ---------------------------------------------


class DefaultObs:
    """Handle returned by :func:`push_default`.

    Holds the ambient :class:`ObsConfig` plus every per-run
    :class:`Observability` built from it while it was active, so a driver
    (e.g. ``repro experiment --metrics``) can aggregate across the runs
    it triggered without threading a parameter through each experiment.
    """

    def __init__(self, config: ObsConfig):
        self.config = config
        self.collected: List[Observability] = []

    def new_observability(self) -> Observability:
        obs = Observability(self.config)
        self.collected.append(obs)
        return obs


_DEFAULT_STACK: List[DefaultObs] = []


def push_default(config: ObsConfig) -> DefaultObs:
    """Make ``config`` the ambient default for nested ``run_workload``
    calls (each run still builds its own :class:`Observability`)."""
    handle = DefaultObs(config)
    _DEFAULT_STACK.append(handle)
    return handle


def pop_default() -> DefaultObs:
    if not _DEFAULT_STACK:
        raise ObsError("pop_default called with no default ObsConfig pushed")
    return _DEFAULT_STACK.pop()


def current_default() -> Optional[DefaultObs]:
    return _DEFAULT_STACK[-1] if _DEFAULT_STACK else None


# -- context-local streaming-finding listeners -----------------------------------
#
# The serve daemon needs mid-run findings from the windowed detector
# *without* attaching an Observability to the run — observed runs bypass
# the result cache by design, and the daemon's whole point is cache-first
# execution. Listeners live in a contextvars stack instead: per-thread
# (each daemon worker runs jobs inline in its own thread), zero-cost when
# empty, and invisible to the run's content-addressed identity. The
# windowed detector calls every active listener alongside its obs hook.

_FINDING_LISTENERS: contextvars.ContextVar[Tuple[Callable[[Any], None], ...]] \
    = contextvars.ContextVar("repro_finding_listeners", default=())


def current_finding_listeners() -> Tuple[Callable[[Any], None], ...]:
    """The active listeners for this thread/context (usually empty)."""
    return _FINDING_LISTENERS.get()


def push_finding_listener(
        listener: Callable[[Any], None]) -> contextvars.Token:
    """Register ``listener`` for streaming findings in this context.

    Returns the token for :func:`pop_finding_listener`. Each listener is
    called with the live :class:`~repro.core.streaming.StreamingFinding`
    the moment the windowed detector emits it.
    """
    if not callable(listener):
        raise ObsError(
            f"push_finding_listener expects a callable, got "
            f"{type(listener).__name__}")
    stack = _FINDING_LISTENERS.get()
    return _FINDING_LISTENERS.set(stack + (listener,))


def pop_finding_listener(token: contextvars.Token) -> None:
    _FINDING_LISTENERS.reset(token)


@contextmanager
def finding_listener(
        listener: Callable[[Any], None]) -> Iterator[Callable[[Any], None]]:
    """``with finding_listener(fn): ...`` — scoped registration."""
    token = push_finding_listener(listener)
    try:
        yield listener
    finally:
        pop_finding_listener(token)
