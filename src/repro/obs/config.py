"""Observability configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import ConfigBase
from repro.errors import ConfigError


@dataclass(frozen=True)
class ObsConfig(ConfigBase):
    """What the observability layer records.

    Attributes:
        trace: emit typed span/event records (see
            :class:`~repro.obs.tracer.Tracer`).
        metrics: maintain the :class:`~repro.obs.metrics.MetricsRegistry`
            counters/gauges/histograms.
        trace_quanta: one span per engine scheduling quantum. The densest
            scheduler-level signal; subject to ``max_events``.
        trace_coherence: one instant event per coherence transition
            (read/write misses and upgrades), on per-core tracks.
        trace_accesses: one instant event per simulated memory access.
            Off by default — it dwarfs every other record type.
        max_events: hard cap on retained trace records. Records beyond
            the cap are counted (``Tracer.dropped``) but not stored, so
            tracing memory stays bounded on long runs.

    Enabling either ``trace`` (with coherence events) or ``metrics``
    routes the run through the per-access instrumented path — bounded
    overhead, bit-identical simulated outputs. With both off the hot
    path is untouched.
    """

    trace: bool = True
    metrics: bool = True
    trace_quanta: bool = True
    trace_coherence: bool = True
    trace_accesses: bool = False
    max_events: int = 200_000

    def __post_init__(self) -> None:
        if self.max_events < 0:
            raise ConfigError(
                f"max_events must be >= 0, got {self.max_events}")
