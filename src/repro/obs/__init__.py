"""Observability for the simulator itself: tracing, metrics, hooks.

Cheetah's pitch is observability with bounded overhead; this package
applies the same discipline to the reproduction. A run wired with an
:class:`Observability` produces a deterministic, simulated-clock trace
(JSONL or Chrome ``trace_event`` for Perfetto) and a registry of
counters/gauges/histograms with a Prometheus text exporter — and with
observability off, the hot path is byte-for-byte the uninstrumented one.

See ``docs/observability.md`` for the trace schema and metric names.
"""

from repro.obs.config import ObsConfig
from repro.obs.hooks import (
    DefaultObs,
    Observability,
    current_default,
    current_finding_listeners,
    finding_listener,
    pop_default,
    pop_finding_listener,
    push_default,
    push_finding_listener,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    aggregate_snapshots,
)
from repro.obs.tracer import (
    CORE_TRACK_BASE,
    PHASE_TRACK,
    PID,
    TraceEvent,
    Tracer,
)

__all__ = [
    "CORE_TRACK_BASE",
    "Counter",
    "DefaultObs",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ObsConfig",
    "Observability",
    "PHASE_TRACK",
    "PID",
    "TraceEvent",
    "Tracer",
    "aggregate_snapshots",
    "current_default",
    "current_finding_listeners",
    "finding_listener",
    "pop_default",
    "pop_finding_listener",
    "push_default",
    "push_finding_listener",
]
