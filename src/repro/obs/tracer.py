"""Typed trace records with Chrome ``trace_event`` and JSONL exporters.

Every record's timestamp is a *simulated* clock value (cycles), never
wall time, so identical runs produce byte-identical traces. The Chrome
export maps cycles onto the format's microsecond field one-to-one; in
Perfetto / ``chrome://tracing`` the time axis therefore reads directly
in cycles.

Track layout (the ``tid`` field of the Chrome format):

- simulated threads appear on their own tid;
- per-core tracks (coherence transitions, raw accesses) sit at
  ``CORE_TRACK_BASE + core``;
- serial/parallel phase spans sit on the single ``PHASE_TRACK``.

The :class:`Tracer` also implements the engine's
:class:`~repro.sim.engine.Observer` protocol, so it can be passed
directly as ``Engine(observer=tracer)`` — every access then increments
a per-thread count and each thread start names its track. The richer
records (quanta, barriers, PMU interrupts, detector promotions) come
from :class:`~repro.obs.hooks.Observability`, which drives the emit
methods below from the engine's scheduler-level hooks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.sim.engine import Observer

#: All simulated processes share one Chrome pid.
PID = 1
#: Chrome-track offset for per-core event tracks.
CORE_TRACK_BASE = 100_000
#: Chrome track carrying serial/parallel phase spans.
PHASE_TRACK = 99_999
#: Chrome track carrying streaming-detector finding events.
DETECTOR_TRACK = 99_998


@dataclass(frozen=True)
class TraceEvent:
    """One trace record.

    ``ph`` follows the Chrome ``trace_event`` phase codes used here:
    ``"X"`` complete span (``ts`` + ``dur``), ``"i"`` instant.
    ``track`` is the Chrome ``tid`` (see module docstring for layout).
    """

    name: str
    cat: str
    ph: str
    ts: int
    track: int
    dur: Optional[int] = None
    args: Optional[Dict[str, object]] = None

    def to_chrome(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "name": self.name, "cat": self.cat, "ph": self.ph,
            "ts": self.ts, "pid": PID, "tid": self.track,
        }
        if self.ph == "X":
            record["dur"] = self.dur if self.dur is not None else 0
        if self.ph == "i":
            record["s"] = "t"  # instant scoped to its track
        if self.args:
            record["args"] = dict(self.args)
        return record


class Tracer(Observer):
    """Collects :class:`TraceEvent` records with a hard retention cap.

    Records past ``max_events`` are counted in :attr:`dropped` instead of
    stored, so long runs cannot grow memory without bound. Thread-name
    metadata lives outside the cap (a handful of entries, and dropping
    them would unlabel every surviving event on that track).
    """

    #: No per-access cost: tracing must not perturb simulated timing.
    cost_per_access: int = 0

    def __init__(self, max_events: int = 200_000):
        self.max_events = max_events
        self.events: List[TraceEvent] = []
        self.dropped = 0
        #: track id -> display name ("M"/thread_name metadata records).
        self.track_names: Dict[int, str] = {}
        #: per-tid access counts maintained by the Observer protocol.
        self.access_counts: Dict[int, int] = {}

    # -- Observer protocol ---------------------------------------------------

    def on_access(self, tid: int, core: int, addr: int, is_write: bool,
                  latency: int, size: int, line: int) -> Optional[int]:
        """Count the access against ``tid``; charges no extra cycles."""
        self.access_counts[tid] = self.access_counts.get(tid, 0) + 1
        return None

    def on_thread_start(self, tid: int) -> None:
        """Name the thread's track as soon as the engine creates it."""
        self.track_names.setdefault(tid, f"thread {tid}")

    # -- emission ------------------------------------------------------------

    def name_track(self, track: int, name: str) -> None:
        """Attach a display name to a track (idempotent, first name wins)."""
        self.track_names.setdefault(track, name)

    def emit(self, event: TraceEvent) -> bool:
        """Retain ``event`` unless the cap is reached; returns retained?"""
        if len(self.events) >= self.max_events:
            self.dropped += 1
            return False
        self.events.append(event)
        return True

    def span(self, name: str, cat: str, ts: int, dur: int, track: int,
             args: Optional[Dict[str, object]] = None) -> bool:
        return self.emit(TraceEvent(name=name, cat=cat, ph="X", ts=ts,
                                    dur=dur, track=track, args=args))

    def instant(self, name: str, cat: str, ts: int, track: int,
                args: Optional[Dict[str, object]] = None) -> bool:
        return self.emit(TraceEvent(name=name, cat=cat, ph="i", ts=ts,
                                    track=track, args=args))

    # -- export --------------------------------------------------------------

    def to_chrome(self) -> Dict[str, object]:
        """Chrome ``trace_event`` JSON object (Perfetto-loadable).

        Metadata records come first (by track id), then events in emission
        order — the format does not require sorting, and emission order is
        itself deterministic.
        """
        records: List[Dict[str, object]] = []
        for track in sorted(self.track_names):
            records.append({
                "name": "thread_name", "ph": "M", "pid": PID,
                "tid": track, "args": {"name": self.track_names[track]},
            })
        records.extend(event.to_chrome() for event in self.events)
        trace: Dict[str, object] = {
            "traceEvents": records,
            "displayTimeUnit": "ns",
        }
        if self.dropped:
            trace["metadata"] = {"dropped_events": self.dropped}
        return trace

    def to_jsonl(self) -> str:
        """One JSON object per line; byte-identical across identical runs.

        Line 1 is a ``{"record": "meta", ...}`` header carrying the track
        names and drop count; each following line is one event with a
        ``"record"`` discriminator and every field spelled out.
        """
        lines = [json.dumps({
            "record": "meta",
            "dropped": self.dropped,
            "tracks": {str(t): self.track_names[t]
                       for t in sorted(self.track_names)},
        }, sort_keys=True)]
        for event in self.events:
            lines.append(json.dumps({
                "record": "event",
                "name": event.name,
                "cat": event.cat,
                "ph": event.ph,
                "ts": event.ts,
                "track": event.track,
                "dur": event.dur,
                "args": event.args or {},
            }, sort_keys=True))
        return "\n".join(lines) + "\n"

    def write_chrome(self, path: str) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome(), fh, indent=1, sort_keys=True)
            fh.write("\n")

    def write_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())
