"""Seeded-mutation self-test: prove the sanitizer actually catches bugs.

A safety net that has never caught anything proves nothing. This module
deliberately plants two classic bugs and asserts the validation net
detects each on a small two-thread false-sharing program:

- :class:`BrokenFastPathMachine` corrupts the machine's private-HIT
  *write* predicate — a write to a shared line is mispriced as a HIT and
  performs no invalidation, silently erasing the coherence traffic false
  sharing is made of. The sanitizer must refuse it on the first such
  write.
- :class:`BrokenVectorKernelMachine` corrupts the vector kernel's batch
  planner the same way (claiming writes to shared lines are privately
  batchable). The checked vector kernel re-proves every planned access
  through the sanitizer-wrapped machine entry point and must reject the
  first span the broken planner over-claims.

``repro validate`` runs both every time, so a regression that weakens
either net is itself caught.
"""

from __future__ import annotations

from repro.errors import SimulationError, ValidationError
from repro.heap.allocator import CheetahAllocator
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig

_MASK64 = 0xFFFFFFFFFFFFFFFF


class BrokenFastPathMachine(Machine):
    """Machine with one corrupted private-HIT predicate.

    The honest fast path treats a *write* as a private hit only when the
    accessing core is the dirty owner. This mutant accepts any holder —
    so a write to a line held shared by several cores is mispriced as a
    HIT and, worse, performs no invalidation. Exactly the kind of silent
    divergence a hand-replicated hot path can grow; the sanitizer must
    refuse it on the first such write.
    """

    def access_tuple(self, core: int, addr: int, is_write: bool,
                     now: int = 0):
        line = addr >> self._line_shift
        if self._fast_private:
            state = self._dirlines.get(line)
            # BUG (deliberate): ``core in state.holders`` is the *read*
            # predicate; for writes it must be ``state.dirty_owner == core``.
            if state is not None and core in state.holders:
                latency = self._hit_cost
                if self._jitter:
                    jstate = self._jitter_state
                    jstate ^= (jstate << 13) & _MASK64
                    jstate ^= jstate >> 7
                    jstate ^= (jstate << 17) & _MASK64
                    self._jitter_state = jstate
                    latency += jstate % (self._jitter + 1)
                self.total_accesses += 1
                self.total_cycles += latency
                return latency, "hit", line
        return Machine.access_tuple(self, core, addr, is_write, now)

    # The sanitizer must validate the *mutated* fast path.
    _raw_access_tuple = access_tuple


class BrokenVectorKernelMachine(Machine):
    """Machine with a corrupted batch-planner predicate.

    The vector kernel batches a span only when every line it touches
    satisfies :meth:`Machine.line_is_private`. This mutant answers the
    *read* predicate for writes — any holder qualifies — so the planner
    happily batches writes to lines other cores still hold, skipping
    their invalidations wholesale. Under ``kernel="vector"`` with the
    sanitizer attached the checked kernel re-validates each planned
    access and must raise on the first span the plan over-claims.
    """

    def line_is_private(self, core: int, state, is_write: bool) -> bool:
        # BUG (deliberate): ignores ``is_write`` — for writes the only
        # batchable state is ``state.dirty_owner == core``.
        return core in state.holders


def _false_sharing_program(api):
    """Two threads read-then-write disjoint words of one shared line."""

    def worker(api, addr):
        yield from api.loop(addr, 0, 1, read=True, write=True, repeat=40)

    buf = yield from api.malloc(64, callsite="mutation.c:1")
    first = yield from api.spawn(worker, buf)
    second = yield from api.spawn(worker, buf + 4)
    yield from api.join(first)
    yield from api.join(second)


def _shared_then_written_program(api):
    """Both threads read a line (becoming shared holders), then write it.

    At write-burst plan time each core holds the line but is not its
    dirty owner — exactly the state where the honest write predicate
    (``dirty_owner == core``) and the corrupted one (``core in
    holders``) disagree. A read+write loop would not expose it: the
    write inside each iteration takes ownership before the next plan.
    """

    def worker(api, addr):
        yield from api.loop(addr, 0, 1, read=True, write=False, repeat=20)
        yield from api.loop(addr, 0, 1, read=False, write=True, repeat=20)

    buf = yield from api.malloc(64, callsite="mutation.c:2")
    first = yield from api.spawn(worker, buf)
    second = yield from api.spawn(worker, buf + 4)
    yield from api.join(first)
    yield from api.join(second)


def _run(machine: Machine, program=_false_sharing_program) -> None:
    config = machine.config
    engine = Engine(config=config, machine=machine,
                    allocator=CheetahAllocator(
                        line_size=config.cache_line_size))
    engine.run(program)


def run_mutation_selftest() -> ValidationError:
    """Run the self-test; returns the ValidationError the sanitizer raised.

    Raises :class:`SimulationError` if either leg fails: the honest
    machine must pass clean, and the mutated machine must be caught.
    """
    config = MachineConfig(num_cores=4)
    _run(Machine(config, check=True))  # honest machine: must be clean
    try:
        _run(BrokenFastPathMachine(config, check=True))
    except ValidationError as caught:
        return caught
    raise SimulationError(
        "sanitizer self-test failed: the deliberately corrupted "
        "fast-path write predicate went undetected")


def run_vector_mutation_selftest() -> ValidationError:
    """Prove the checked vector kernel catches a corrupted batch planner.

    Runs the false-sharing program under ``kernel="vector"`` with the
    sanitizer attached (which selects the checked vector kernel): the
    honest machine must pass clean, and
    :class:`BrokenVectorKernelMachine` — whose planner claims writes to
    shared lines are privately batchable — must raise
    :class:`ValidationError` on the first over-claimed access. Returns
    the caught error; raises :class:`SimulationError` if either leg
    misbehaves.
    """
    config = MachineConfig(num_cores=4, kernel="vector")
    # Honest planner: must be clean on both programs.
    _run(Machine(config, check=True))
    _run(Machine(config, check=True), _shared_then_written_program)
    try:
        _run(BrokenVectorKernelMachine(config, check=True),
             _shared_then_written_program)
    except ValidationError as caught:
        return caught
    raise SimulationError(
        "vector-kernel self-test failed: the deliberately corrupted "
        "batch planner went undetected")
