"""Seeded-mutation self-test: prove the sanitizer actually catches bugs.

A safety net that has never caught anything proves nothing. This module
deliberately plants the classic fast-path bug — treating a write to a
*shared* line as a private hit, which silently erases the invalidation
traffic false sharing is made of — and asserts the sanitizer detects it
on a small two-thread false-sharing program. ``repro validate`` runs
this every time, so a regression that weakens the sanitizer is itself
caught.
"""

from __future__ import annotations

from repro.errors import SimulationError, ValidationError
from repro.heap.allocator import CheetahAllocator
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig

_MASK64 = 0xFFFFFFFFFFFFFFFF


class BrokenFastPathMachine(Machine):
    """Machine with one corrupted private-HIT predicate.

    The honest fast path treats a *write* as a private hit only when the
    accessing core is the dirty owner. This mutant accepts any holder —
    so a write to a line held shared by several cores is mispriced as a
    HIT and, worse, performs no invalidation. Exactly the kind of silent
    divergence a hand-replicated hot path can grow; the sanitizer must
    refuse it on the first such write.
    """

    def access_tuple(self, core: int, addr: int, is_write: bool,
                     now: int = 0):
        line = addr >> self._line_shift
        if self._fast_private:
            state = self._dirlines.get(line)
            # BUG (deliberate): ``core in state.holders`` is the *read*
            # predicate; for writes it must be ``state.dirty_owner == core``.
            if state is not None and core in state.holders:
                latency = self._hit_cost
                if self._jitter:
                    jstate = self._jitter_state
                    jstate ^= (jstate << 13) & _MASK64
                    jstate ^= jstate >> 7
                    jstate ^= (jstate << 17) & _MASK64
                    self._jitter_state = jstate
                    latency += jstate % (self._jitter + 1)
                self.total_accesses += 1
                self.total_cycles += latency
                return latency, "hit", line
        return Machine.access_tuple(self, core, addr, is_write, now)

    # The sanitizer must validate the *mutated* fast path.
    _raw_access_tuple = access_tuple


def _false_sharing_program(api):
    """Two threads read-then-write disjoint words of one shared line."""

    def worker(api, addr):
        yield from api.loop(addr, 0, 1, read=True, write=True, repeat=40)

    buf = yield from api.malloc(64, callsite="mutation.c:1")
    first = yield from api.spawn(worker, buf)
    second = yield from api.spawn(worker, buf + 4)
    yield from api.join(first)
    yield from api.join(second)


def _run(machine: Machine) -> None:
    config = machine.config
    engine = Engine(config=config, machine=machine,
                    allocator=CheetahAllocator(
                        line_size=config.cache_line_size))
    engine.run(_false_sharing_program)


def run_mutation_selftest() -> ValidationError:
    """Run the self-test; returns the ValidationError the sanitizer raised.

    Raises :class:`SimulationError` if either leg fails: the honest
    machine must pass clean, and the mutated machine must be caught.
    """
    config = MachineConfig(num_cores=4)
    _run(Machine(config, check=True))  # honest machine: must be clean
    try:
        _run(BrokenFastPathMachine(config, check=True))
    except ValidationError as caught:
        return caught
    raise SimulationError(
        "sanitizer self-test failed: the deliberately corrupted "
        "fast-path write predicate went undetected")
