"""``repro validate``: run the whole correctness net in one command.

Four stages, each independently reportable:

1. **invariant suite** — real workloads re-run under the sanitizer
   (``Machine(check=True)``), shadowing every access against the
   reference MESI oracle;
2. **differential fuzzer** — seeded random programs diffed across the
   fused/observed/sanitized execution paths (see
   :mod:`repro.sim.check.fuzz`);
3. **parallel equivalence** — a serial experiment run compared row for
   row against the same experiment fanned over worker processes
   (``repro experiment ... --jobs N`` must be an implementation detail,
   never a result change);
4. **mutation self-test** — a deliberately corrupted fast-path predicate
   must be caught by the sanitizer, proving the net actually holds.

Triage: a fuzzer divergence prints its program seed; re-run just that
program with ``repro validate --seed <seed> --iterations 1`` (add
``--smoke`` to skip the slower stages while iterating).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.errors import ValidationError
from repro.sim.check import fuzz as fuzz_mod
from repro.sim.check.mutation import (
    run_mutation_selftest, run_vector_mutation_selftest,
)

#: (workload, threads, scale) triples for the sanitized-workload stage.
SMOKE_WORKLOADS = (
    ("histogram", 4, 0.1),
)
FULL_WORKLOADS = (
    ("histogram", 4, 0.25),
    ("linear_regression", 8, 0.25),
    ("streamcluster", 4, 0.25),
)

DEFAULT_SEED = 0xD1FF
SMOKE_ITERATIONS = 4
FULL_ITERATIONS = 24


def run_invariant_suite(smoke: bool = False, echo=print) -> List[str]:
    """Sanitized workload runs; returns failure descriptions (empty = ok)."""
    from repro.run import run_workload
    from repro.workloads import get_workload

    failures = []
    for name, threads, scale in (SMOKE_WORKLOADS if smoke else FULL_WORKLOADS):
        cls = get_workload(name)
        try:
            outcome = run_workload(cls(num_threads=threads, scale=scale),
                                   check=True)
        except ValidationError as error:
            failures.append(f"{name}: {error}")
            echo(f"  {name:<20} FAIL [{error.invariant}]")
            continue
        sanitizer = outcome.result.machine.sanitizer
        echo(f"  {name:<20} ok "
             f"({sanitizer.accesses_checked:,} accesses shadowed)")
    return failures


def run_fuzzer(seed: int, iterations: int, echo=print) -> List[dict]:
    """Differential fuzzer over ``iterations`` seeded programs."""
    failures = fuzz_mod.fuzz(seed, iterations)
    for failure in failures:
        echo(f"  seed {failure['seed']}: "
             f"{' vs '.join(failure['variants'])} diverged: "
             f"{failure['delta']}")
    if not failures:
        echo(f"  {iterations} programs (seeds {seed}..{seed + iterations - 1})"
             " bit-identical across all execution paths")
    return failures


def run_parallel_equivalence(echo=print) -> List[str]:
    """Serial vs. --jobs 2 experiment runners must produce equal rows."""
    from repro.experiments import scaling
    from repro.experiments.parallel import run_scaling

    serial = scaling.run(scale=0.1, thread_counts=(2, 4))
    fanned = run_scaling(scale=0.1, thread_counts=(2, 4), jobs=2)
    failures = []
    for left, right in zip(serial.rows, fanned.rows):
        if left != right:
            failures.append(f"scaling row diverged: {left!r} != {right!r}")
    if len(serial.rows) != len(fanned.rows):
        failures.append("scaling row counts differ between serial and "
                        f"--jobs 2: {len(serial.rows)} != {len(fanned.rows)}")
    echo("  scaling serial == scaling --jobs 2" if not failures
         else f"  {len(failures)} row(s) diverged")
    return failures


def run_selftest(echo=print) -> List[str]:
    """Both planted mutations must be caught: the corrupted fast-path
    write predicate (sanitizer) and the corrupted vector batch planner
    (checked vector kernel)."""
    failures = []
    try:
        caught = run_mutation_selftest()
    except Exception as error:  # SimulationError or an unexpected leak
        echo(f"  FAIL: {error}")
        failures.append(str(error))
    else:
        echo(f"  corrupted write predicate caught [{caught.invariant}]")
    try:
        caught = run_vector_mutation_selftest()
    except Exception as error:
        echo(f"  FAIL: {error}")
        failures.append(str(error))
    else:
        echo(f"  corrupted batch planner caught [{caught.invariant}]")
    return failures


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-validate",
        description="Coherence sanitizer invariant suite + differential "
                    "fuzzer + mutation self-test.")
    parser.add_argument("--smoke", action="store_true",
                        help="short CI variant: fewer workloads and fuzz "
                             "programs, skip the parallel-equivalence stage")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help="base seed for the differential fuzzer "
                             "(re-run a reported divergence with --seed N "
                             "--iterations 1)")
    parser.add_argument("--iterations", type=int, default=None,
                        help="fuzz program count (default: "
                             f"{FULL_ITERATIONS}, smoke: {SMOKE_ITERATIONS})")
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    iterations = args.iterations
    if iterations is None:
        iterations = SMOKE_ITERATIONS if args.smoke else FULL_ITERATIONS

    failures: List = []
    print("[1/4] invariant suite (sanitized workload runs)")
    failures += run_invariant_suite(smoke=args.smoke)
    print("[2/4] differential fuzzer")
    failures += run_fuzzer(args.seed, iterations)
    if args.smoke:
        print("[3/4] parallel equivalence: skipped (--smoke)")
    else:
        print("[3/4] parallel equivalence (serial vs --jobs 2)")
        failures += run_parallel_equivalence()
    print("[4/4] seeded-mutation self-test")
    failures += run_selftest()

    if failures:
        print(f"\nvalidate: {len(failures)} failure(s)", file=sys.stderr)
        return 1
    print("\nvalidate: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
