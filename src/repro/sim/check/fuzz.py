"""Differential fuzzer: random op programs, bit-identical outputs.

PR 2's commit message claims the fused burst kernel, the observed burst
loop and the sanitizer-free fast paths are all semantically identical.
This module turns that claim into a property test: generate a random —
but fully seeded, so exactly reproducible — multi-threaded op program,
run it through every execution path, and assert the run *fingerprints*
(runtime, per-thread clocks/counters, machine totals, per-line
invalidations, PMU fire counts) are equal bit for bit.

Programs are plain JSON-able dicts ("specs"), so a failing program can
be checked into ``tests/data/fuzz_corpus.json`` as a permanent
regression, and a divergence can be triaged by re-running a single seed:

    repro validate --seed 12345 --iterations 1

Execution paths diffed per spec:

- ``fast``            — fused burst kernel (no observer, no sanitizer);
- ``observed``        — general per-access loop, via a zero-cost observer;
- ``checked``         — sanitizer mode (``Machine(check=True)``), which
                        must be behaviour-preserving, not just clean;
- ``vector``          — the array-batched kernel (:mod:`repro.sim.kernel`),
                        batching provably-HIT spans with slow-path escapes;
- ``vector-checked``  — the vector planner re-proved per access under the
                        sanitizer (every planned access must be the HIT
                        the planner claimed);
- ``pmu-*``           — the same set with a PMU attached, exercising the
                        kernels' inlined sampling countdowns.

Specs may carry a ``checkpoints`` list of cycle numbers; the fired
``(cycle, now)`` pairs join the fingerprint, pinning quantum boundaries
(a batched span must escape at a checkpoint-bounded limit exactly where
the scalar loop would).
"""

from __future__ import annotations

import json
import random
from pathlib import Path
from typing import Dict, List, Optional

from repro.heap.allocator import CheetahAllocator
from repro.pmu.sampler import PMU, PMUConfig
from repro.sim.engine import Engine, Observer
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig

_BUFFER_SIZES = (64, 128, 256, 512, 1024, 4096)
_STRIDES = (0, 4, 8, 16, 64)


class _NullObserver(Observer):
    """Zero-cost observer: forces the engine onto the general per-access
    path without perturbing a single output."""

    cost_per_access = 0

    def on_access(self, tid, core, addr, is_write, latency, size, line):
        return None


# -- program generation ------------------------------------------------------

def generate_spec(seed: int) -> Dict:
    """One random program spec, fully determined by ``seed``.

    The shape is chosen to exercise the paths that diverge in practice:
    tight same-line read/write loops (false sharing, fast-path writes),
    disjoint strided sweeps (prefetcher), pure work batches (PMU
    countdown), mixed single accesses, and optional barrier-separated
    phases (blocking/waking interleavings).
    """
    rng = random.Random(seed)
    num_workers = rng.randint(2, 5)
    num_phases = rng.randint(1, 3)
    buffers = [rng.choice(_BUFFER_SIZES)
               for _ in range(rng.randint(1, 3))]

    def one_op() -> List:
        roll = rng.random()
        buf = rng.randrange(len(buffers))
        offset = rng.randrange(0, buffers[buf], 4)
        if roll < 0.55:
            stride = rng.choice(_STRIDES)
            count = rng.randint(1, 48)
            # Keep the sweep inside the buffer so objects stay distinct.
            if stride:
                count = min(count, max(1, (buffers[buf] - offset) // stride))
            read = rng.random() < 0.8
            write = rng.random() < 0.7 or not read
            return ["loop", buf, offset, stride, count, read, write,
                    rng.choice((0, 0, 3, 11)), rng.randint(1, 12)]
        if roll < 0.7:
            return ["load", buf, offset]
        if roll < 0.85:
            return ["store", buf, offset]
        if roll < 0.95:
            return ["update", buf, offset]
        return ["work", rng.randint(1, 400)]

    workers = [
        [[one_op() for _ in range(rng.randint(1, 4))]
         for _ in range(num_phases)]
        for _ in range(num_workers)
    ]
    spec = {
        "seed": seed,
        "num_cores": rng.choice((2, 4, 8, 48)),
        "jitter": rng.choice((0, 1, 2, 3)),
        "jitter_seed": rng.randrange(1, 2 ** 32),
        "transfer_window": rng.choice((0, 0, 40)),
        "init_buffers": rng.random() < 0.5,
        "barrier_phases": rng.random() < 0.5,
        "pmu_period": rng.choice((16, 32, 64, 128)),
        "buffers": buffers,
        "workers": workers,
    }
    # Drawn last so adding this field left every earlier field of
    # pre-existing seeds unchanged: mid-run checkpoints bound scheduling
    # quanta, forcing the vector kernel to escape a batch exactly where
    # the scalar loop would stop.
    spec["checkpoints"] = (
        sorted(rng.randint(50, 20000) for _ in range(rng.randint(1, 3)))
        if rng.random() < 0.4 else [])
    return spec


# -- program construction ----------------------------------------------------

def _worker(api, bufs, phases, barrier_parties):
    for pidx, ops in enumerate(phases):
        for op in ops:
            kind = op[0]
            if kind == "loop":
                _, buf, off, stride, count, read, write, work, repeat = op
                yield from api.loop(bufs[buf] + off, stride, count,
                                    read=read, write=write, work=work,
                                    repeat=repeat)
            elif kind == "load":
                yield from api.load(bufs[op[1]] + op[2])
            elif kind == "store":
                yield from api.store(bufs[op[1]] + op[2])
            elif kind == "update":
                yield from api.update(bufs[op[1]] + op[2])
            elif kind == "work":
                yield from api.work(op[1])
            else:  # pragma: no cover - corpus corruption guard
                raise ValueError(f"unknown fuzz op {op!r}")
        if barrier_parties:
            yield from api.barrier(("fuzz-phase", pidx), barrier_parties)


def build_main(spec: Dict):
    """Turn a spec into a thread main function for :meth:`Engine.run`."""

    def fuzz_main(api):
        bufs = []
        for index, size in enumerate(spec["buffers"]):
            addr = yield from api.malloc(size, callsite=f"fuzz.c:{index}")
            bufs.append(addr)
        if spec["init_buffers"]:
            # Serial-phase first touch by the main thread.
            for index, size in enumerate(spec["buffers"]):
                yield from api.loop(bufs[index], 8, min(16, size // 8),
                                    read=False, write=True)
        parties = (len(spec["workers"])
                   if spec["barrier_phases"] else 0)
        tids = []
        for phases in spec["workers"]:
            tid = yield from api.spawn(_worker, bufs, phases, parties)
            tids.append(tid)
        yield from api.join_all(tids)

    return fuzz_main


# -- execution + fingerprinting ---------------------------------------------

def fingerprint(result, pmu: Optional[PMU] = None,
                checkpoints: Optional[List] = None) -> Dict:
    """Every deterministic output of a run, as one comparable dict."""
    machine = result.machine
    fp = {
        "runtime": result.runtime,
        "steps": result.steps,
        "threads": {
            t.tid: [t.clock, t.instructions, t.mem_accesses,
                    t.mem_cycles, t.barrier_waits]
            for t in result.threads.values()
        },
        "machine": [machine.total_accesses, machine.total_cycles,
                    machine.prefetch_hits, machine.stall_cycles],
        "invalidations": sorted(
            machine.directory.lines_with_invalidations().items()),
    }
    if pmu is not None:
        fp["pmu"] = [pmu.samples_fired, pmu.memory_samples,
                     sorted(pmu.overhead_by_tid.items())]
    if checkpoints is not None:
        fp["checkpoints"] = checkpoints
    return fp


def run_spec(spec: Dict, *, observed: bool = False, check: bool = False,
             pmu: bool = False, kernel: str = "fused") -> Dict:
    """Run one spec on a fresh machine; returns its fingerprint."""
    config = MachineConfig(num_cores=spec["num_cores"], kernel=kernel)
    machine = Machine(config, timing_jitter=spec["jitter"],
                      jitter_seed=spec["jitter_seed"],
                      transfer_window=spec["transfer_window"],
                      check=check)
    pmu_obj = (PMU(PMUConfig(period=spec["pmu_period"]))
               if pmu else None)
    engine = Engine(config=config, machine=machine, pmu=pmu_obj,
                    observer=_NullObserver() if observed else None,
                    allocator=CheetahAllocator(
                        line_size=config.cache_line_size))
    cycles = spec.get("checkpoints") or ()
    fired: List[List[int]] = []
    for cycle in cycles:
        engine.add_checkpoint(
            cycle, lambda _eng, now, c=cycle: fired.append([c, now]))
    result = engine.run(build_main(spec))
    return fingerprint(result, pmu_obj,
                       checkpoints=fired if cycles else None)


def _first_divergence(base: Dict, other: Dict) -> Optional[str]:
    for key in base:
        if base[key] != other.get(key):
            return (f"{key}: {base[key]!r} != {other.get(key)!r}")
    return None


def diff_spec(spec: Dict) -> Optional[Dict]:
    """Run ``spec`` through every path; None when all fingerprints agree.

    On divergence returns a structured report naming the variant pair
    and the first differing fingerprint key.
    """
    base = run_spec(spec)
    for variant, kwargs in (
            ("observed", {"observed": True}),
            ("checked", {"check": True}),
            ("vector", {"kernel": "vector"}),
            ("vector-checked", {"kernel": "vector", "check": True})):
        delta = _first_divergence(base, run_spec(spec, **kwargs))
        if delta is not None:
            return {"seed": spec["seed"], "variants": ("fast", variant),
                    "delta": delta}
    pmu_base = run_spec(spec, pmu=True)
    for variant, kwargs in (
            ("pmu-observed", {"pmu": True, "observed": True}),
            ("pmu-checked", {"pmu": True, "check": True}),
            ("pmu-vector", {"pmu": True, "kernel": "vector"})):
        delta = _first_divergence(pmu_base, run_spec(spec, **kwargs))
        if delta is not None:
            return {"seed": spec["seed"], "variants": ("pmu-fast", variant),
                    "delta": delta}
    return None


def fuzz(seed: int, iterations: int) -> List[Dict]:
    """Generate and diff ``iterations`` programs; returns divergences."""
    failures = []
    for index in range(iterations):
        spec = generate_spec(seed + index)
        divergence = diff_spec(spec)
        if divergence is not None:
            failures.append(divergence)
    return failures


# -- corpus I/O ---------------------------------------------------------------

def save_corpus(path, seeds) -> None:
    """Write the specs for ``seeds`` as a JSON corpus file."""
    specs = [generate_spec(seed) for seed in seeds]
    Path(path).write_text(json.dumps({"specs": specs}, indent=1) + "\n")


def load_corpus(path) -> List[Dict]:
    return json.loads(Path(path).read_text())["specs"]
