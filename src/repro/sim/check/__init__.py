"""Correctness tooling for the simulator: oracle, sanitizer, fuzzer.

PR 2 doubled simulator throughput by replicating MESI, jitter and
PMU-countdown semantics across three hand-fused hot paths
(``Machine.access_tuple``, ``Engine._run_burst``,
``Engine._run_burst_observed``). Every future perf PR will add more such
kernels, and Cheetah's whole result rests on coherence-accurate
invalidation counts — so this package is the safety net they all run
under:

- :mod:`repro.sim.check.oracle` — a slow, obviously-correct reference
  re-implementation of the MESI transition tables (per-core state
  letters rather than holder sets, so a bug in one representation is
  unlikely to be mirrored in the other);
- :mod:`repro.sim.check.sanitizer` — ``Machine(check=True)`` shadows
  every access against the oracle and asserts the structural invariants
  (single-writer/multiple-reader, holders/dirty-owner/exclusive-map
  consistency, exact latency reconstruction, jitter-stream conservation,
  pin-table and per-thread clock monotonicity, PMU overhead
  conservation), raising a structured
  :class:`~repro.errors.ValidationError` with the offending access
  trace;
- :mod:`repro.sim.check.fuzz` — a seeded differential fuzzer generating
  random op programs and asserting bit-identical run fingerprints
  across the fused vs. observed burst paths, PMU on/off, and
  sanitizer-on vs. sanitizer-off runs;
- :mod:`repro.sim.check.mutation` — the seeded-mutation self-test: a
  machine with one deliberately corrupted fast-path predicate, proving
  the sanitizer actually catches fast-path divergence;
- :mod:`repro.sim.check.validate` — the ``repro validate`` entry point
  tying all of the above together (plus a serial-vs-parallel experiment
  equivalence check).
"""

from repro.sim.check.oracle import ReferenceMESI
from repro.sim.check.sanitizer import CoherenceSanitizer
# NOTE: the fuzz() driver is deliberately not re-exported here — binding
# it would shadow the ``repro.sim.check.fuzz`` submodule attribute on
# this package, breaking ``from repro.sim.check import fuzz`` module
# imports. Use ``repro.sim.check.fuzz.fuzz`` directly.
from repro.sim.check.fuzz import (
    diff_spec,
    fingerprint,
    generate_spec,
    run_spec,
)
from repro.sim.check.mutation import BrokenFastPathMachine, run_mutation_selftest

__all__ = [
    "BrokenFastPathMachine",
    "CoherenceSanitizer",
    "ReferenceMESI",
    "diff_spec",
    "fingerprint",
    "generate_spec",
    "run_mutation_selftest",
    "run_spec",
]
