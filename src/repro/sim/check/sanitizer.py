"""Sanitizer mode: shadow every access against the reference oracle.

``Machine(check=True)`` installs a :class:`CoherenceSanitizer` whose
``checked_access_tuple`` replaces the machine's hot-path entry point.
Each access runs through the machine's real implementation (including
its private-HIT fast path) and is then cross-checked:

1. **outcome** — the returned tag must match the reference MESI oracle
   (PREFETCHED is accepted where the oracle says COLD/SHARED_CLEAN,
   since prefetching is a latency remap, not a coherence transition);
2. **latency** — reconstructed exactly from the tag's base cost, a
   mirrored jitter draw and the pin-table stall; any fast path that
   skipped or double-consumed a jitter draw diverges here
   (jitter-stream conservation);
3. **directory state** — holders, dirty owner, the exclusive-owner
   mirror map and invalidation counts must equal the oracle's, and the
   single-writer/multiple-reader invariant must hold;
4. **pin table** — per-line pin times never move backwards;
5. **clocks** — per-thread clocks are monotone across scheduling quanta
   (checked by the engine via :meth:`note_quantum`);
6. **PMU** — at run end, the countdown is positive for every armed
   thread and the charged overhead satisfies the conservation law
   ``setup*threads + handler*memory_samples + trap*other_fires``.

All failures raise :class:`repro.errors.ValidationError` carrying the
offending access and a trace of the accesses leading up to it.

The sanitizer is strictly opt-in: with ``check=False`` (the default) the
machine's hot path is untouched and the engine pays one pointer
comparison per scheduling quantum.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.errors import ValidationError
from repro.sim import coherence
from repro.sim.check.oracle import ReferenceMESI

_MASK64 = 0xFFFFFFFFFFFFFFFF

#: Accesses kept for the divergence trace.
_TRACE_DEPTH = 16


class CoherenceSanitizer:
    """Shadows one :class:`~repro.sim.machine.Machine` against the oracle."""

    def __init__(self, machine) -> None:
        self.machine = machine
        self.oracle = ReferenceMESI()
        self._trace = deque(maxlen=_TRACE_DEPTH)
        # Mirror of the machine's xorshift jitter stream: advanced once
        # per access, so a path consuming zero or two draws is caught.
        self._mirror_jitter = machine._jitter_state
        self._last_clock: Dict[int, int] = {}
        self.accesses_checked = 0

    # -- the shadowed access path -------------------------------------------

    def checked_access_tuple(self, core: int, addr: int, is_write: bool,
                             now: int = 0):
        """Drop-in for ``Machine.access_tuple`` that validates the access."""
        machine = self.machine
        line = addr >> machine._line_shift
        pinned_before = machine._pin_until.get(line, 0)
        # Previous dirty owner from the *oracle*'s view, captured before
        # its transition: the independent source for reconstructing the
        # NUMA remote-transfer penalty.
        owner_before = self.oracle.dirty_owner(line)

        latency, kind, out_line = machine._raw_access_tuple(
            core, addr, is_write, now)

        record = {"core": core, "addr": addr, "line": line,
                  "is_write": is_write, "now": now, "kind": kind,
                  "latency": latency}
        if out_line != line:
            self._fail("line-mapping", "machine mapped the address to a "
                       "different line than addr >> line_shift",
                       record, expected=line, actual=out_line)

        # 1. Outcome vs. the reference transition tables.
        expected_kind = self.oracle.access(core, line, is_write)
        if kind == "prefetched":
            if expected_kind not in (coherence.COLD, coherence.SHARED_CLEAN):
                self._fail("prefetch-remap", "only cold/shared fetches may "
                           "be remapped to prefetched",
                           record, expected=expected_kind, actual=kind)
        elif kind != expected_kind:
            self._fail("outcome-mismatch", "fast path disagrees with the "
                       "reference MESI oracle",
                       record, expected=expected_kind, actual=kind)

        # 2. Exact latency reconstruction + jitter-stream conservation.
        expected_latency = machine._costs[kind]
        if machine._numa:
            expected_latency += machine._numa_penalty(
                kind, core, line, owner_before)
        if machine._jitter:
            j = self._mirror_jitter
            j ^= (j << 13) & _MASK64
            j ^= j >> 7
            j ^= (j << 17) & _MASK64
            self._mirror_jitter = j
            expected_latency += j % (machine._jitter + 1)
        if self._mirror_jitter != machine._jitter_state:
            self._fail("jitter-stream", "machine consumed a different "
                       "number of jitter draws than one per access",
                       record, expected=self._mirror_jitter,
                       actual=machine._jitter_state)
        stall = 0
        if kind in ("coherence_read", "coherence_write", "upgrade"):
            if pinned_before > now:
                stall = pinned_before - now
            expected_latency += stall
            # 4. Pin-table update and monotonicity.
            new_pin = machine._pin_until.get(line, 0)
            expected_pin = now + latency + machine._transfer_window
            if new_pin != expected_pin:
                self._fail("pin-update", "pin table entry not advanced to "
                           "now + latency + transfer_window",
                           record, expected=expected_pin, actual=new_pin)
            if new_pin < pinned_before:
                self._fail("pin-monotonicity", "pin time moved backwards",
                           record, expected=pinned_before, actual=new_pin)
        if latency != expected_latency:
            self._fail("latency-mismatch", "latency is not base cost + "
                       "jitter draw + pin stall",
                       record, expected=expected_latency, actual=latency)

        # 3. Directory state vs. the oracle.
        self._check_directory_state(line, record)

        self._trace.append(record)
        self.accesses_checked += 1
        return latency, kind, out_line

    def _check_directory_state(self, line: int, record: dict) -> None:
        directory = self.machine.directory
        state = directory.state_of(line)
        if state is None:
            self._fail("missing-line-state", "directory has no entry for "
                       "an accessed line", record)
        if state.holders != self.oracle.holders(line):
            self._fail("holders-mismatch", "directory holder set diverged "
                       "from the oracle",
                       record, expected=self.oracle.holders(line),
                       actual=set(state.holders))
        if state.dirty_owner != self.oracle.dirty_owner(line):
            self._fail("dirty-owner-mismatch", "directory dirty owner "
                       "diverged from the oracle",
                       record, expected=self.oracle.dirty_owner(line),
                       actual=state.dirty_owner)
        if state.dirty_owner is not None and state.holders != {state.dirty_owner}:
            self._fail("single-writer", "a dirty owner must be the sole "
                       "holder of its line",
                       record, expected={state.dirty_owner},
                       actual=set(state.holders))
        exclusive = directory._exclusive.get(line)
        if exclusive != state.dirty_owner:
            self._fail("exclusive-map", "the exclusive-owner mirror map "
                       "disagrees with LineState.dirty_owner",
                       record, expected=state.dirty_owner, actual=exclusive)
        if state.invalidations != self.oracle.invalidations_of(line):
            self._fail("invalidation-count", "ground-truth invalidation "
                       "counter diverged from the oracle",
                       record, expected=self.oracle.invalidations_of(line),
                       actual=state.invalidations)

    # -- engine-level checks ---------------------------------------------------

    def note_quantum(self, thread) -> None:
        """Called by the engine after each scheduling quantum: per-thread
        clocks must never move backwards."""
        last = self._last_clock.get(thread.tid)
        if last is not None and thread.clock < last:
            self._fail("clock-monotonicity",
                       f"thread {thread.tid} clock moved backwards",
                       None, expected=f">= {last}", actual=thread.clock)
        self._last_clock[thread.tid] = thread.clock

    def check_pmu(self, pmu) -> None:
        """Countdown positivity and overhead conservation, at run end."""
        for tid, countdown in pmu._countdown.items():
            if countdown < 1:
                self._fail("pmu-countdown",
                           f"PMU countdown for thread {tid} is not positive",
                           None, expected=">= 1", actual=countdown)
        cfg = pmu.config
        expected = (pmu.threads_set_up * cfg.thread_setup_cost
                    + pmu.memory_samples * cfg.handler_cost
                    + (pmu.samples_fired - pmu.memory_samples) * cfg.trap_cost)
        charged = sum(pmu.overhead_by_tid.values())
        if charged != expected:
            self._fail("pmu-overhead-conservation",
                       "charged PMU overhead does not equal "
                       "setup*threads + handler*memory + trap*other_fires",
                       None, expected=expected, actual=charged)

    # -- failure -------------------------------------------------------------

    def _fail(self, invariant: str, message: str, access: Optional[dict],
              expected=None, actual=None) -> None:
        raise ValidationError(invariant, message, access=access,
                              expected=expected, actual=actual,
                              trace=self._trace)
