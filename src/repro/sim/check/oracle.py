"""Reference MESI oracle: slow, obviously-correct coherence transitions.

The production directory (:mod:`repro.sim.coherence`) is written for
speed: one merged read/write body over a holders *set* plus a mirrored
exclusive-owner map that the machine's private-HIT fast path probes. This
oracle re-implements the same protocol from the textbook description —
one explicit per-core state letter (``M``/``S``, absence = invalid) and
one plainly-spelled-out case per transition — so that a bug in the
optimised representation is very unlikely to be reproduced here.

The sanitizer (:mod:`repro.sim.check.sanitizer`) feeds every simulated
access through both implementations and cross-checks outcome tags,
holder sets, dirty owners and invalidation counts.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.errors import ValidationError
from repro.sim import coherence

#: Per-core line states. A core absent from the table is Invalid.
MODIFIED = "M"
SHARED = "S"


class ReferenceMESI:
    """Obviously-correct per-core MESI state machine.

    One dict per line mapping ``core -> state letter``. Every transition
    is written out as its own case; invariants are re-checked after
    every single access rather than assumed.
    """

    def __init__(self) -> None:
        # line -> {core: "M" | "S"}; cores not present hold the line Invalid.
        self._states: Dict[int, Dict[int, str]] = {}
        # Lines that have been fetched at least once (a re-fetch after
        # invalidation is a shared-level fetch, not a cold miss).
        self._fetched: Set[int] = set()
        # line -> ground-truth invalidation events (one per write that
        # removes the line from at least one *other* core).
        self._invalidations: Dict[int, int] = {}

    # -- queries -------------------------------------------------------------

    def holders(self, line: int) -> Set[int]:
        """Cores holding a valid (M or S) copy of ``line``."""
        return set(self._states.get(line, {}))

    def dirty_owner(self, line: int) -> Optional[int]:
        """The core holding ``line`` Modified, or None."""
        for core, state in self._states.get(line, {}).items():
            if state == MODIFIED:
                return core
        return None

    def invalidations_of(self, line: int) -> int:
        return self._invalidations.get(line, 0)

    def ever_fetched(self, line: int) -> bool:
        return line in self._fetched

    # -- the transition tables ----------------------------------------------

    def access(self, core: int, line: int, is_write: bool) -> str:
        """Apply one access; returns the expected outcome tag.

        Tags are the ones :class:`repro.sim.coherence.CoherenceDirectory`
        produces (HIT, SHARED_CLEAN, COHERENCE_READ, COHERENCE_WRITE,
        UPGRADE, COLD); the machine may additionally remap a COLD or
        SHARED_CLEAN fetch to PREFETCHED, which the caller must accept.
        """
        table = self._states.setdefault(line, {})
        mine = table.get(core)  # None = Invalid
        others = [c for c in table if c != core]
        was_fetched = line in self._fetched

        if is_write:
            if mine == MODIFIED:
                # Case W1: already exclusive-modified here. Pure hit.
                outcome = coherence.HIT
            elif mine == SHARED and not others:
                # Case W2: sole clean holder. Silent upgrade to M; no
                # bus traffic, still a private hit.
                table[core] = MODIFIED
                outcome = coherence.HIT
            elif mine is None and not others:
                # Case W3: nobody holds the line. Fetch-for-ownership.
                table[core] = MODIFIED
                outcome = (coherence.SHARED_CLEAN if was_fetched
                           else coherence.COLD)
            else:
                # Case W4: other cores hold copies (and possibly we hold
                # one too, shared). Invalidate every other copy; one
                # invalidation event regardless of how many copies died.
                self._invalidations[line] = (
                    self._invalidations.get(line, 0) + 1)
                had_copy = mine == SHARED
                for other in others:
                    del table[other]
                table[core] = MODIFIED
                outcome = (coherence.UPGRADE if had_copy
                           else coherence.COHERENCE_WRITE)
        else:
            if mine in (MODIFIED, SHARED):
                # Case R1: any valid local copy serves a read.
                outcome = coherence.HIT
            else:
                dirty = [c for c in others if table[c] == MODIFIED]
                if dirty:
                    # Case R2: another core holds the line modified: the
                    # dirty copy is forwarded and downgraded to Shared.
                    table[dirty[0]] = SHARED
                    table[core] = SHARED
                    outcome = coherence.COHERENCE_READ
                else:
                    # Case R3: clean fetch (from the shared level if the
                    # line was ever cached, else from memory).
                    table[core] = SHARED
                    outcome = (coherence.SHARED_CLEAN if was_fetched
                               else coherence.COLD)

        self._fetched.add(line)
        self.check_invariants(line)
        return outcome

    # -- invariants ----------------------------------------------------------

    def check_invariants(self, line: int) -> None:
        """Single-writer/multiple-reader, re-checked after every access."""
        table = self._states.get(line, {})
        owners = [c for c, s in table.items() if s == MODIFIED]
        if len(owners) > 1:
            raise ValidationError(
                "single-writer", f"line {line:#x} has {len(owners)} "
                f"modified owners: {sorted(owners)}",
                actual=dict(table))
        if owners and len(table) > 1:
            raise ValidationError(
                "writer-excludes-readers",
                f"line {line:#x} is modified by core {owners[0]} but "
                f"other cores still hold copies",
                actual=dict(table))
