"""Operations a simulated thread can yield to the engine.

Simulated threads are Python generators. Each ``yield`` hands the engine
one operation; the engine executes it, advances the thread's clock, and
resumes the generator with the operation's result (the loaded "value" is
never modelled — only addresses and timing matter for false sharing).

``LoopAccess`` is the workhorse: it expresses a whole access loop (for
example ``for i: array[base + i*stride] += 1``) as a single op that the
engine expands access-by-access in its own scheduling loop. This keeps the
per-access cost low while preserving exact cross-thread interleaving,
which the invalidation count depends on.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Tuple


class Op:
    """Base class for thread operations (used only for isinstance checks)."""

    __slots__ = ()


class Load(Op):
    """Read ``size`` bytes at ``addr``."""

    __slots__ = ("addr", "size")

    def __init__(self, addr: int, size: int = 4):
        self.addr = addr
        self.size = size


class Store(Op):
    """Write ``size`` bytes at ``addr``."""

    __slots__ = ("addr", "size")

    def __init__(self, addr: int, size: int = 4):
        self.addr = addr
        self.size = size


class Work(Op):
    """Execute ``cycles`` cycles of pure computation (no memory traffic)."""

    __slots__ = ("cycles",)

    def __init__(self, cycles: int):
        self.cycles = cycles


class LoopAccess(Op):
    """A strided loop of accesses executed natively by the engine.

    Each iteration touches ``addr = base + i * stride`` for
    ``i in range(count)``; per iteration the engine issues a load (if
    ``read``), then a store (if ``write``), then charges ``work`` cycles of
    computation. ``repeat`` re-runs the whole sweep, modelling outer loops
    such as the paper's Figure 1 microbenchmark.
    """

    __slots__ = ("base", "stride", "count", "read", "write", "work", "repeat")

    def __init__(self, base: int, stride: int, count: int, *,
                 read: bool = True, write: bool = True,
                 work: int = 0, repeat: int = 1):
        if count < 0 or repeat < 0:
            raise ValueError("count and repeat must be non-negative")
        self.base = base
        self.stride = stride
        self.count = count
        self.read = read
        self.write = write
        self.work = work
        self.repeat = repeat

    @property
    def total_accesses(self) -> int:
        """Number of individual memory accesses this op expands to."""
        per_iter = (1 if self.read else 0) + (1 if self.write else 0)
        return per_iter * self.count * self.repeat


class Spawn(Op):
    """Create a child thread running ``fn(api, *args)``; yields its tid."""

    __slots__ = ("fn", "args", "name")

    def __init__(self, fn: Callable[..., Any], args: Tuple[Any, ...] = (),
                 name: Optional[str] = None):
        self.fn = fn
        self.args = args
        self.name = name


class Join(Op):
    """Block until thread ``tid`` finishes."""

    __slots__ = ("tid",)

    def __init__(self, tid: int):
        self.tid = tid


class Malloc(Op):
    """Allocate ``size`` bytes from the simulated heap; yields the address.

    ``callsite`` overrides the automatically captured Python call stack;
    workloads use it to mimic the source locations the paper reports.
    """

    __slots__ = ("size", "callsite")

    def __init__(self, size: int, callsite: Optional[str] = None):
        self.size = size
        self.callsite = callsite


class Free(Op):
    """Release an allocation previously returned by :class:`Malloc`."""

    __slots__ = ("addr",)

    def __init__(self, addr: int):
        self.addr = addr


class Fence(Op):
    """Synchronisation point: no timing effect, but visible to observers."""

    __slots__ = ()


class Barrier(Op):
    """Block until ``parties`` threads have arrived at barrier ``key``.

    All arrivals resume together at the latest arrival time (plus the
    barrier cost); the barrier then resets for the next round. This is
    the synchronisation whose waiting time the paper's assessment
    explicitly does not model ("we leave this for future work") — the
    reproduction includes it so that limitation can be demonstrated.
    """

    __slots__ = ("key", "parties")

    def __init__(self, key: Any, parties: int):
        if parties < 1:
            raise ValueError(f"parties must be >= 1, got {parties}")
        self.key = key
        self.parties = parties
