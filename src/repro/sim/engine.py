"""Discrete-event engine: interleaves simulated threads by clock.

The engine implements the standard min-clock discipline: the thread with
the smallest clock always executes next, and it keeps executing until its
clock passes the next-smallest thread's clock (or it blocks/finishes).
This yields an exact interleaving of memory accesses across cores — the
property the cache-invalidation counts, and therefore the whole
false-sharing phenomenon, depend on — while amortising scheduling cost
over bursts of accesses.

The engine is also where cross-cutting instrumentation hooks in:

- an optional :class:`~repro.pmu.sampler.PMU` sees every access and every
  instruction batch, fires samples and charges sampling overhead;
- an optional *observer* (used by the Predator-style baseline) sees every
  access and charges a per-access instrumentation cost;
- the :class:`~repro.runtime.phases.PhaseTracker` is notified of every
  spawn and join so serial/parallel phases are known at all times.
"""

from __future__ import annotations

import heapq
import itertools
import os.path
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import DeadlockError, SimulationError, ThreadError, \
    ValidationError
from repro.heap.allocator import CheetahAllocator
from repro.runtime.phases import PhaseTracker
from repro.runtime.thread import SimThread, ThreadAPI, ThreadState, _BurstState
from repro.sim import coherence, kernel as vector_kernel
from repro.sim.machine import Machine
from repro.sim.ops import (
    Barrier, Fence, Free, Join, Load, LoopAccess, Malloc, Op, Spawn, Store,
    Work,
)
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable

_INFINITY = float("inf")
_CALLSITE_DEPTH = 5  # the paper collects five call-stack entries
# Adaptive vector-kernel throttles (pure perf policy — both kernels are
# bit-identical, so switching mid-run cannot change any output). A thread
# whose bursts fail to batch this many consecutive resumes stops planning
# for the rest of the run; a single call that hits this many consecutive
# scalar escapes stops replanning per iteration and delegates its quantum.
_VECTOR_ADAPT = 64
_VECTOR_ESCAPE_RUN = 24
# Entries kept in the whole-burst plan cache (LRU-evicted beyond this;
# bounds memory on programs with many distinct burst shapes).
_PLAN_CACHE_MAX = 4096
# Simulation steps between opportunistic sweeps of the machine's coherence
# pin table (Machine.prune_pins); bounds an otherwise unbounded dict.
_PIN_PRUNE_INTERVAL = 8192


class Observer:
    """Interface for tools that see every simulated memory access
    (Predator/Sheriff baselines, trace recorders, the obs Tracer).

    ``cost_per_access`` cycles are charged to the accessing thread for
    every access — the flat instrumentation overhead the paper's
    Section 4.2.3 comparison is about.
    """

    cost_per_access: int = 0

    def on_access(self, tid: int, core: int, addr: int, is_write: bool,
                  latency: int, size: int, line: int) -> Optional[int]:
        """Called once per access, after the machine resolved it.

        Arguments match the engine's dispatch exactly: ``tid``/``core``
        identify the accessing thread, ``addr`` and ``size`` the access,
        ``latency`` the cycles the machine charged, and ``line`` the
        cache line index (``addr >> line_shift``). The access has already
        been applied to the machine and the thread's clock when this
        fires. May return an ``int`` of *extra* cycles to charge for this
        particular access (page-fault-driven tools like Sheriff charge
        selectively); ``None`` or ``0`` charges nothing beyond
        ``cost_per_access``.
        """
        raise NotImplementedError

    def on_thread_start(self, tid: int) -> None:
        """Called once per created thread (including main, ``tid`` 0),
        after the PMU (if any) armed it and charged its setup cost.
        Returns nothing; it cannot charge cycles.
        """


@dataclass
class RunResult:
    """Everything a finished simulation exposes.

    ``runtime`` is the main thread's final clock — the program's
    wall-clock time in cycles. Per-thread objects carry their own clocks
    and ground-truth access statistics; ``machine`` retains the coherence
    directory with ground-truth invalidation counts.
    """

    runtime: int
    threads: Dict[int, SimThread]
    phases: PhaseTracker
    machine: Machine
    allocator: CheetahAllocator
    symbols: SymbolTable
    steps: int
    return_value: Any = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.threads.values())

    @property
    def total_accesses(self) -> int:
        return sum(t.mem_accesses for t in self.threads.values())

    def thread_runtime(self, tid: int) -> int:
        return self.threads[tid].runtime


class Engine:
    """Runs one simulated program to completion."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 machine: Optional[Machine] = None,
                 allocator: Optional[CheetahAllocator] = None,
                 symbols: Optional[SymbolTable] = None,
                 pmu: Optional[Any] = None,
                 observer: Optional[Observer] = None,
                 obs: Optional[Any] = None,
                 max_steps: int = 200_000_000):
        self.config = config or (machine.config if machine else MachineConfig())
        self.machine = machine or Machine(self.config)
        self.allocator = allocator or CheetahAllocator(
            line_size=self.config.cache_line_size)
        self.symbols = symbols or SymbolTable()
        self.pmu = pmu
        self.observer = observer
        # Observability (repro.obs): wired via obs.wire(self), which sets
        # this attribute back and installs the machine/PMU-side hooks.
        self.obs = None
        if obs is not None:
            obs.wire(self)
        self.phase_tracker = PhaseTracker()
        self.api = ThreadAPI()
        self.threads: Dict[int, SimThread] = {}
        self._tid_counter = itertools.count()
        self._max_steps = max_steps
        self._steps = 0
        # Next step count at which the machine's coherence pin table is
        # swept; see the pruning block in run().
        self._next_pin_prune = _PIN_PRUNE_INTERVAL
        self._ran = False
        # Burst kernel selection (resolved per-run in _resolve_kernel):
        # which variant ran, and the shared jitter-stream buffer the
        # vector kernel draws from (created lazily on first batched span).
        self._kernel_variant = "fused"
        self._jstream = None
        # Per-thread consecutive no-batch counter for the adaptive
        # vector-kernel opt-out (see _run_burst_vector).
        self._vector_miss: Dict[int, int] = {}
        # Whole-burst plan proofs keyed by (core, base, stride, count,
        # write), valid while the directory version is unchanged.
        # LRU-bounded so long runs over many burst shapes stay flat.
        self._plan_cache = vector_kernel.PlanCache(_PLAN_CACHE_MAX)
        # (cycle, callback) checkpoints, fired once when simulated time
        # first passes the cycle — the "interrupted by the user" hook the
        # paper's mid-run reporting needs (Section 2.4).
        self._checkpoints: List[tuple] = []
        # key -> threads currently waiting at that barrier.
        self._barriers: Dict[Any, List[SimThread]] = {}

    def add_checkpoint(self, cycle: int,
                       callback: Callable[["Engine", int], None]) -> None:
        """Invoke ``callback(engine, now)`` when simulated time passes
        ``cycle``. Must be registered before :meth:`run`."""
        if self._ran:
            raise SimulationError("checkpoints must be added before run()")
        self._checkpoints.append((cycle, callback))
        self._checkpoints.sort(key=lambda pair: pair[0])

    # -- program execution ---------------------------------------------------

    def run(self, main_fn: Callable[..., Any], *args: Any) -> RunResult:
        """Run ``main_fn(api, *args)`` as the main thread until completion."""
        if self._ran:
            raise SimulationError("an Engine instance can only run once")
        self._ran = True

        main = self._create_thread(main_fn, args, parent=None, start_clock=0,
                                   name="main")
        ready: List[tuple] = [(main.clock, main.tid)]
        threads = self.threads

        # The scheduling loop runs once per quantum — for tightly
        # interleaved threads that is once per access — so everything it
        # touches is hoisted into locals and the former _advance helper
        # is inlined below.
        heappush = heapq.heappush
        heappop = heapq.heappop
        checkpoints = self._checkpoints
        machine = self.machine
        sanitizer = getattr(machine, "sanitizer", None)
        obs = self.obs
        runnable = ThreadState.RUNNABLE
        max_steps = self._max_steps
        resume = self._resume
        run_burst = self._resolve_kernel()
        woken: List[SimThread] = []

        while ready:
            clock, tid = heappop(ready)
            thread = threads[tid]
            if thread.state is not runnable:
                continue
            if thread.clock != clock:
                heappush(ready, (thread.clock, tid))
                continue
            while checkpoints and clock >= checkpoints[0][0]:
                _, callback = checkpoints.pop(0)
                callback(self, clock)
            if self._steps >= self._next_pin_prune:
                # ``clock`` is the scheduler's global minimum: no future
                # access can happen earlier, so entries pinned at or
                # before it are dead and can be dropped (bounds the
                # pin table on long runs over many contended lines).
                machine.prune_pins(clock)
                self._next_pin_prune = self._steps + _PIN_PRUNE_INTERVAL
            limit = ready[0][0] if ready else _INFINITY
            # A pending checkpoint also bounds the quantum: with a single
            # runnable thread ``ready`` is empty and an unbounded quantum
            # would sail past every registered checkpoint (the callbacks
            # would fire arbitrarily late, or never if the program ends
            # first — the paper's Section 2.4 mid-run hook must not drop).
            if checkpoints and checkpoints[0][0] < limit:
                limit = checkpoints[0][0]
            # -- one scheduling quantum: run ``thread`` until its clock
            # passes ``limit`` or it yields control (block/finish) --
            while thread.clock <= limit:
                self._steps += 1
                if self._steps > max_steps:
                    raise SimulationError(
                        f"exceeded max_steps={self._max_steps}; "
                        "likely an unbounded workload loop"
                    )
                if thread.burst is not None:
                    if not run_burst(thread, limit):
                        break  # burst paused at limit; stays runnable
                    thread.pending_value = None
                if not resume(thread, woken):
                    break
            if thread.state is runnable:
                heappush(ready, (thread.clock, tid))
            if woken:
                for other in woken:
                    heappush(ready, (other.clock, other.tid))
                woken.clear()
            if sanitizer is not None:
                sanitizer.note_quantum(thread)
            if obs is not None:
                # ``clock`` is the quantum's start (the popped value).
                obs.note_quantum(thread, clock)

        unfinished = [t for t in threads.values()
                      if t.state is not ThreadState.FINISHED]
        if unfinished:
            blocked = ", ".join(repr(t) for t in unfinished)
            raise DeadlockError(f"threads never finished: {blocked}")
        if main.end_clock is None:
            raise SimulationError("main thread has no end clock")

        # Drain checkpoints the final quantum ran past: a thread that
        # finishes exactly at (or just beyond) a checkpoint cycle is
        # never re-popped, so its pending callbacks would be silently
        # dropped. Checkpoints beyond the program's end stay unfired —
        # simulated time never passed them.
        while checkpoints and checkpoints[0][0] <= main.end_clock:
            _, callback = checkpoints.pop(0)
            callback(self, main.end_clock)

        if sanitizer is not None and self.pmu is not None:
            sanitizer.check_pmu(self.pmu)

        self.phase_tracker.finish(main.end_clock)
        return RunResult(
            runtime=main.end_clock,
            threads=dict(threads),
            phases=self.phase_tracker,
            machine=self.machine,
            allocator=self.allocator,
            symbols=self.symbols,
            steps=self._steps,
            metadata={"kernel": self._kernel_variant,
                      "kernel_numpy": vector_kernel.HAVE_NUMPY},
        )

    def _resolve_kernel(self):
        """Pick the burst runner for this run (see MachineConfig.kernel).

        The vector kernel batches provably private-HIT spans without
        routing each access through the machine entry point, so it is
        only eligible when nothing needs to see every access: no
        observer, no sanitizer, no obs instrumentation, and the
        machine's private-HIT fast path itself valid (infinite caches).
        ``auto`` silently falls back to the fused loop otherwise (which
        in turn routes to the general per-access loop). An *explicit*
        ``vector`` request under the sanitizer selects the checked
        variant instead: every planned access is re-validated through
        the sanitizer-wrapped entry point and asserted to be the HIT the
        planner claimed — the self-test hook that catches planner bugs.
        """
        machine = self.machine
        choice = getattr(self.config, "kernel", "auto")
        clean = (self.observer is None and machine.sanitizer is None
                 and machine.obs is None and self.obs is None
                 and machine._fast_private)
        if choice != "fused":
            if clean:
                self._kernel_variant = "vector"
                return self._run_burst_vector
            if (choice == "vector" and machine.sanitizer is not None
                    and self.observer is None and machine.obs is None
                    and self.obs is None and machine._fast_private):
                self._kernel_variant = "vector-checked"
                return self._run_burst_vector_checked
        self._kernel_variant = "fused"
        return self._run_burst

    # -- thread lifecycle ------------------------------------------------------

    def _create_thread(self, fn: Callable[..., Any], args: tuple,
                       parent: Optional[SimThread], start_clock: int,
                       name: Optional[str] = None) -> SimThread:
        tid = next(self._tid_counter)
        core = tid % self.config.num_cores
        generator = fn(self.api, *args)
        if not hasattr(generator, "send"):
            raise ThreadError(
                f"thread function {fn!r} must be a generator function "
                "(use 'yield from api....' inside it)"
            )
        thread = SimThread(tid=tid, core=core, generator=generator,
                           start_clock=start_clock,
                           parent_tid=parent.tid if parent else None,
                           name=name or getattr(fn, "__name__", None))
        self.threads[tid] = thread
        if self.pmu is not None:
            thread.clock += self.pmu.on_thread_start(tid)
        if self.observer is not None:
            self.observer.on_thread_start(tid)
        if self.obs is not None:
            self.obs.on_thread_spawn(thread)
        return thread

    def _finish_thread(self, thread: SimThread) -> List[SimThread]:
        """Mark ``thread`` finished and wake any joiners."""
        thread.state = ThreadState.FINISHED
        thread.end_clock = thread.clock
        if self.obs is not None:
            self.obs.on_thread_finish(thread)
        woken = []
        for waiter in thread.join_waiters:
            self._complete_join(waiter, thread)
            waiter.state = ThreadState.RUNNABLE
            woken.append(waiter)
        thread.join_waiters.clear()
        return woken

    def _complete_join(self, parent: SimThread, child: SimThread) -> None:
        assert child.end_clock is not None
        parent.clock = max(parent.clock, child.end_clock) + self.config.join_cost
        parent.pending_value = None
        self.phase_tracker.on_join(parent.tid, child.tid, parent.clock)
        if self.obs is not None:
            self.obs.on_join(parent, child)

    # -- the scheduling quantum -------------------------------------------------
    # (the per-quantum advance loop is inlined in run(); see there)

    def _resume(self, thread: SimThread, woken: List[SimThread]) -> bool:
        """Resume the generator one op. Returns False when the thread
        blocked or finished (caller must stop advancing it)."""
        try:
            op = thread.generator.send(thread.pending_value)
        except StopIteration:
            woken.extend(self._finish_thread(thread))
            if thread.parent_tid is None:
                self._check_leaked_threads(thread)
            return False
        thread.pending_value = None
        return self._dispatch(thread, op, woken)

    def _check_leaked_threads(self, main: SimThread) -> None:
        live = [t for t in self.threads.values()
                if t.state is ThreadState.RUNNABLE and t is not main]
        if live:
            names = ", ".join(t.name for t in live)
            raise ThreadError(
                f"main thread exited while threads are still running: {names}"
            )

    # -- op dispatch ---------------------------------------------------------------

    def _dispatch(self, thread: SimThread, op: Op,
                  woken: List[SimThread]) -> bool:
        if type(op) is Load:
            self._access(thread, op.addr, False, op.size)
            return True
        if type(op) is Store:
            self._access(thread, op.addr, True, op.size)
            return True
        if type(op) is LoopAccess:
            if op.count and op.repeat:
                thread.burst = _BurstState(op)
            return True
        if type(op) is Work:
            self._do_work(thread, op.cycles)
            return True
        if type(op) is Malloc:
            callsite = op.callsite or self._capture_callsite(thread)
            addr = self.allocator.allocate(op.size, tid=thread.tid,
                                           callsite=callsite)
            thread.clock += self.config.alloc_cost
            thread.instructions += 1
            thread.pending_value = addr
            return True
        if type(op) is Free:
            self.allocator.free(op.addr, tid=thread.tid)
            thread.clock += self.config.alloc_cost
            thread.instructions += 1
            return True
        if type(op) is Spawn:
            thread.clock += self.config.spawn_cost
            child = self._create_thread(op.fn, op.args, parent=thread,
                                        start_clock=thread.clock,
                                        name=op.name)
            self.phase_tracker.on_spawn(thread.tid, child.tid, thread.clock)
            woken.append(child)
            thread.pending_value = child.tid
            return True
        if type(op) is Join:
            return self._do_join(thread, op.tid)
        if type(op) is Fence:
            thread.clock += 1
            thread.instructions += 1
            return True
        if type(op) is Barrier:
            return self._do_barrier(thread, op, woken)
        raise SimulationError(f"thread {thread.tid} yielded unknown op {op!r}")

    #: Cycles charged per barrier crossing (futex wake analogue).
    BARRIER_COST = 50

    def _do_barrier(self, thread: SimThread, op: Barrier,
                    woken: List[SimThread]) -> bool:
        waiting = self._barriers.setdefault(op.key, [])
        for earlier in waiting:
            if earlier.tid == thread.tid:
                raise ThreadError(
                    f"thread {thread.tid} re-entered barrier {op.key!r} "
                    "it is already waiting on")
        waiting.append(thread)
        if len(waiting) < op.parties:
            thread.state = ThreadState.BLOCKED
            return False
        # Last arrival: release the whole round together.
        release = max(t.clock for t in waiting) + self.BARRIER_COST
        if self.obs is not None:
            self.obs.on_barrier_release(
                op.key, [(t.tid, t.clock) for t in waiting], release,
                self.BARRIER_COST)
        del self._barriers[op.key]
        for waiter in waiting:
            waiter.barrier_waits += release - self.BARRIER_COST - waiter.clock
            waiter.clock = release
            if waiter is not thread:
                waiter.state = ThreadState.RUNNABLE
                waiter.pending_value = None
                woken.append(waiter)
        return True

    def _do_join(self, thread: SimThread, target_tid: int) -> bool:
        target = self.threads.get(target_tid)
        if target is None:
            raise ThreadError(f"join of unknown thread {target_tid}")
        if target is thread:
            raise ThreadError(f"thread {thread.tid} cannot join itself")
        if target.state is ThreadState.FINISHED:
            self._complete_join(thread, target)
            return True
        thread.state = ThreadState.BLOCKED
        target.join_waiters.append(thread)
        return False

    def _do_work(self, thread: SimThread, cycles: int) -> None:
        thread.clock += cycles
        thread.instructions += cycles
        if self.pmu is not None:
            extra = self.pmu.on_work(thread.tid, cycles, thread.clock)
            if extra:
                thread.clock += extra

    # -- memory accesses --------------------------------------------------------

    def _access(self, thread: SimThread, addr: int, is_write: bool,
                size: int) -> None:
        latency, _, line = self.machine.access_tuple(
            thread.core, addr, is_write, thread.clock)
        thread.clock += latency
        thread.instructions += 1
        thread.mem_accesses += 1
        thread.mem_cycles += latency
        observer = self.observer
        if observer is not None:
            extra = observer.on_access(thread.tid, thread.core, addr,
                                       is_write, latency, size, line)
            thread.clock += observer.cost_per_access
            if extra:
                thread.clock += extra
        pmu = self.pmu
        if pmu is not None:
            extra = pmu.on_access(thread.tid, thread.core, addr, is_write,
                                  latency, size, thread.clock)
            if extra:
                thread.clock += extra

    def _run_burst(self, thread: SimThread, limit: float) -> bool:
        """Execute burst iterations until the clock passes ``limit``.

        Returns True when the burst completed (the generator should be
        resumed), False when it paused because the thread overran its
        scheduling quantum.

        This is the simulator's innermost loop: for the common case
        (no observer) the machine's private-HIT check, the thread's
        clock/counter updates and the PMU's sampling countdown are fused
        into one loop over plain locals, flushed back on every exit and
        around every slow-path call. The fused loop consumes the jitter
        stream and the PMU countdown in exactly the same order as the
        general path, so all outputs stay bit-identical.
        """
        burst = thread.burst
        assert burst is not None
        machine = self.machine
        if (self.observer is not None or not machine._fast_private
                or machine.sanitizer is not None
                or machine.obs is not None):
            # Sanitizer and per-access observability modes must see
            # *every* access, so bursts take the general per-access loop
            # (whose machine calls route through the instance-rebound
            # entry point).
            return self._run_burst_observed(thread, limit)
        pmu = self.pmu

        # Machine fast-path state (constants bundled at construction).
        lines_get, line_shift, hit_cost, jitter = machine._fast_state
        jstate = machine._jitter_state
        m_accesses = 0  # machine counter deltas, flushed with the locals
        m_cycles = 0

        # Thread state.
        clock = thread.clock
        instructions = thread.instructions
        mem_accesses = thread.mem_accesses
        mem_cycles = thread.mem_cycles
        steps = 0
        core = thread.core
        tid = thread.tid

        # PMU countdown (the 127-of-128 non-sampled accesses do only the
        # decrement here; fires go through the PMU's real entry points).
        if pmu is not None:
            countdown = pmu._countdown
            cd = countdown[tid]

        # Burst progress (op constants are pre-copied into burst slots).
        index = burst.index
        repeat = burst.repeat
        count = burst.count
        repeats_total = burst.repeat_total
        base = burst.base
        stride = burst.stride
        work = burst.work
        do_read = burst.read
        do_write = burst.write

        completed = False
        try:
            while clock <= limit:
                if index >= count:
                    index = 0
                    repeat += 1
                if repeat >= repeats_total:
                    completed = True
                    return True
                addr = base + index * stride
                steps += 1
                line = addr >> line_shift
                # One probe covers both the read and the write of this
                # iteration: LineState objects are mutated in place,
                # never replaced (only a first-touch slow path below can
                # create one, after which we re-probe). The read and
                # write bodies are spelled out separately so each tests
                # its own constant-folded HIT predicate.
                state = lines_get(line)
                if do_read:
                    if state is not None and core in state.holders:
                        latency = hit_cost
                        if jitter:
                            jstate ^= (jstate << 13) & 0xFFFFFFFFFFFFFFFF
                            jstate ^= jstate >> 7
                            jstate ^= (jstate << 17) & 0xFFFFFFFFFFFFFFFF
                            latency += jstate % (jitter + 1)
                        m_accesses += 1
                        m_cycles += latency
                    else:
                        # Slow path: flush machine state, take the full
                        # MESI/prefetch/pin path, re-load the jitter.
                        machine._jitter_state = jstate
                        machine.total_accesses += m_accesses
                        machine.total_cycles += m_cycles
                        m_accesses = m_cycles = 0
                        latency, _, _ = machine.access_tuple(
                            core, addr, False, clock)
                        jstate = machine._jitter_state
                        if state is None:
                            state = lines_get(line)
                    clock += latency
                    instructions += 1
                    mem_accesses += 1
                    mem_cycles += latency
                    if pmu is not None:
                        if cd > 1:
                            cd -= 1
                        else:
                            countdown[tid] = cd
                            extra = pmu.on_access(
                                tid, core, addr, False, latency,
                                self.config.word_size, clock)
                            if extra:
                                clock += extra
                            cd = countdown[tid]
                if do_write:
                    if state is not None and state.dirty_owner == core:
                        latency = hit_cost
                        if jitter:
                            jstate ^= (jstate << 13) & 0xFFFFFFFFFFFFFFFF
                            jstate ^= jstate >> 7
                            jstate ^= (jstate << 17) & 0xFFFFFFFFFFFFFFFF
                            latency += jstate % (jitter + 1)
                        m_accesses += 1
                        m_cycles += latency
                    else:
                        machine._jitter_state = jstate
                        machine.total_accesses += m_accesses
                        machine.total_cycles += m_cycles
                        m_accesses = m_cycles = 0
                        latency, _, _ = machine.access_tuple(
                            core, addr, True, clock)
                        jstate = machine._jitter_state
                        if state is None:
                            state = lines_get(line)
                    clock += latency
                    instructions += 1
                    mem_accesses += 1
                    mem_cycles += latency
                    if pmu is not None:
                        if cd > 1:
                            cd -= 1
                        else:
                            countdown[tid] = cd
                            extra = pmu.on_access(
                                tid, core, addr, True, latency,
                                self.config.word_size, clock)
                            if extra:
                                clock += extra
                            cd = countdown[tid]
                if work:
                    clock += work
                    instructions += work
                    if pmu is not None:
                        if cd > work:
                            cd -= work
                        else:
                            countdown[tid] = cd
                            extra = pmu.on_work(tid, work, clock)
                            if extra:
                                clock += extra
                            cd = countdown[tid]
                index += 1
            # Completed exactly at the boundary?
            if index >= count and repeat + 1 >= repeats_total:
                completed = True
                return True
            return False
        finally:
            # ``steps == 0`` means the first check completed the burst:
            # nothing below the burst fields changed, so skip the flush.
            if steps:
                machine._jitter_state = jstate
                machine.total_accesses += m_accesses
                machine.total_cycles += m_cycles
                thread.clock = clock
                thread.instructions = instructions
                thread.mem_accesses = mem_accesses
                thread.mem_cycles = mem_cycles
                self._steps += steps
                if pmu is not None:
                    countdown[tid] = cd
            if completed:
                thread.burst = None
            else:
                burst.index = index
                burst.repeat = repeat

    def _run_burst_observed(self, thread: SimThread, limit: float) -> bool:
        """General burst loop, used whenever an observer sees every access
        (baselines, trace recording); semantically identical to the fused
        loop in :meth:`_run_burst`."""
        burst = thread.burst
        assert burst is not None
        op = burst.op
        word = self.config.word_size
        while thread.clock <= limit:
            if burst.index >= op.count:
                burst.index = 0
                burst.repeat += 1
            if burst.repeat >= op.repeat:
                thread.burst = None
                return True
            addr = op.base + burst.index * op.stride
            self._steps += 1
            if op.read:
                self._access(thread, addr, False, word)
            if op.write:
                self._access(thread, addr, True, word)
            if op.work:
                self._do_work(thread, op.work)
            burst.index += 1
        # Completed exactly at the boundary?
        if burst.index >= op.count and burst.repeat + 1 >= op.repeat:
            thread.burst = None
            return True
        return False

    def _run_burst_vector(self, thread: SimThread, limit: float) -> bool:
        """Array-batched burst kernel (see :mod:`repro.sim.kernel`).

        Plans how many upcoming iterations are provably private HITs
        (one directory probe per cache line), then charges the whole
        span in O(1): clock and counters advance arithmetically, the
        jitter contribution comes from the precomputed stream buffer,
        and the PMU countdown is decremented wholesale (the plan never
        extends past the next fire). Scalar escapes handle everything
        else — first touch, coherence transitions, PMU fires, quantum
        and checkpoint edges — by dropping to the existing per-access
        paths, so every output stays bit-identical to the fused loop.
        """
        burst = thread.burst
        assert burst is not None
        tid = thread.tid
        miss = self._vector_miss
        if miss.get(tid, 0) >= _VECTOR_ADAPT:
            # This thread's bursts never batch (tiny loops or tight
            # multi-thread quanta): stop paying the planning preamble.
            # Outputs are bit-identical either way, so adapting is pure
            # perf policy.
            return self._run_burst(thread, limit)

        index = burst.index
        repeat = burst.repeat
        count = burst.count
        repeats_total = burst.repeat_total
        left_total = (repeats_total - repeat) * count - index
        min_span = vector_kernel.MIN_SPAN
        # Tiny bursts: the fused scalar loop's constant factor wins;
        # batching only pays off over long spans.
        if left_total < min_span:
            miss[tid] = miss.get(tid, 0) + 1
            return self._run_burst(thread, limit)

        machine = self.machine
        do_read = burst.read
        do_write = burst.write
        work = burst.work
        d = (1 if do_read else 0) + (1 if do_write else 0)
        hit_cost = machine._hit_cost
        jitter = machine._jitter
        cost_max = d * (hit_cost + jitter) + work
        # Nearly-expired quantum: not even a minimal span can fit.
        if limit is not _INFINITY and thread.clock + min_span * cost_max > limit:
            miss[tid] = miss.get(tid, 0) + 1
            return self._run_burst(thread, limit)

        pmu = self.pmu
        stream = self._jstream
        plan_span = vector_kernel.plan_span
        plan_cache = self._plan_cache
        directory = machine.directory
        base = burst.base
        stride = burst.stride
        core = thread.core
        word = self.config.word_size
        dec_per_iter = d + work

        escape_run = 0
        while True:
            clock = thread.clock
            if clock > limit:
                break
            if index >= count:
                index = 0
                repeat += 1
            if repeat >= repeats_total:
                thread.burst = None
                return True
            # Bound the span by everything cheap *before* paying for
            # directory probes: burst remainder, quantum fit, next PMU
            # fire. plan_span is monotone in its cap, so planning within
            # the bound yields the same span as planning then clipping.
            cap = (repeats_total - repeat) * count - index
            if limit is not _INFINITY and cost_max:
                # Iterations whose start provably stays at or below the
                # limit even if every jitter draw is maximal.
                fit = (limit - clock) // cost_max + 1
                if fit < cap:
                    cap = fit
            if pmu is not None and dec_per_iter:
                k_pmu = (pmu._countdown[tid] - 1) // dec_per_iter
                if k_pmu < cap:
                    cap = k_pmu
            if cap < min_span:
                # A PMU fire or the quantum edge is imminent: run the
                # tail through the fused scalar loop (exact fire,
                # boundary and pause bookkeeping for free).
                burst.index = index
                burst.repeat = repeat
                miss[tid] = miss.get(tid, 0) + 1
                return self._run_burst(thread, limit)
            if d:
                # Whole-burst plan cache: once every line a burst sweeps
                # proved private for this core, the proof stays valid
                # until the directory mutates (its version counter moves
                # on any non-fast-path access; fast-path HITs by
                # definition change no directory state). Workloads
                # re-issue identically-shaped bursts every iteration, so
                # this skips the per-line probing almost always.
                ckey = (core, base, stride, count, do_write)
                if plan_cache.get(ckey) == directory.version:
                    k = cap
                else:
                    k = plan_span(machine, core, base, stride, count,
                                  index, cap, do_write)
                    if k == cap and cap >= count:
                        # cap >= count means the plan verified a full
                        # sweep of the burst's line set.
                        plan_cache.put(ckey, directory.version)
            else:
                # No memory accesses: every iteration is trivially a
                # "hit" of zero memory work.
                k = cap
            if k < min_span:
                if escape_run >= _VECTOR_ESCAPE_RUN:
                    # Nothing here batches (e.g. a contended line the
                    # thread keeps losing): stop replanning per
                    # iteration and let the fused loop run the quantum.
                    burst.index = index
                    burst.repeat = repeat
                    miss[tid] = miss.get(tid, 0) + 1
                    return self._run_burst(thread, limit)
                escape_run += 1
                # Escape: one scalar iteration through the general
                # per-access path (first touch, coherence transition, or
                # a line set too fragmented to batch), then replan.
                addr = base + index * stride
                self._steps += 1
                if do_read:
                    self._access(thread, addr, False, word)
                if do_write:
                    self._access(thread, addr, True, word)
                if work:
                    self._do_work(thread, work)
                index += 1
                continue
            escape_run = 0
            # -- charge k provably-HIT iterations as one batch --
            n_acc = d * k
            if jitter and n_acc:
                if stream is None:
                    stream = self._jstream = vector_kernel.JitterStream(
                        jitter, machine._jitter_state)
                stream.sync(machine._jitter_state)
                jsum = stream.take_span(n_acc)
                machine._jitter_state = stream.state_at()
            else:
                jsum = 0
            acc_cycles = n_acc * hit_cost + jsum
            thread.clock = clock + acc_cycles + work * k
            thread.instructions += dec_per_iter * k
            thread.mem_accesses += n_acc
            thread.mem_cycles += acc_cycles
            machine.total_accesses += n_acc
            machine.total_cycles += acc_cycles
            if pmu is not None and dec_per_iter:
                pmu._countdown[tid] -= dec_per_iter * k
            self._steps += k
            miss[tid] = 0
            index += k
            if index >= count:
                # Normalize multi-sweep advances, but keep the exact
                # "paused at the sweep boundary" representation
                # (index == count) the fused loop produces — boundary
                # completion below must fire on the same step it would.
                sweeps, rem = divmod(index, count)
                if rem == 0:
                    repeat += sweeps - 1
                    index = count
                else:
                    repeat += sweeps
                    index = rem
        burst.index = index
        burst.repeat = repeat
        # Completed exactly at the boundary?
        if index >= count and repeat + 1 >= repeats_total:
            thread.burst = None
            return True
        return False

    def _run_burst_vector_checked(self, thread: SimThread,
                                  limit: float) -> bool:
        """Checked vector kernel: plan, then prove the plan per access.

        Selected by an explicit ``kernel="vector"`` request under the
        sanitizer. Runs at general-loop speed: every access goes through
        the (sanitizer-wrapped) machine entry point, but accesses inside
        a planned span must come back as the private HITs the planner
        promised — anything else means the batch planner would have
        mis-charged that span in the fast variant, and raises
        :class:`ValidationError`. Plans are revalidated whenever the
        directory's mutation counter moves (our own escape accesses move
        it; other threads only run between bursts).
        """
        burst = thread.burst
        assert burst is not None
        machine = self.machine
        directory = machine.directory
        pmu = self.pmu
        plan_span = vector_kernel.plan_span
        word = self.config.word_size
        core = thread.core
        tid = thread.tid
        count = burst.count
        repeats_total = burst.repeat_total
        base = burst.base
        stride = burst.stride
        do_read = burst.read
        do_write = burst.write
        work = burst.work
        d = (1 if do_read else 0) + (1 if do_write else 0)
        planned = 0
        plan_version = -1
        while thread.clock <= limit:
            if burst.index >= count:
                burst.index = 0
                burst.repeat += 1
            if burst.repeat >= repeats_total:
                thread.burst = None
                return True
            self._steps += 1
            if d:
                if plan_version != directory.version:
                    left_total = ((repeats_total - burst.repeat) * count
                                  - burst.index)
                    planned = plan_span(machine, core, base, stride, count,
                                        burst.index, left_total, do_write)
                    plan_version = directory.version
                in_plan = planned > 0
                planned -= 1
                addr = base + burst.index * stride
                if do_read:
                    self._checked_access(thread, addr, False, word, in_plan)
                if do_write:
                    self._checked_access(thread, addr, True, word, in_plan)
            if work:
                self._do_work(thread, work)
            burst.index += 1
        if burst.index >= count and burst.repeat + 1 >= repeats_total:
            thread.burst = None
            return True
        return False

    def _checked_access(self, thread: SimThread, addr: int, is_write: bool,
                        size: int, planned: bool) -> None:
        """One access via the machine entry point, asserting the batch
        planner's HIT claim when ``planned``."""
        latency, kind, line = self.machine.access_tuple(
            thread.core, addr, is_write, thread.clock)
        if planned and kind != coherence.HIT:
            raise ValidationError(
                "vector-plan-mismatch",
                "vector kernel planned a private HIT but the machine "
                f"returned {kind!r}",
                access={"core": thread.core, "addr": addr, "line": line,
                        "is_write": is_write, "now": thread.clock,
                        "kind": kind, "latency": latency},
                expected=coherence.HIT, actual=kind)
        thread.clock += latency
        thread.instructions += 1
        thread.mem_accesses += 1
        thread.mem_cycles += latency
        pmu = self.pmu
        if pmu is not None:
            extra = pmu.on_access(thread.tid, thread.core, addr, is_write,
                                  latency, size, thread.clock)
            if extra:
                thread.clock += extra

    # -- callsite capture ----------------------------------------------------------

    def _capture_callsite(self, thread: SimThread) -> str:
        """Walk the thread's suspended generator frames for a callsite.

        Mirrors Cheetah's frame-pointer walk: it collects up to five
        entries and reports the innermost workload frame (the paper prints
        e.g. ``linear_regression-pthread.c: 139``).
        """
        frames = []
        generator = thread.generator
        depth = 0
        while generator is not None and depth < _CALLSITE_DEPTH:
            frame = getattr(generator, "gi_frame", None)
            if frame is None:
                break
            filename = os.path.basename(frame.f_code.co_filename)
            frames.append(f"{filename}:{frame.f_lineno}")
            generator = getattr(generator, "gi_yieldfrom", None)
            depth += 1
        if not frames:
            return "<unknown>"
        # The innermost workload frame (the deepest one that is not the
        # ThreadAPI helper in thread.py) is the allocation site.
        for entry in reversed(frames):
            if not entry.startswith("thread.py:"):
                return entry
        return frames[-1]
