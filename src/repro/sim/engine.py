"""Discrete-event engine: interleaves simulated threads by clock.

The engine implements the standard min-clock discipline: the thread with
the smallest clock always executes next, and it keeps executing until its
clock passes the next-smallest thread's clock (or it blocks/finishes).
This yields an exact interleaving of memory accesses across cores — the
property the cache-invalidation counts, and therefore the whole
false-sharing phenomenon, depend on — while amortising scheduling cost
over bursts of accesses.

The engine is also where cross-cutting instrumentation hooks in:

- an optional :class:`~repro.pmu.sampler.PMU` sees every access and every
  instruction batch, fires samples and charges sampling overhead;
- an optional *observer* (used by the Predator-style baseline) sees every
  access and charges a per-access instrumentation cost;
- the :class:`~repro.runtime.phases.PhaseTracker` is notified of every
  spawn and join so serial/parallel phases are known at all times.
"""

from __future__ import annotations

import heapq
import itertools
import os.path
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.errors import DeadlockError, SimulationError, ThreadError
from repro.heap.allocator import CheetahAllocator
from repro.runtime.phases import PhaseTracker
from repro.runtime.thread import SimThread, ThreadAPI, ThreadState, _BurstState
from repro.sim.machine import Machine
from repro.sim.ops import (
    Barrier, Fence, Free, Join, Load, LoopAccess, Malloc, Op, Spawn, Store,
    Work,
)
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable

_INFINITY = float("inf")
_CALLSITE_DEPTH = 5  # the paper collects five call-stack entries


class Observer:
    """Interface for full-instrumentation tools (Predator/Sheriff
    baselines).

    ``cost_per_access`` cycles are charged to the accessing thread for
    every access — the flat instrumentation overhead the paper's
    Section 4.2.3 comparison is about. ``on_access`` may additionally
    return an integer of *extra* cycles to charge for this particular
    access (page-fault-driven tools like Sheriff charge selectively).
    """

    cost_per_access: int = 0

    def on_access(self, tid: int, core: int, addr: int, is_write: bool,
                  latency: int, size: int, line: int) -> Optional[int]:
        raise NotImplementedError

    def on_thread_start(self, tid: int) -> None:  # pragma: no cover - hook
        pass


@dataclass
class RunResult:
    """Everything a finished simulation exposes.

    ``runtime`` is the main thread's final clock — the program's
    wall-clock time in cycles. Per-thread objects carry their own clocks
    and ground-truth access statistics; ``machine`` retains the coherence
    directory with ground-truth invalidation counts.
    """

    runtime: int
    threads: Dict[int, SimThread]
    phases: PhaseTracker
    machine: Machine
    allocator: CheetahAllocator
    symbols: SymbolTable
    steps: int
    return_value: Any = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def total_instructions(self) -> int:
        return sum(t.instructions for t in self.threads.values())

    @property
    def total_accesses(self) -> int:
        return sum(t.mem_accesses for t in self.threads.values())

    def thread_runtime(self, tid: int) -> int:
        return self.threads[tid].runtime


class Engine:
    """Runs one simulated program to completion."""

    def __init__(self, config: Optional[MachineConfig] = None,
                 machine: Optional[Machine] = None,
                 allocator: Optional[CheetahAllocator] = None,
                 symbols: Optional[SymbolTable] = None,
                 pmu: Optional[Any] = None,
                 observer: Optional[Observer] = None,
                 max_steps: int = 200_000_000):
        self.config = config or (machine.config if machine else MachineConfig())
        self.machine = machine or Machine(self.config)
        self.allocator = allocator or CheetahAllocator(
            line_size=self.config.cache_line_size)
        self.symbols = symbols or SymbolTable()
        self.pmu = pmu
        self.observer = observer
        self.phase_tracker = PhaseTracker()
        self.api = ThreadAPI()
        self.threads: Dict[int, SimThread] = {}
        self._tid_counter = itertools.count()
        self._max_steps = max_steps
        self._steps = 0
        self._ran = False
        # (cycle, callback) checkpoints, fired once when simulated time
        # first passes the cycle — the "interrupted by the user" hook the
        # paper's mid-run reporting needs (Section 2.4).
        self._checkpoints: List[tuple] = []
        # key -> threads currently waiting at that barrier.
        self._barriers: Dict[Any, List[SimThread]] = {}

    def add_checkpoint(self, cycle: int,
                       callback: Callable[["Engine", int], None]) -> None:
        """Invoke ``callback(engine, now)`` when simulated time passes
        ``cycle``. Must be registered before :meth:`run`."""
        if self._ran:
            raise SimulationError("checkpoints must be added before run()")
        self._checkpoints.append((cycle, callback))
        self._checkpoints.sort(key=lambda pair: pair[0])

    # -- program execution ---------------------------------------------------

    def run(self, main_fn: Callable[..., Any], *args: Any) -> RunResult:
        """Run ``main_fn(api, *args)`` as the main thread until completion."""
        if self._ran:
            raise SimulationError("an Engine instance can only run once")
        self._ran = True

        main = self._create_thread(main_fn, args, parent=None, start_clock=0,
                                   name="main")
        ready: List[tuple] = [(main.clock, main.tid)]
        threads = self.threads

        while ready:
            clock, tid = heapq.heappop(ready)
            thread = threads[tid]
            if thread.state is not ThreadState.RUNNABLE:
                continue
            if thread.clock != clock:
                heapq.heappush(ready, (thread.clock, tid))
                continue
            while self._checkpoints and clock >= self._checkpoints[0][0]:
                _, callback = self._checkpoints.pop(0)
                callback(self, clock)
            limit = ready[0][0] if ready else _INFINITY
            newly_runnable = self._advance(thread, limit)
            if thread.state is ThreadState.RUNNABLE:
                heapq.heappush(ready, (thread.clock, tid))
            for other in newly_runnable:
                heapq.heappush(ready, (other.clock, other.tid))

        unfinished = [t for t in threads.values()
                      if t.state is not ThreadState.FINISHED]
        if unfinished:
            blocked = ", ".join(repr(t) for t in unfinished)
            raise DeadlockError(f"threads never finished: {blocked}")
        if main.end_clock is None:
            raise SimulationError("main thread has no end clock")

        self.phase_tracker.finish(main.end_clock)
        return RunResult(
            runtime=main.end_clock,
            threads=dict(threads),
            phases=self.phase_tracker,
            machine=self.machine,
            allocator=self.allocator,
            symbols=self.symbols,
            steps=self._steps,
        )

    # -- thread lifecycle ------------------------------------------------------

    def _create_thread(self, fn: Callable[..., Any], args: tuple,
                       parent: Optional[SimThread], start_clock: int,
                       name: Optional[str] = None) -> SimThread:
        tid = next(self._tid_counter)
        core = tid % self.config.num_cores
        generator = fn(self.api, *args)
        if not hasattr(generator, "send"):
            raise ThreadError(
                f"thread function {fn!r} must be a generator function "
                "(use 'yield from api....' inside it)"
            )
        thread = SimThread(tid=tid, core=core, generator=generator,
                           start_clock=start_clock,
                           parent_tid=parent.tid if parent else None,
                           name=name or getattr(fn, "__name__", None))
        self.threads[tid] = thread
        if self.pmu is not None:
            thread.clock += self.pmu.on_thread_start(tid)
        if self.observer is not None:
            self.observer.on_thread_start(tid)
        return thread

    def _finish_thread(self, thread: SimThread) -> List[SimThread]:
        """Mark ``thread`` finished and wake any joiners."""
        thread.state = ThreadState.FINISHED
        thread.end_clock = thread.clock
        woken = []
        for waiter in thread.join_waiters:
            self._complete_join(waiter, thread)
            waiter.state = ThreadState.RUNNABLE
            woken.append(waiter)
        thread.join_waiters.clear()
        return woken

    def _complete_join(self, parent: SimThread, child: SimThread) -> None:
        assert child.end_clock is not None
        parent.clock = max(parent.clock, child.end_clock) + self.config.join_cost
        parent.pending_value = None
        self.phase_tracker.on_join(parent.tid, child.tid, parent.clock)

    # -- the scheduling quantum -------------------------------------------------

    def _advance(self, thread: SimThread, limit: float) -> List[SimThread]:
        """Run ``thread`` until its clock passes ``limit`` or it yields
        control (block/finish). Returns threads made runnable meanwhile."""
        woken: List[SimThread] = []
        while thread.clock <= limit:
            self._steps += 1
            if self._steps > self._max_steps:
                raise SimulationError(
                    f"exceeded max_steps={self._max_steps}; "
                    "likely an unbounded workload loop"
                )
            if thread.burst is not None:
                if not self._run_burst(thread, limit):
                    break  # burst paused at limit; thread stays runnable
                thread.pending_value = None
                continue_running = self._resume(thread, woken)
            else:
                continue_running = self._resume(thread, woken)
            if not continue_running:
                break
        return woken

    def _resume(self, thread: SimThread, woken: List[SimThread]) -> bool:
        """Resume the generator one op. Returns False when the thread
        blocked or finished (caller must stop advancing it)."""
        try:
            op = thread.generator.send(thread.pending_value)
        except StopIteration:
            woken.extend(self._finish_thread(thread))
            if thread.parent_tid is None:
                self._check_leaked_threads(thread)
            return False
        thread.pending_value = None
        return self._dispatch(thread, op, woken)

    def _check_leaked_threads(self, main: SimThread) -> None:
        live = [t for t in self.threads.values()
                if t.state is ThreadState.RUNNABLE and t is not main]
        if live:
            names = ", ".join(t.name for t in live)
            raise ThreadError(
                f"main thread exited while threads are still running: {names}"
            )

    # -- op dispatch ---------------------------------------------------------------

    def _dispatch(self, thread: SimThread, op: Op,
                  woken: List[SimThread]) -> bool:
        if type(op) is Load:
            self._access(thread, op.addr, False, op.size)
            return True
        if type(op) is Store:
            self._access(thread, op.addr, True, op.size)
            return True
        if type(op) is Work:
            self._do_work(thread, op.cycles)
            return True
        if type(op) is LoopAccess:
            if op.count and op.repeat:
                thread.burst = _BurstState(op)
            return True
        if type(op) is Malloc:
            callsite = op.callsite or self._capture_callsite(thread)
            addr = self.allocator.allocate(op.size, tid=thread.tid,
                                           callsite=callsite)
            thread.clock += self.config.alloc_cost
            thread.instructions += 1
            thread.pending_value = addr
            return True
        if type(op) is Free:
            self.allocator.free(op.addr, tid=thread.tid)
            thread.clock += self.config.alloc_cost
            thread.instructions += 1
            return True
        if type(op) is Spawn:
            thread.clock += self.config.spawn_cost
            child = self._create_thread(op.fn, op.args, parent=thread,
                                        start_clock=thread.clock,
                                        name=op.name)
            self.phase_tracker.on_spawn(thread.tid, child.tid, thread.clock)
            woken.append(child)
            thread.pending_value = child.tid
            return True
        if type(op) is Join:
            return self._do_join(thread, op.tid)
        if type(op) is Fence:
            thread.clock += 1
            thread.instructions += 1
            return True
        if type(op) is Barrier:
            return self._do_barrier(thread, op, woken)
        raise SimulationError(f"thread {thread.tid} yielded unknown op {op!r}")

    #: Cycles charged per barrier crossing (futex wake analogue).
    BARRIER_COST = 50

    def _do_barrier(self, thread: SimThread, op: Barrier,
                    woken: List[SimThread]) -> bool:
        waiting = self._barriers.setdefault(op.key, [])
        for earlier in waiting:
            if earlier.tid == thread.tid:
                raise ThreadError(
                    f"thread {thread.tid} re-entered barrier {op.key!r} "
                    "it is already waiting on")
        waiting.append(thread)
        if len(waiting) < op.parties:
            thread.state = ThreadState.BLOCKED
            return False
        # Last arrival: release the whole round together.
        release = max(t.clock for t in waiting) + self.BARRIER_COST
        del self._barriers[op.key]
        for waiter in waiting:
            waiter.barrier_waits += release - self.BARRIER_COST - waiter.clock
            waiter.clock = release
            if waiter is not thread:
                waiter.state = ThreadState.RUNNABLE
                waiter.pending_value = None
                woken.append(waiter)
        return True

    def _do_join(self, thread: SimThread, target_tid: int) -> bool:
        target = self.threads.get(target_tid)
        if target is None:
            raise ThreadError(f"join of unknown thread {target_tid}")
        if target is thread:
            raise ThreadError(f"thread {thread.tid} cannot join itself")
        if target.state is ThreadState.FINISHED:
            self._complete_join(thread, target)
            return True
        thread.state = ThreadState.BLOCKED
        target.join_waiters.append(thread)
        return False

    def _do_work(self, thread: SimThread, cycles: int) -> None:
        thread.clock += cycles
        thread.instructions += cycles
        if self.pmu is not None:
            extra = self.pmu.on_work(thread.tid, cycles)
            if extra:
                thread.clock += extra

    # -- memory accesses --------------------------------------------------------

    def _access(self, thread: SimThread, addr: int, is_write: bool,
                size: int) -> None:
        outcome = self.machine.access(thread.core, addr, is_write,
                                      thread.clock)
        latency = outcome.latency
        thread.clock += latency
        thread.instructions += 1
        thread.mem_accesses += 1
        thread.mem_cycles += latency
        observer = self.observer
        if observer is not None:
            extra = observer.on_access(thread.tid, thread.core, addr,
                                       is_write, latency, size,
                                       outcome.line)
            thread.clock += observer.cost_per_access
            if extra:
                thread.clock += extra
        pmu = self.pmu
        if pmu is not None:
            extra = pmu.on_access(thread.tid, thread.core, addr, is_write,
                                  latency, size, thread.clock)
            if extra:
                thread.clock += extra

    def _run_burst(self, thread: SimThread, limit: float) -> bool:
        """Execute burst iterations until the clock passes ``limit``.

        Returns True when the burst completed (the generator should be
        resumed), False when it paused because the thread overran its
        scheduling quantum.
        """
        burst = thread.burst
        assert burst is not None
        op = burst.op
        word = self.config.word_size
        while thread.clock <= limit:
            if burst.index >= op.count:
                burst.index = 0
                burst.repeat += 1
            if burst.repeat >= op.repeat:
                thread.burst = None
                return True
            addr = op.base + burst.index * op.stride
            self._steps += 1
            if op.read:
                self._access(thread, addr, False, word)
            if op.write:
                self._access(thread, addr, True, word)
            if op.work:
                self._do_work(thread, op.work)
            burst.index += 1
        # Completed exactly at the boundary?
        if burst.index >= op.count and burst.repeat + 1 >= op.repeat:
            thread.burst = None
            return True
        return False

    # -- callsite capture ----------------------------------------------------------

    def _capture_callsite(self, thread: SimThread) -> str:
        """Walk the thread's suspended generator frames for a callsite.

        Mirrors Cheetah's frame-pointer walk: it collects up to five
        entries and reports the innermost workload frame (the paper prints
        e.g. ``linear_regression-pthread.c: 139``).
        """
        frames = []
        generator = thread.generator
        depth = 0
        while generator is not None and depth < _CALLSITE_DEPTH:
            frame = getattr(generator, "gi_frame", None)
            if frame is None:
                break
            filename = os.path.basename(frame.f_code.co_filename)
            frames.append(f"{filename}:{frame.f_lineno}")
            generator = getattr(generator, "gi_yieldfrom", None)
            depth += 1
        if not frames:
            return "<unknown>"
        # The innermost workload frame (the deepest one that is not the
        # ThreadAPI helper in thread.py) is the allocation site.
        for entry in reversed(frames):
            if not entry.startswith("thread.py:"):
                return entry
        return frames[-1]
