"""Simulated multicore machine substrate.

The paper evaluates Cheetah on a 48-core AMD Opteron with private L1/L2
caches and a shared L3. This package substitutes a deterministic
discrete-event model of that hardware:

- :mod:`repro.sim.params` — machine configuration and the cycle-latency model;
- :mod:`repro.sim.coherence` — a MESI-style per-line directory that yields
  ground-truth invalidation counts;
- :mod:`repro.sim.machine` — the machine facade mapping (core, address,
  read/write) to an access latency;
- :mod:`repro.sim.ops` — the operations a simulated thread may perform;
- :mod:`repro.sim.engine` — the min-clock discrete-event scheduler that
  interleaves threads and runs whole programs.
"""

from repro.sim.coherence import CoherenceDirectory, LineState
from repro.sim.machine import AccessOutcome, Machine
from repro.sim.ops import (
    Barrier,
    Fence,
    Free,
    Join,
    Load,
    LoopAccess,
    Malloc,
    Spawn,
    Store,
    Work,
)
from repro.sim.params import LatencyModel, MachineConfig

# Engine/RunResult are exposed lazily: the engine module imports the
# threading runtime, which itself imports repro.sim.ops, so an eager
# import here would be circular.
def __getattr__(name):
    if name in ("Engine", "RunResult"):
        from repro.sim import engine
        return getattr(engine, name)
    raise AttributeError(f"module 'repro.sim' has no attribute {name!r}")


__all__ = [
    "AccessOutcome",
    "Barrier",
    "CoherenceDirectory",
    "Engine",
    "Fence",
    "Free",
    "Join",
    "LatencyModel",
    "LineState",
    "Load",
    "LoopAccess",
    "MachineConfig",
    "Machine",
    "Malloc",
    "RunResult",
    "Spawn",
    "Store",
    "Work",
]
