"""Machine configuration and the cycle-latency model.

The latency model assigns a cycle cost to every memory-access outcome the
coherence directory can produce. The defaults are loosely calibrated to the
paper's AMD Opteron testbed (1.6 GHz, private L1/L2, shared L3): an L1 hit
costs a few cycles, a fetch from the shared level tens of cycles, a
coherence miss (the false-sharing penalty) on the order of a hundred
cycles, and a cold fetch from memory a couple of hundred cycles.

Only the *ratios* between these costs matter for reproducing the paper's
shapes; absolute values are in simulated cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import ConfigBase
from repro.errors import ConfigError


@dataclass(frozen=True)
class LatencyModel(ConfigBase):
    """Cycle costs per memory-access outcome.

    Attributes:
        l1_hit: access served by the core's private cache.
        shared_clean: line fetched from the shared cache (another core holds
            it clean, or it was recently evicted there).
        coherence_read: read of a line that another core has modified; the
            dirty line must be forwarded/downgraded.
        coherence_write: write to a line present in other cores' caches;
            their copies must be invalidated and the line transferred.
        upgrade: write by a core that already holds the line shared;
            other sharers are invalidated but no data transfer is needed.
        cold: first-touch fetch from main memory.
        prefetched: a cold or shared fetch hidden by the stride
            prefetcher (sequential streams); modern cores hide most
            sequential misses this way, which is why serial input-reading
            phases run at near-hit latency on real hardware.
    """

    l1_hit: int = 3
    shared_clean: int = 30
    coherence_read: int = 55
    coherence_write: int = 65
    upgrade: int = 45
    cold: int = 150
    prefetched: int = 5

    def validate(self) -> None:
        """Raise :class:`ConfigError` if any cost is non-positive or
        the ordering between costs is physically implausible."""
        costs = {
            "l1_hit": self.l1_hit,
            "shared_clean": self.shared_clean,
            "coherence_read": self.coherence_read,
            "coherence_write": self.coherence_write,
            "upgrade": self.upgrade,
            "cold": self.cold,
            "prefetched": self.prefetched,
        }
        for name, value in costs.items():
            if value <= 0:
                raise ConfigError(f"latency {name} must be positive, got {value}")
        if self.l1_hit >= self.shared_clean:
            raise ConfigError("l1_hit latency must be below shared_clean latency")
        if self.shared_clean >= self.coherence_write:
            raise ConfigError(
                "shared_clean latency must be below coherence_write latency"
            )


@dataclass(frozen=True)
class MachineConfig(ConfigBase):
    """Static description of the simulated machine.

    Attributes:
        num_cores: number of physical cores. Threads are bound round-robin
            to cores (the paper binds threads to cores on its NUMA testbed).
        cache_line_size: cache-line size in bytes; must be a power of two.
            The paper's machine uses 64-byte lines; the streamcluster case
            study hinges on code that assumed 32-byte lines.
        word_size: granularity of Cheetah's word-level shadow tracking.
        latency: the cycle-cost model.
        spawn_cost: cycles charged to a parent thread per thread creation
            (pthread_create analogue).
        join_cost: cycles charged to a parent thread per join.
        alloc_cost: cycles charged for a malloc/free call.
        kernel: burst-execution kernel selection — ``"fused"`` (the
            scalar per-access loop), ``"vector"`` (the array-batched
            kernel in :mod:`repro.sim.kernel`), or ``"auto"`` (vector
            whenever no observer/sanitizer/obs hook needs to see every
            access, fused otherwise). All selections are bit-identical;
            this is purely a performance knob.
        mode: execution mode — ``"simulate"`` (the default: run every
            access through the coherence machine), ``"predict"``
            (profile a short simulated prefix, then predict
            invalidations/findings/runtime analytically in O(lines) —
            see :mod:`repro.predict`), or ``"sampled"`` (fully simulate
            a few representative bursts and extrapolate with confidence
            intervals). Unlike ``kernel``, the non-default modes produce
            *estimates*, tagged ``predicted=true`` in the run metadata.
        numa_nodes: number of NUMA nodes cores are striped across
            (``node_of(core) = core % numa_nodes``). The default 1
            models the paper's single-node view; with >1, the
            remote-latency penalties below apply. Purely additive: with
            the penalties at 0 the simulation is bit-identical to a
            single-node machine.
        remote_fetch_penalty: extra cycles for a cold/shared fetch whose
            line's home node (``line % numa_nodes``) is not the
            accessing core's node.
        remote_transfer_penalty: extra cycles for a coherence transfer
            (dirty-line forward or invalidating write) sourced from a
            core on another node — the cost that makes cross-node false
            sharing hurt disproportionately on real NUMA machines.
    """

    num_cores: int = 48
    cache_line_size: int = 64
    word_size: int = 4
    latency: LatencyModel = field(default_factory=LatencyModel)
    spawn_cost: int = 500
    join_cost: int = 200
    alloc_cost: int = 100
    kernel: str = "auto"
    mode: str = "simulate"
    numa_nodes: int = 1
    remote_fetch_penalty: int = 0
    remote_transfer_penalty: int = 0

    def __post_init__(self) -> None:
        if self.num_cores < 1:
            raise ConfigError(f"num_cores must be >= 1, got {self.num_cores}")
        if self.cache_line_size < self.word_size:
            raise ConfigError("cache_line_size must be >= word_size")
        if self.cache_line_size & (self.cache_line_size - 1):
            raise ConfigError(
                f"cache_line_size must be a power of two, got {self.cache_line_size}"
            )
        if self.word_size & (self.word_size - 1) or self.word_size <= 0:
            raise ConfigError(f"word_size must be a power of two, got {self.word_size}")
        if self.kernel not in ("fused", "vector", "auto"):
            raise ConfigError(
                f"kernel must be 'fused', 'vector' or 'auto', got {self.kernel!r}"
            )
        if self.mode not in ("simulate", "predict", "sampled"):
            raise ConfigError(
                f"mode must be 'simulate', 'predict' or 'sampled', "
                f"got {self.mode!r}"
            )
        if self.numa_nodes < 1:
            raise ConfigError(
                f"numa_nodes must be >= 1, got {self.numa_nodes}")
        if self.numa_nodes > self.num_cores:
            raise ConfigError(
                f"numa_nodes must be <= num_cores, got {self.numa_nodes} "
                f"nodes for {self.num_cores} cores")
        if self.remote_fetch_penalty < 0:
            raise ConfigError(
                f"remote_fetch_penalty must be >= 0, "
                f"got {self.remote_fetch_penalty}")
        if self.remote_transfer_penalty < 0:
            raise ConfigError(
                f"remote_transfer_penalty must be >= 0, "
                f"got {self.remote_transfer_penalty}")
        self.latency.validate()
        # line_shift is consulted on every simulated access; precompute it
        # once so the hot path reads a plain int instead of re-deriving it
        # (the dataclass is frozen, hence object.__setattr__).
        object.__setattr__(self, "_line_shift",
                           self.cache_line_size.bit_length() - 1)

    @property
    def line_shift(self) -> int:
        """log2 of the cache-line size, for address-to-line bit shifting."""
        return self._line_shift

    def line_of(self, addr: int) -> int:
        """Cache-line index containing ``addr``."""
        return addr >> self.line_shift

    def word_of(self, addr: int) -> int:
        """Word index (within the whole address space) containing ``addr``."""
        return addr // self.word_size

    def node_of(self, core: int) -> int:
        """NUMA node of ``core`` (cores striped round-robin over nodes)."""
        return core % self.numa_nodes

    def home_node(self, line: int) -> int:
        """Home NUMA node of cache line ``line`` (interleaved pages)."""
        return line % self.numa_nodes
