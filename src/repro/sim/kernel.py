"""Array-batched burst kernel: batch planning and the vectorized jitter stream.

The engine's fused burst loop (PR 1) pays a fixed per-access cost in
Python bytecode: probe the directory, branch on the HIT predicate, step
the xorshift jitter stream, update five counters. This module provides
the two pieces that let the engine charge a whole *span* of provably
private-HIT iterations in O(1) bookkeeping instead:

- :func:`plan_span` — the batch planner. Given a burst's position it
  walks the cache lines the upcoming iterations touch (one directory
  probe per *line*, not per access) and returns how many iterations are
  provably private HITs for the accessing core. Everything inside that
  span is latency ``l1_hit + jitter draw`` with no directory mutation,
  so the engine may account it wholesale; everything at the span edge
  (first touch, coherence transition, PMU fire, quantum expiry) escapes
  to the existing scalar paths.

- :class:`JitterStream` — a buffered lookahead over the machine's global
  xorshift64 timing-jitter stream. The stream is *shared global state*
  (one draw per access, in global interleaving order), so batching k
  accesses needs the sum of the next k draws and the stream state after
  them. Draws are precomputed in bulk — with numpy when available
  (`pip install .[perf]`), via GF(2) jump tables that advance the whole
  buffer with eight table lookups per doubling — and consumed in exactly
  the order the scalar path would have drawn them.

Correctness is enforced end to end: the vector kernel must produce
bit-identical clocks, counters, jitter stream positions, pin tables and
PMU traps to the fused loop and the reference oracle (see
``repro validate`` and tests/test_kernel.py).

numpy is strictly optional: the pure-Python fallback batches the same
way, just with a scalar draw generator. Set ``REPRO_NO_NUMPY=1`` to
force the fallback even when numpy is importable (CI runs the whole
validation net both ways).
"""

from __future__ import annotations

import os
import sys
from collections import OrderedDict
from typing import List, Optional, Tuple

try:
    if os.environ.get("REPRO_NO_NUMPY"):
        raise ImportError("numpy disabled via REPRO_NO_NUMPY")
    import numpy
except ImportError:  # pragma: no cover - exercised via REPRO_NO_NUMPY in CI
    numpy = None

#: True when draw generation is numpy-accelerated.
HAVE_NUMPY = numpy is not None

_MASK = 0xFFFFFFFFFFFFFFFF

#: Minimum provably-HIT span worth batching; below this the fused scalar
#: loop's constant factor wins (plan + stream sync cost a few probes).
MIN_SPAN = 12

#: Directory probes one plan call may spend before giving up and letting
#: the engine batch what was found so far (bounds plan cost on huge bursts).
PLAN_PROBE_CAP = 4096


class PlanCache:
    """Bounded LRU map from burst-shape keys to directory versions.

    The engine caches whole-burst plan proofs — "every line this burst
    sweeps was private for this core at directory version V" — keyed by
    ``(core, base, stride, count, is_write)``. A proof stays valid while
    the directory version is unchanged, so a hit skips all per-line
    probing. Long multithreaded runs over many distinct burst shapes
    (e.g. per-thread heap chunks at many thread counts) used to grow the
    backing dict until it was dropped wholesale; this cache instead
    evicts the least-recently-used entry once ``cap`` is reached, so the
    hot shapes of the current phase survive a cold sweep of one-shot
    shapes.
    """

    __slots__ = ("cap", "_entries")

    def __init__(self, cap: int = 4096):
        if cap < 1:
            raise ValueError(f"PlanCache cap must be >= 1, got {cap}")
        self.cap = cap
        self._entries: "OrderedDict[Tuple, int]" = OrderedDict()

    def get(self, key: Tuple) -> Optional[int]:
        """The cached directory version for ``key`` (refreshes LRU
        recency), or ``None``."""
        entries = self._entries
        version = entries.get(key)
        if version is not None:
            entries.move_to_end(key)
        return version

    def put(self, key: Tuple, version: int) -> None:
        """Record ``key`` as proven at ``version``; evicts the
        least-recently-used entry when full."""
        entries = self._entries
        if key in entries:
            entries[key] = version
            entries.move_to_end(key)
            return
        if len(entries) >= self.cap:
            entries.popitem(last=False)
        entries[key] = version

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Tuple) -> bool:
        return key in self._entries

    def keys(self) -> List[Tuple]:
        """Keys in LRU order (least recently used first); for tests."""
        return list(self._entries)

# Draw-buffer management: extend in chunks, compact once consumed past
# the threshold so a long run's buffer stays bounded.
_CHUNK = 1 << 16
_COMPACT_AT = 1 << 17
#: Lookahead kept buffered past every span so the scalar draws of the
#: following escape stay searchable by :meth:`JitterStream.sync`.
_SLACK = 64

#: Byte-column order for the uint8 view in :func:`_np_apply`.
_BIG_ENDIAN = sys.byteorder == "big"


def xorshift_step(state: int) -> int:
    """One step of the machine's xorshift64 jitter PRNG (the reference)."""
    state ^= (state << 13) & _MASK
    state ^= state >> 7
    state ^= (state << 17) & _MASK
    return state


# -- GF(2) jump tables -------------------------------------------------------
#
# xorshift64 is linear over GF(2): each of the three update lines xors
# the state with a shift of itself. The n-step map is therefore a 64x64
# bit matrix, and f^(2^k) is obtained by squaring. A matrix is stored as
# byte tables: eight 256-entry lookup tables whose xor is the image of a
# state, so applying any precomputed jump to a state costs eight lookups
# — and applying it to a whole numpy buffer costs eight fancy-indexed
# gathers, which is what makes bulk draw generation cheap.

_LEVEL_COLS: List[List[int]] = []   # _LEVEL_COLS[k][b] = f^(2^k)(1 << b)
_LEVEL_TABS: List[List[List[int]]] = []   # byte tables per level
_NP_LEVEL_TABS: List[list] = []     # numpy copies, converted lazily


def _tables_from_cols(cols: List[int]) -> List[List[int]]:
    """Expand 64 basis images into eight 256-entry byte-lookup tables."""
    tabs = []
    for byte in range(8):
        base = byte * 8
        table = [0] * 256
        for value in range(1, 256):
            low = value & -value
            table[value] = (table[value ^ low]
                            ^ cols[base + low.bit_length() - 1])
        tabs.append(table)
    return tabs


def _apply_tables(tabs: List[List[int]], state: int) -> int:
    return (tabs[0][state & 255]
            ^ tabs[1][(state >> 8) & 255]
            ^ tabs[2][(state >> 16) & 255]
            ^ tabs[3][(state >> 24) & 255]
            ^ tabs[4][(state >> 32) & 255]
            ^ tabs[5][(state >> 40) & 255]
            ^ tabs[6][(state >> 48) & 255]
            ^ tabs[7][(state >> 56) & 255])


def _ensure_level(k: int) -> None:
    while len(_LEVEL_TABS) <= k:
        if not _LEVEL_TABS:
            cols = [xorshift_step(1 << bit) for bit in range(64)]
        else:
            tabs = _LEVEL_TABS[-1]
            cols = [_apply_tables(tabs, col) for col in _LEVEL_COLS[-1]]
        _LEVEL_COLS.append(cols)
        _LEVEL_TABS.append(_tables_from_cols(cols))


def jump(state: int, n: int) -> int:
    """``f^n(state)`` for the xorshift map, in O(log n) table applies."""
    k = 0
    while n:
        if n & 1:
            _ensure_level(k)
            state = _apply_tables(_LEVEL_TABS[k], state)
        n >>= 1
        k += 1
    return state


def _np_level(k: int):
    _ensure_level(k)
    while len(_NP_LEVEL_TABS) <= k:
        tabs = _LEVEL_TABS[len(_NP_LEVEL_TABS)]
        _NP_LEVEL_TABS.append(
            [numpy.array(table, dtype=numpy.uint64) for table in tabs])
    return _NP_LEVEL_TABS[k]


def _np_apply(np_tabs, states):
    """Apply one jump level to a whole uint64 state buffer.

    The byte columns come from a uint8 view of the buffer instead of
    shift-and-mask passes: one reshape replaces eight shifts and eight
    masks, leaving just the eight gathers and seven xors.
    """
    if not states.flags.c_contiguous:
        states = numpy.ascontiguousarray(states)
    cols = states.view(numpy.uint8).reshape(-1, 8)
    if _BIG_ENDIAN:
        cols = cols[:, ::-1]
    out = np_tabs[0][cols[:, 0]]
    for byte in range(1, 8):
        out ^= np_tabs[byte][cols[:, byte]]
    return out


# -- the vectorized jitter stream -------------------------------------------


class JitterStream:
    """Buffered lookahead over the machine's global jitter stream.

    The machine's ``_jitter_state`` stays the canonical stream position:
    every scalar consumer (``Machine.access_tuple``) keeps drawing from
    it directly. The stream buffers *future* states/draws from an anchor
    state and tracks how many it has handed out (``pos``); before each
    batched span the engine calls :meth:`sync` to realign with whatever
    the scalar paths consumed in between, then :meth:`take_span` to
    consume the next ``k`` draws in one step, then flushes
    ``state_at()`` back into the machine.
    """

    __slots__ = ("mod", "anchor", "pos", "_size",
                 "_states", "_draws", "_nstates", "_nprefix")

    def __init__(self, jitter: int, anchor: int):
        self.mod = jitter + 1
        self.rebase(anchor)

    def rebase(self, anchor: int) -> None:
        """Restart the buffer from ``anchor`` (current machine state)."""
        self.anchor = anchor
        self.pos = 0
        self._size = 0
        self._states: Optional[List[int]] = None if HAVE_NUMPY else []
        self._draws: Optional[List[int]] = None if HAVE_NUMPY else []
        self._nstates = None
        self._nprefix = None

    def state_at(self) -> int:
        """Stream state after the draws consumed so far."""
        pos = self.pos
        if pos == 0:
            return self.anchor
        if HAVE_NUMPY:
            return int(self._nstates[pos - 1])
        return self._states[pos - 1]

    def sync(self, machine_state: int) -> None:
        """Realign with the machine's canonical stream position.

        Scalar escapes (slow-path accesses, fused tails) consume draws
        directly from the machine; afterwards the machine's state sits
        somewhere in (or past) our buffered lookahead. Search the
        buffered tail for it — a hit just advances ``pos``; a miss means
        the scalar paths ran past the buffer, so restart from the
        machine's state.
        """
        if machine_state == self.state_at():
            return
        pos = self.pos
        if HAVE_NUMPY:
            if self._nstates is not None and pos < self._size:
                states = self._nstates
                # Scalar escapes usually consume a handful of draws, so
                # probe a short window ahead before paying for a
                # full-tail vectorized search (which allocates a
                # buffer-sized temporary per call).
                near_end = min(pos + 16, self._size)
                for i in range(pos, near_end):
                    if int(states[i]) == machine_state:
                        self.pos = i + 1
                        return
                if near_end < self._size:
                    tail = states[near_end:self._size]
                    hits = numpy.flatnonzero(
                        tail == numpy.uint64(machine_state))
                    if hits.size:
                        self.pos = near_end + int(hits[0]) + 1
                        return
        else:
            try:
                found = self._states.index(machine_state, pos, self._size)
            except ValueError:
                pass
            else:
                self.pos = found + 1
                return
        self.rebase(machine_state)

    def take_span(self, n: int) -> int:
        """Consume the next ``n`` draws; return their sum.

        The caller must flush :meth:`state_at` back into the machine so
        scalar consumers continue from the right position.
        """
        total = 0
        while n:
            pos = self.pos
            if pos >= _COMPACT_AT:
                # Bound the buffer: drop the consumed prefix and restart
                # from the current position.
                self.rebase(self.state_at())
                pos = 0
            if self._size - pos < n + _SLACK:
                # Extend past the span by a slack margin: scalar escapes
                # after it (fused tails, slow-path accesses) consume a
                # few draws directly from the machine, and sync() can
                # only catch up within the buffer — running past its end
                # would force a rebase and a rebuild from scratch.
                self._extend(pos + min(max(n + _SLACK, 1024), _CHUNK))
            take = min(n, self._size - pos)
            total += self._span_sum(pos, take)
            self.pos = pos + take
            n -= take
        return total

    # -- internals --------------------------------------------------------

    def _span_sum(self, pos: int, k: int) -> int:
        if HAVE_NUMPY:
            prefix = self._nprefix
            return int(prefix[pos + k] - prefix[pos])
        return sum(self._draws[pos:pos + k])

    def _extend(self, need: int) -> None:
        """Grow the buffer to hold at least ``need`` draws from the anchor."""
        if need <= self._size:
            return
        if HAVE_NUMPY:
            states = self._nstates
            if states is None:
                states = numpy.array([xorshift_step(self.anchor)],
                                     dtype=numpy.uint64)
            size = len(states)
            old = self._size
            # Prefix-doubling: the buffer holds f^1..f^size(anchor); one
            # jump-level apply appends f^(size+1)..f^(2*size) in order.
            # Sizes stay powers of two, so the level index is log2(size)
            # and almost all work happens on large arrays.
            while size < need:
                states = numpy.concatenate(
                    (states, _np_apply(_np_level(size.bit_length() - 1),
                                       states)))
                size *= 2
            self._nstates = states
            # Extend the running prefix incrementally: cumsum only the
            # appended draws, offset by the previous running total.
            prefix = numpy.empty(size + 1, dtype=numpy.uint64)
            if old and self._nprefix is not None:
                prefix[:old + 1] = self._nprefix[:old + 1]
            else:
                old = 0
                prefix[0] = 0
            numpy.cumsum(states[old:] % numpy.uint64(self.mod),
                         out=prefix[old + 1:])
            if old:
                prefix[old + 1:] += prefix[old]
            self._nprefix = prefix
            self._size = size
            return
        states = self._states
        state = states[-1] if states else self.anchor
        grow = max(need - self._size, 256)
        fresh = []
        append = fresh.append
        mask = _MASK
        for _ in range(grow):
            state ^= (state << 13) & mask
            state ^= state >> 7
            state ^= (state << 17) & mask
            append(state)
        states.extend(fresh)
        mod = self.mod
        self._draws.extend([value % mod for value in fresh])
        self._size = len(states)


# -- the batch planner -------------------------------------------------------


def plan_span(machine, core: int, base: int, stride: int, count: int,
              index: int, left_total: int, is_write: bool,
              probe_cap: int = PLAN_PROBE_CAP) -> int:
    """Iterations from the burst's current position that are provably
    private HITs for ``core``.

    Walks the cache lines the upcoming iterations touch, in iteration
    order, asking :meth:`Machine.line_is_private` per line — one probe
    per line, amortized over every access that lands on it. Stops at the
    first line that is absent or not privately held (the engine escapes
    to the scalar slow path there: first touch or coherence transition).
    If a whole sweep's line set verifies, every remaining repeat revisits
    exactly the same lines, so the rest of the burst is covered.

    A write iteration requires exclusive-modified ownership, which
    subsumes the read predicate, so read+write bursts plan on the write
    predicate alone.
    """
    lines_get = machine._dirlines.get
    private = machine.line_is_private
    line_shift = machine._line_shift
    if stride == 0 or count == 1:
        state = lines_get(base >> line_shift)
        if state is not None and private(core, state, is_write):
            return left_total
        return 0
    per_line = 0 < stride <= (1 << line_shift)
    covered = 0
    i = index
    probes = 0
    while covered < left_total and probes < probe_cap:
        addr = base + i * stride
        line = addr >> line_shift
        state = lines_get(line)
        if state is None or not private(core, state, is_write):
            return covered
        probes += 1
        if per_line:
            # First iteration index past this line (ceil division).
            nxt = (((line + 1) << line_shift) - base + stride - 1) // stride
            if nxt > count:
                nxt = count
        else:
            nxt = i + 1
        covered += nxt - i
        i = nxt
        if i >= count:
            i = 0
            if covered >= count:
                # Full sweep verified; later repeats revisit the same lines.
                return left_total
    if covered > left_total:
        covered = left_total
    return covered
