"""MESI-style cache-coherence directory.

This is the ground truth the whole reproduction rests on: false sharing is,
by definition, coherence traffic between cores that access disjoint words
of one line. The directory tracks, for every cache line ever touched,
which cores hold a copy and whether one of them holds it dirty, and it
classifies each access into one of the outcomes priced by
:class:`repro.sim.params.LatencyModel`.

Capacity is infinite by default (matching the paper's Assumption 2 for the
*detector*; for the *machine* it simply means we model coherence and cold
misses, not capacity misses). A finite-capacity per-core LRU mode is
available for sensitivity studies.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Set

from repro.errors import ConfigError

# Access outcome tags, consumed by Machine to price latency.
HIT = "hit"
SHARED_CLEAN = "shared_clean"
COHERENCE_READ = "coherence_read"
COHERENCE_WRITE = "coherence_write"
UPGRADE = "upgrade"
COLD = "cold"


class LineState:
    """Directory state for one cache line.

    ``holders`` is the set of cores with a valid copy; ``dirty_owner`` is
    the single core holding the line modified, if any (when set, it is the
    only holder). ``ever_cached`` records whether the line has been fetched
    before, so a re-fetch after invalidation is priced as a shared-level
    fetch rather than a cold miss.

    A ``__slots__`` class rather than a dataclass: the engine's fused
    burst loop probes ``dirty_owner`` / ``holders`` on every simulated
    access, and slot access avoids the per-instance ``__dict__``. One
    instance per line is created on first touch and then only mutated in
    place — never replaced in the directory's line table (the fused loop
    relies on this to probe once per address).
    """

    __slots__ = ("holders", "dirty_owner", "ever_cached", "invalidations")

    def __init__(self, holders: Optional[Set[int]] = None,
                 dirty_owner: Optional[int] = None,
                 ever_cached: bool = False, invalidations: int = 0):
        self.holders = set() if holders is None else holders
        self.dirty_owner = dirty_owner
        self.ever_cached = ever_cached
        self.invalidations = invalidations

    def __repr__(self) -> str:
        return (f"LineState(holders={self.holders!r}, "
                f"dirty_owner={self.dirty_owner!r}, "
                f"ever_cached={self.ever_cached!r}, "
                f"invalidations={self.invalidations!r})")


class CoherenceDirectory:
    """Tracks MESI-like per-line sharing state across all cores.

    The directory exposes one operation, :meth:`access`, which mutates the
    sharing state and returns the outcome tag. It also counts ground-truth
    invalidation events per line (one event per write that removes the line
    from at least one other core's cache), which the test-suite and the
    Predator baseline use to validate Cheetah's sampled estimates.
    """

    def __init__(self, line_shift: int, capacity_lines: Optional[int] = None):
        """Create a directory for ``2**line_shift``-byte lines.

        Args:
            line_shift: log2 of the cache-line size.
            capacity_lines: if given, each core's private cache holds at
                most this many lines with LRU replacement; ``None`` means
                infinite private caches.
        """
        if not isinstance(line_shift, int) or line_shift < 0:
            raise ConfigError(
                f"line_shift must be a non-negative int, got {line_shift!r}"
            )
        if capacity_lines is not None and capacity_lines < 1:
            raise ConfigError(
                f"capacity_lines must be >= 1, got {capacity_lines}"
            )
        self._line_shift = line_shift
        self._lines: Dict[int, LineState] = {}
        self._capacity = capacity_lines
        # Monotone mutation counter: bumped on every dispatch through
        # :meth:`access` (the only entry point that can change sharing
        # state). The vector kernel's checked mode caches a batch plan
        # and revalidates it whenever this counter moved — private HITs
        # taken on the machine's fast path never come through here, so
        # an unchanged version proves the planned lines are untouched.
        self.version = 0
        # Per-core LRU of resident lines; only maintained in finite mode.
        self._resident: Dict[int, OrderedDict] = {}
        # line -> core for lines held exclusive-modified by one core. This
        # mirrors ``dirty_owner`` and exists so Machine's hot path can
        # answer "is this a private hit?" with one dict probe instead of
        # full MESI dispatch: when the accessing core is the dirty owner,
        # both reads and writes are HITs with no state transition.
        self._exclusive: Dict[int, int] = {}

    @classmethod
    def for_line_size(cls, line_size: int,
                      capacity_lines: Optional[int] = None
                      ) -> "CoherenceDirectory":
        """Create a directory for ``line_size``-byte lines.

        Validates that ``line_size`` is a power of two: the
        ``bit_length() - 1`` shift silently mis-maps addresses otherwise.
        """
        if line_size <= 0 or line_size & (line_size - 1):
            raise ConfigError(
                f"line_size must be a power of two, got {line_size}"
            )
        return cls(line_size.bit_length() - 1, capacity_lines=capacity_lines)

    @property
    def line_shift(self) -> int:
        return self._line_shift

    def exclusive_owner(self, line: int) -> Optional[int]:
        """Core holding ``line`` exclusive-modified, if any."""
        return self._exclusive.get(line)

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def state_of(self, line: int) -> Optional[LineState]:
        """Directory entry for ``line``, or None if never accessed."""
        return self._lines.get(line)

    def invalidations_of(self, line: int) -> int:
        """Ground-truth invalidation count for ``line``."""
        state = self._lines.get(line)
        return state.invalidations if state else 0

    def total_invalidations(self) -> int:
        """Sum of ground-truth invalidations over every line."""
        return sum(s.invalidations for s in self._lines.values())

    def lines_with_invalidations(self, minimum: int = 1) -> Dict[int, int]:
        """Map of line -> invalidation count for lines at or above ``minimum``."""
        return {
            line: s.invalidations
            for line, s in self._lines.items()
            if s.invalidations >= minimum
        }

    def access(self, core: int, addr: int, is_write: bool) -> str:
        """Perform one access and return its outcome tag.

        The outcome describes what the access cost: a private hit, a fetch
        from the shared level, a coherence transfer, an ownership upgrade,
        or a cold miss. The read and write transition tables are merged
        into this one body: it sits on the machine's slow path and is
        called once per non-private access, so the two extra method calls
        a ``_read``/``_write`` split costs are measurable.
        """
        self.version += 1
        line = addr >> self._line_shift
        state = self._lines.get(line)
        if state is None:
            state = LineState()
            self._lines[line] = state
        holders = state.holders

        if is_write:
            if state.dirty_owner == core:
                # Already exclusive-modified here: pure private hit.
                outcome = HIT
            elif not holders:
                state.holders = {core}
                state.dirty_owner = core
                self._exclusive[line] = core
                outcome = SHARED_CLEAN if state.ever_cached else COLD
            elif holders == {core}:
                # Exclusive but clean: silent upgrade, still a private hit.
                state.dirty_owner = core
                self._exclusive[line] = core
                outcome = HIT
            else:
                # Other cores hold the line: invalidate their copies.
                state.invalidations += 1
                had_copy = core in holders
                if self._capacity is not None:
                    for other in holders:
                        if other != core:
                            self._evict_resident(other, line)
                state.holders = {core}
                state.dirty_owner = core
                self._exclusive[line] = core
                outcome = UPGRADE if had_copy else COHERENCE_WRITE
        else:
            if core in holders:
                outcome = HIT
            elif state.dirty_owner is not None:
                # Another core holds the line modified: forward + downgrade.
                state.dirty_owner = None
                del self._exclusive[line]
                holders.add(core)
                outcome = COHERENCE_READ
            else:
                holders.add(core)
                outcome = SHARED_CLEAN if state.ever_cached else COLD

        state.ever_cached = True
        if self._capacity is not None:
            self._touch_resident(core, line)
        return outcome

    # -- finite-capacity support -------------------------------------------

    def _touch_resident(self, core: int, line: int) -> None:
        lru = self._resident.setdefault(core, OrderedDict())
        lru.pop(line, None)
        lru[line] = True
        if len(lru) > self._capacity:
            victim, _ = lru.popitem(last=False)
            self._drop(core, victim)

    def _evict_resident(self, core: int, line: int) -> None:
        lru = self._resident.get(core)
        if lru is not None:
            lru.pop(line, None)

    def _drop(self, core: int, line: int) -> None:
        state = self._lines.get(line)
        if state is None:
            return
        state.holders.discard(core)
        if state.dirty_owner == core:
            state.dirty_owner = None
            self._exclusive.pop(line, None)
