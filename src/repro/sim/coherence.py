"""MESI-style cache-coherence directory.

This is the ground truth the whole reproduction rests on: false sharing is,
by definition, coherence traffic between cores that access disjoint words
of one line. The directory tracks, for every cache line ever touched,
which cores hold a copy and whether one of them holds it dirty, and it
classifies each access into one of the outcomes priced by
:class:`repro.sim.params.LatencyModel`.

Capacity is infinite by default (matching the paper's Assumption 2 for the
*detector*; for the *machine* it simply means we model coherence and cold
misses, not capacity misses). A finite-capacity per-core LRU mode is
available for sensitivity studies.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Optional, Set

# Access outcome tags, consumed by Machine to price latency.
HIT = "hit"
SHARED_CLEAN = "shared_clean"
COHERENCE_READ = "coherence_read"
COHERENCE_WRITE = "coherence_write"
UPGRADE = "upgrade"
COLD = "cold"


@dataclass
class LineState:
    """Directory state for one cache line.

    ``holders`` is the set of cores with a valid copy; ``dirty_owner`` is
    the single core holding the line modified, if any (when set, it is the
    only holder). ``ever_cached`` records whether the line has been fetched
    before, so a re-fetch after invalidation is priced as a shared-level
    fetch rather than a cold miss.
    """

    holders: Set[int] = field(default_factory=set)
    dirty_owner: Optional[int] = None
    ever_cached: bool = False
    invalidations: int = 0


class CoherenceDirectory:
    """Tracks MESI-like per-line sharing state across all cores.

    The directory exposes one operation, :meth:`access`, which mutates the
    sharing state and returns the outcome tag. It also counts ground-truth
    invalidation events per line (one event per write that removes the line
    from at least one other core's cache), which the test-suite and the
    Predator baseline use to validate Cheetah's sampled estimates.
    """

    def __init__(self, line_shift: int, capacity_lines: Optional[int] = None):
        """Create a directory for ``2**line_shift``-byte lines.

        Args:
            line_shift: log2 of the cache-line size.
            capacity_lines: if given, each core's private cache holds at
                most this many lines with LRU replacement; ``None`` means
                infinite private caches.
        """
        self._line_shift = line_shift
        self._lines: Dict[int, LineState] = {}
        self._capacity = capacity_lines
        # Per-core LRU of resident lines; only maintained in finite mode.
        self._resident: Dict[int, OrderedDict] = {}

    @property
    def line_shift(self) -> int:
        return self._line_shift

    def line_of(self, addr: int) -> int:
        return addr >> self._line_shift

    def state_of(self, line: int) -> Optional[LineState]:
        """Directory entry for ``line``, or None if never accessed."""
        return self._lines.get(line)

    def invalidations_of(self, line: int) -> int:
        """Ground-truth invalidation count for ``line``."""
        state = self._lines.get(line)
        return state.invalidations if state else 0

    def total_invalidations(self) -> int:
        """Sum of ground-truth invalidations over every line."""
        return sum(s.invalidations for s in self._lines.values())

    def lines_with_invalidations(self, minimum: int = 1) -> Dict[int, int]:
        """Map of line -> invalidation count for lines at or above ``minimum``."""
        return {
            line: s.invalidations
            for line, s in self._lines.items()
            if s.invalidations >= minimum
        }

    def access(self, core: int, addr: int, is_write: bool) -> str:
        """Perform one access and return its outcome tag.

        The outcome describes what the access cost: a private hit, a fetch
        from the shared level, a coherence transfer, an ownership upgrade,
        or a cold miss.
        """
        line = addr >> self._line_shift
        state = self._lines.get(line)
        if state is None:
            state = LineState()
            self._lines[line] = state

        if is_write:
            outcome = self._write(core, line, state)
        else:
            outcome = self._read(core, line, state)
        state.ever_cached = True
        if self._capacity is not None:
            self._touch_resident(core, line)
        return outcome

    def _write(self, core: int, line: int, state: LineState) -> str:
        holders = state.holders
        if state.dirty_owner == core:
            # Already exclusive-modified here: pure private hit.
            return HIT
        if not holders:
            state.holders = {core}
            state.dirty_owner = core
            return SHARED_CLEAN if state.ever_cached else COLD
        if holders == {core}:
            # Exclusive but clean: silent upgrade, still a private hit.
            state.dirty_owner = core
            return HIT
        # Other cores hold the line: this write invalidates their copies.
        state.invalidations += 1
        had_copy = core in holders
        if self._capacity is not None:
            for other in holders:
                if other != core:
                    self._evict_resident(other, line)
        state.holders = {core}
        state.dirty_owner = core
        if had_copy:
            return UPGRADE
        return COHERENCE_WRITE

    def _read(self, core: int, line: int, state: LineState) -> str:
        holders = state.holders
        if core in holders:
            return HIT
        if state.dirty_owner is not None:
            # A different core holds the line modified: forward + downgrade.
            state.dirty_owner = None
            holders.add(core)
            return COHERENCE_READ
        holders.add(core)
        return SHARED_CLEAN if state.ever_cached else COLD

    # -- finite-capacity support -------------------------------------------

    def _touch_resident(self, core: int, line: int) -> None:
        lru = self._resident.setdefault(core, OrderedDict())
        lru.pop(line, None)
        lru[line] = True
        if len(lru) > self._capacity:
            victim, _ = lru.popitem(last=False)
            self._drop(core, victim)

    def _evict_resident(self, core: int, line: int) -> None:
        lru = self._resident.get(core)
        if lru is not None:
            lru.pop(line, None)

    def _drop(self, core: int, line: int) -> None:
        state = self._lines.get(line)
        if state is None:
            return
        state.holders.discard(core)
        if state.dirty_owner == core:
            state.dirty_owner = None
