"""The machine facade: maps accesses to latencies via the coherence model.

A :class:`Machine` owns the coherence directory and the latency model and
is the single point through which every simulated memory access flows. It
returns an :class:`AccessOutcome` carrying the latency in cycles, which the
engine charges to the accessing thread's clock — and which the simulated
PMU later reports as the sample latency, exactly the signal Cheetah's
assessment model consumes (Observation 2 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.sim import coherence
from repro.sim.coherence import CoherenceDirectory
from repro.sim.params import MachineConfig


@dataclass(frozen=True)
class AccessOutcome:
    """Result of one memory access."""

    latency: int
    kind: str
    line: int

    @property
    def is_coherence_miss(self) -> bool:
        """True when the access paid a cross-core coherence penalty."""
        return self.kind in (
            coherence.COHERENCE_READ,
            coherence.COHERENCE_WRITE,
            coherence.UPGRADE,
        )


PREFETCHED = "prefetched"

# Outcomes a stride prefetcher can hide: plain data fetches. Coherence
# transfers (the false-sharing penalty) are never prefetchable — an
# invalidated line must be re-fetched on demand.
_PREFETCHABLE = (coherence.COLD, coherence.SHARED_CLEAN)

_COHERENCE_KINDS = (
    coherence.COHERENCE_READ,
    coherence.COHERENCE_WRITE,
    coherence.UPGRADE,
)

# Per-core window of recently fetched lines the prefetcher matches against.
_PREFETCH_WINDOW = 8


class Machine:
    """Simulated multicore machine: cores + coherent private caches.

    The machine is intentionally timing-only: no byte contents are stored,
    because false-sharing behaviour depends solely on *which* addresses are
    touched, by whom, and in what order.

    A simple per-core stride prefetcher is modelled: a cold or shared
    fetch whose predecessor line was recently touched by the same core is
    charged the (cheap) ``prefetched`` latency. This mirrors real
    hardware, where sequential input-reading phases run at near-hit
    latency — important for Cheetah's assessment, which approximates the
    no-false-sharing latency with the serial-phase average.
    """

    def __init__(self, config: Optional[MachineConfig] = None,
                 capacity_lines: Optional[int] = None,
                 prefetcher: bool = True,
                 timing_jitter: int = 2,
                 jitter_seed: int = 0xC0FFEE,
                 transfer_window: int = 0,
                 check: bool = False):
        self.config = config or MachineConfig()
        self.directory = CoherenceDirectory(
            self.config.line_shift, capacity_lines=capacity_lines
        )
        lat = self.config.latency
        self._costs: Dict[str, int] = {
            coherence.HIT: lat.l1_hit,
            coherence.SHARED_CLEAN: lat.shared_clean,
            coherence.COHERENCE_READ: lat.coherence_read,
            coherence.COHERENCE_WRITE: lat.coherence_write,
            coherence.UPGRADE: lat.upgrade,
            coherence.COLD: lat.cold,
            PREFETCHED: lat.prefetched,
        }
        # Hot-path caches: every simulated access reads these, so keep
        # them as plain ints / bound dicts rather than property and dict
        # lookups. ``_exclusive`` aliases the directory's dirty-owner map;
        # when the accessing core owns the line exclusive-modified, the
        # access is a private HIT with no state transition, which is the
        # overwhelmingly common case in false-sharing workloads.
        self._line_shift = self.config.line_shift
        self._hit_cost = lat.l1_hit
        self._exclusive = self.directory._exclusive
        self._dirlines = self.directory._lines
        # The private-HIT fast path must not bypass LRU bookkeeping, so
        # it is only valid with infinite private caches (the default).
        self._fast_private = capacity_lines is None
        self._prefetcher = prefetcher
        self._recent_lines: Dict[int, Dict[int, None]] = {}
        # Per-access timing noise (queueing, DRAM refresh, OoO windows):
        # a cheap xorshift stream adding 0..timing_jitter cycles. Without
        # it, identical threads stay in deterministic lockstep and either
        # resonate into conflict-on-every-access or drift into artificial
        # silence — neither happens on real machines.
        self._jitter = timing_jitter
        self._jitter_state = jitter_seed or 1
        # Coherence transfers serialize at the directory: after a line
        # moves to a new owner, contending requests from other cores queue
        # until the in-flight transfer (plus a short ownership window)
        # completes. Without this, two threads hammering one line
        # alternate per *access* instead of per *burst* — a lockstep
        # artifact real machines do not exhibit.
        self._transfer_window = transfer_window
        self._pin_until: Dict[int, int] = {}
        # NUMA asymmetric latency: with >1 node and a nonzero penalty,
        # cold/shared fetches from a remote home node and coherence
        # transfers sourced from a remote core cost extra. ``_numa`` is
        # False on the default single-node config, and every NUMA branch
        # below is guarded on it, so the default path is bit-identical
        # to pre-NUMA builds.
        cfg = self.config
        self._numa_nodes = cfg.numa_nodes
        self._remote_fetch = cfg.remote_fetch_penalty
        self._remote_transfer = cfg.remote_transfer_penalty
        self._numa = cfg.numa_nodes > 1 and (
            cfg.remote_fetch_penalty > 0 or cfg.remote_transfer_penalty > 0)
        self.numa_penalty_cycles = 0
        # Everything the engine's fused burst loop needs that never
        # changes after construction, bundled so the loop's per-call
        # setup is one attribute load and a tuple unpack.
        self._fast_state = (self._dirlines.get, self._line_shift,
                            self._hit_cost, self._jitter)
        self.total_accesses = 0
        self.total_cycles = 0
        self.prefetch_hits = 0
        self.stall_cycles = 0
        # Observability (repro.obs): when per-access instrumentation is
        # enabled, Observability._attach_machine sets this and rebinds
        # ``access_tuple`` on the instance to a counting/tracing wrapper
        # (composing with the sanitizer's rebinding below, if any). The
        # engine routes bursts through its general loop whenever it is
        # set; with observability off this stays None and costs nothing.
        self.obs = None
        # Sanitizer mode (``check=True``): every access is shadowed
        # against the reference MESI oracle in repro.sim.check. The
        # checked entry point is installed as an *instance* attribute so
        # the default path pays nothing; the engine additionally routes
        # bursts through its general (per-access) loop when a sanitizer
        # is present, so the fused kernel cannot bypass the shadowing.
        self.sanitizer = None
        if check:
            from repro.sim.check.sanitizer import CoherenceSanitizer
            self.sanitizer = CoherenceSanitizer(self)
            self.access_tuple = self.sanitizer.checked_access_tuple

    def access(self, core: int, addr: int, is_write: bool,
               now: int = 0) -> AccessOutcome:
        """Perform one access by ``core`` at time ``now``; returns outcome.

        ``now`` (the accessing thread's clock) only matters for contended
        lines: a coherence transfer that races an in-flight transfer of
        the same line stalls until the earlier one completes.

        Compatibility shim over :meth:`access_tuple`: the engine's hot
        path uses the tuple form directly to avoid allocating an
        :class:`AccessOutcome` per access.
        """
        latency, kind, line = self.access_tuple(core, addr, is_write, now)
        return AccessOutcome(latency=latency, kind=kind, line=line)

    def access_tuple(self, core: int, addr: int, is_write: bool,
                     now: int = 0):
        """Hot-path form of :meth:`access`: ``(latency, kind, line)``.

        Identical semantics and identical consumption of the jitter
        stream; the private-HIT fast path short-circuits full MESI
        dispatch when the access hits the core's own copy — a write to a
        line it holds exclusive-modified, or a read of any line it holds
        (no state transition, no prefetcher or pin-table interaction —
        exactly what the general path would do, since HIT is neither
        prefetchable nor a coherence kind).
        """
        line = addr >> self._line_shift
        if self._fast_private:
            state = self._dirlines.get(line)
            if state is not None and (
                    state.dirty_owner == core if is_write
                    else core in state.holders):
                latency = self._hit_cost
                if self._jitter:
                    jstate = self._jitter_state
                    jstate ^= (jstate << 13) & 0xFFFFFFFFFFFFFFFF
                    jstate ^= jstate >> 7
                    jstate ^= (jstate << 17) & 0xFFFFFFFFFFFFFFFF
                    self._jitter_state = jstate
                    latency += jstate % (self._jitter + 1)
                self.total_accesses += 1
                self.total_cycles += latency
                return latency, coherence.HIT, line
        # The previous dirty owner is consumed by the transition below;
        # capture it first so the NUMA penalty can tell where a
        # coherence transfer is sourced from.
        prev_owner = self._exclusive.get(line) if self._numa else None
        kind = self.directory.access(core, addr, is_write)
        if self._prefetcher and kind in _PREFETCHABLE:
            recent = self._recent_lines.get(core)
            if recent is None:
                recent = {}
                self._recent_lines[core] = recent
            if line - 1 in recent or line in recent:
                kind = PREFETCHED
                self.prefetch_hits += 1
            recent.pop(line, None)
            recent[line] = None
            if len(recent) > _PREFETCH_WINDOW:
                del recent[next(iter(recent))]
        latency = self._costs[kind]
        if self._numa:
            penalty = self._numa_penalty(kind, core, line, prev_owner)
            if penalty:
                latency += penalty
                self.numa_penalty_cycles += penalty
        if self._jitter:
            state = self._jitter_state
            state ^= (state << 13) & 0xFFFFFFFFFFFFFFFF
            state ^= state >> 7
            state ^= (state << 17) & 0xFFFFFFFFFFFFFFFF
            self._jitter_state = state
            latency += state % (self._jitter + 1)
        if kind in _COHERENCE_KINDS:
            pinned = self._pin_until.get(line, 0)
            if pinned > now:
                stall = pinned - now
                latency += stall
                self.stall_cycles += stall
            self._pin_until[line] = now + latency + self._transfer_window
        self.total_accesses += 1
        self.total_cycles += latency
        return latency, kind, line

    # The un-shadowed implementation, reachable even when sanitizer mode
    # rebinds ``access_tuple`` on the instance. Subclasses that override
    # ``access_tuple`` (e.g. the mutation self-test machine) must re-alias
    # this so the sanitizer validates *their* fast path.
    _raw_access_tuple = access_tuple

    def _numa_penalty(self, kind: str, core: int, line: int,
                      prev_owner: Optional[int]) -> int:
        """Extra cycles a NUMA machine charges for this access.

        Cold/shared fetches pay ``remote_fetch_penalty`` when the line's
        home node differs from the accessing core's node; coherence
        transfers pay ``remote_transfer_penalty`` when the source — the
        previous dirty owner if there was one, else the home node —
        sits on another node. HITs, prefetched fetches (the prefetcher
        hides the transfer) and UPGRADEs (invalidation-only, no data
        movement) are never penalised. The sanitizer calls this with the
        *oracle's* previous dirty owner to reconstruct latencies
        independently, so the penalty rule lives here, in one place.
        """
        nodes = self._numa_nodes
        node = core % nodes
        if kind in _PREFETCHABLE:
            return self._remote_fetch if line % nodes != node else 0
        if kind in (coherence.COHERENCE_READ, coherence.COHERENCE_WRITE):
            source = prev_owner % nodes if prev_owner is not None \
                else line % nodes
            return self._remote_transfer if source != node else 0
        return 0

    def line_is_private(self, core: int, state, is_write: bool) -> bool:
        """Batch-planner predicate (see :mod:`repro.sim.kernel`): may
        ``core`` keep hitting ``state``'s line without a transition?

        Must match the fast-path predicate in :meth:`access_tuple`
        exactly: a write is private only under exclusive-modified
        ownership (which subsumes the read predicate); a read is private
        whenever the core holds a valid copy. The vector kernel plans
        whole spans on this answer, so a corrupted override is exactly
        what the mutation self-test injects to prove the sanitizer net
        catches planner bugs.
        """
        if is_write:
            return state.dirty_owner == core
        return core in state.holders

    @property
    def pinned_lines(self) -> int:
        """Entries currently held in the coherence pin table."""
        return len(self._pin_until)

    def prune_pins(self, floor: int) -> None:
        """Drop pin-table entries whose pin time is at or before ``floor``.

        ``_pin_until`` otherwise grows by one slot per contended line for
        the lifetime of the machine. An entry with pin time <= ``floor``
        can never stall an access at ``now >= floor`` (the stall condition
        is ``pinned > now``), so pruning with a global lower bound on all
        future access times is behaviour-preserving. The engine calls this
        opportunistically with its scheduler clock, which is exactly such
        a bound (the min-clock discipline never runs a thread whose clock
        is behind the last popped one).
        """
        pins = self._pin_until
        if pins:
            self._pin_until = {line: t for line, t in pins.items()
                               if t > floor}

    def latency_of(self, kind: str) -> int:
        """Cycle cost of an outcome tag (exposed for tests and baselines)."""
        return self._costs[kind]

    def average_latency(self) -> float:
        """Mean latency over all accesses so far (0.0 before any access)."""
        if not self.total_accesses:
            return 0.0
        return self.total_cycles / self.total_accesses
