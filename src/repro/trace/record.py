"""Recording workload runs as self-describing traces.

:func:`record_workload` runs a workload with a
:class:`~repro.trace.recorder.TraceRecorder` attached and builds the v2
trace metadata — workload identity, machine config, the allocation map
and global symbols, the live run's verdict — so the saved file carries
everything :func:`repro.trace.replay.replay_outcome` needs to route the
access stream back through the machine and detector without the
original process.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Tuple

from repro.core.profiler import CheetahConfig
from repro.run import RunOutcome, run_workload
from repro.sim.params import MachineConfig
from repro.trace.recorder import TraceRecorder
from repro.workloads.base import Workload

#: Trace meta schema version (inside the ``#meta`` JSON, independent of
#: the file-format version).
TRACE_META_VERSION = 1


def workload_verdict(report) -> str:
    """Collapse a :class:`~repro.core.profiler.CheetahReport` to the
    workload-level three-way verdict.

    ``"false sharing"`` if any instance classified as false sharing,
    else ``"true sharing"`` if any classified true sharing, else
    ``"no sharing"``. Run the profiler with ``report_true_sharing=True``
    so true-sharing instances are visible to this collapse.
    """
    kinds = {r.kind.value for r in report.all_instances}
    if "false sharing" in kinds:
        return "false sharing"
    if "true sharing" in kinds:
        return "true sharing"
    return "no sharing"


def trace_meta(workload: Workload, outcome: RunOutcome,
               machine_config: Optional[MachineConfig] = None,
               jitter_seed: int = 0xC0FFEE) -> Dict[str, Any]:
    """v2 ``#meta`` dict for a recorded run.

    Captures what replay needs: the machine config (to re-drive a
    coherence machine), the allocation map and global symbols (to
    attribute detector findings to objects), the workload identity (for
    display and ground-truth lookup) and, when the run was profiled,
    the live verdict to compare replay against.
    """
    result = outcome.result
    config = machine_config or MachineConfig()
    allocations = [
        [a.serial, a.addr, a.size, a.requested_size, a.tid, a.callsite]
        for a in result.allocator.all_allocations()
    ]
    symbols = [[s.name, s.addr, s.size] for s in result.symbols.symbols()]
    meta: Dict[str, Any] = {
        "meta_version": TRACE_META_VERSION,
        "workload": {
            "name": workload.name,
            "num_threads": workload.num_threads,
            "scale": workload.scale,
            "fixed": workload.fixed,
            "seed": workload.seed,
        },
        "jitter_seed": jitter_seed,
        "machine": config.to_dict(),
        "runtime": result.runtime,
        "allocations": allocations,
        "globals": symbols,
    }
    if outcome.report is not None:
        meta["live_verdict"] = workload_verdict(outcome.report)
    return meta


def record_workload(workload: Workload, *,
                    machine_config: Optional[MachineConfig] = None,
                    jitter_seed: int = 0xC0FFEE,
                    limit: Optional[int] = None,
                    with_cheetah: bool = True,
                    cheetah_config: Optional[CheetahConfig] = None,
                    ) -> Tuple[TraceRecorder, Dict[str, Any]]:
    """Run ``workload`` with a trace recorder attached.

    Returns ``(recorder, meta)`` — pass both to
    :func:`repro.trace.storage.save_trace` to produce a self-describing
    v2 trace. ``with_cheetah`` (default on) also profiles the run so the
    meta carries the live verdict; the profiler defaults to
    ``report_true_sharing=True`` because the three-way replay verdict
    needs true-sharing instances to be visible.
    """
    recorder = TraceRecorder(limit=limit)
    config = cheetah_config
    if with_cheetah and config is None:
        config = CheetahConfig(report_true_sharing=True)
    outcome = run_workload(workload, machine_config=machine_config,
                           jitter_seed=jitter_seed, observer=recorder,
                           with_cheetah=with_cheetah,
                           cheetah_config=config)
    meta = trace_meta(workload, outcome,
                      machine_config=machine_config,
                      jitter_seed=jitter_seed)
    if recorder.truncated:
        meta["truncated"] = True
    return recorder, meta
