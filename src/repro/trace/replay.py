"""Replaying traces into detectors (offline, DARWIN-style analysis)."""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Optional

from repro.core.detection import FalseSharingDetector
from repro.pmu.sample import MemorySample
from repro.trace.recorder import TraceRecord


def downsample(records: Iterable[TraceRecord], period: int,
               jitter: float = 0.25, seed: int = 1,
               ) -> Iterator[TraceRecord]:
    """Keep roughly one of every ``period`` records, PMU-style.

    Downsampling a full trace reproduces what the online PMU would have
    delivered — useful for studying sampling effects offline on a single
    recorded run instead of re-simulating.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    rng = random.Random(seed)
    spread = int(period * jitter)
    countdown = period + (rng.randint(-spread, spread) if spread else 0)
    for record in records:
        countdown -= 1
        if countdown <= 0:
            countdown = period + (rng.randint(-spread, spread)
                                  if spread else 0)
            yield record


def replay_into_detector(records: Iterable[TraceRecord],
                         detector: FalseSharingDetector,
                         in_parallel: bool = True,
                         serial_tids: Optional[set] = None) -> int:
    """Feed trace records into a detector as if they were PMU samples.

    ``serial_tids``: tids whose accesses are treated as serial-phase
    (word detail gated), typically ``{0}`` for the main thread when the
    trace covers the whole run.

    Returns the number of records replayed.
    """
    count = 0
    for r in records:
        sample = MemorySample(tid=r.tid, core=r.core, addr=r.addr,
                              is_write=r.is_write, latency=r.latency,
                              size=r.size, timestamp=r.index)
        parallel = in_parallel
        if serial_tids is not None and r.tid in serial_tids:
            parallel = False
        detector.on_sample(sample, parallel)
        count += 1
    return count
