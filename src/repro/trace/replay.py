"""Replaying traces into detectors (offline, DARWIN-style analysis).

Two layers:

- :func:`replay_into_detector` feeds raw records into any detector —
  the primitive the prediction layer and A/B comparisons build on;
- :func:`replay_outcome` is the full pipeline behind ``repro replay``:
  it routes a stored v2 trace through a fresh coherence machine (for
  ground-truth invalidations under the recorded machine config) *and*
  the detector (attributing findings to the recorded allocation map /
  global symbols), optionally PMU-style downsampled, and returns a
  cacheable :class:`~repro.run.RunOutcome` whose metadata carries the
  three-way workload verdict.
"""

from __future__ import annotations

import bisect
import random
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence

from repro.core.detection import DetectorConfig, FalseSharingDetector
from repro.errors import ConfigError
from repro.heap.allocator import AllocationInfo
from repro.pmu.sample import MemorySample
from repro.symbols.table import GlobalSymbol
from repro.trace.recorder import TraceRecord


def downsample(records: Iterable[TraceRecord], period: int,
               jitter: float = 0.25, seed: int = 1,
               ) -> Iterator[TraceRecord]:
    """Keep roughly one of every ``period`` records, PMU-style.

    Downsampling a full trace reproduces what the online PMU would have
    delivered — useful for studying sampling effects offline on a single
    recorded run instead of re-simulating.
    """
    if period < 1:
        raise ValueError(f"period must be >= 1, got {period}")
    rng = random.Random(seed)
    spread = int(period * jitter)
    countdown = period + (rng.randint(-spread, spread) if spread else 0)
    for record in records:
        countdown -= 1
        if countdown <= 0:
            countdown = period + (rng.randint(-spread, spread)
                                  if spread else 0)
            yield record


def replay_into_detector(records: Iterable[TraceRecord],
                         detector: FalseSharingDetector,
                         in_parallel: bool = True,
                         serial_tids: Optional[set] = None) -> int:
    """Feed trace records into a detector as if they were PMU samples.

    ``serial_tids``: tids whose accesses are treated as serial-phase
    (word detail gated), typically ``{0}`` for the main thread when the
    trace covers the whole run.

    Returns the number of records replayed.
    """
    count = 0
    for r in records:
        sample = MemorySample(tid=r.tid, core=r.core, addr=r.addr,
                              is_write=r.is_write, latency=r.latency,
                              size=r.size, timestamp=r.index)
        parallel = in_parallel
        if serial_tids is not None and r.tid in serial_tids:
            parallel = False
        detector.on_sample(sample, parallel)
        count += 1
    return count


class _StaticRegions:
    """Address lookup over a frozen, sorted list of regions.

    Duck-types the subset of :class:`~repro.heap.allocator.CheetahAllocator`
    / :class:`~repro.symbols.table.SymbolTable` the detector's
    ``build_objects`` consumes (``contains``/``find``), backed by the
    region list a v2 trace's meta snapshotted at record time.
    """

    def __init__(self, regions: Sequence) -> None:
        self._regions = sorted(regions, key=lambda r: r.addr)
        self._starts = [r.addr for r in self._regions]

    def find(self, addr: int):
        index = bisect.bisect_right(self._starts, addr) - 1
        if index >= 0 and self._regions[index].contains(addr):
            return self._regions[index]
        return None

    def contains(self, addr: int) -> bool:
        return self.find(addr) is not None


def _regions_from_meta(meta: Dict[str, Any]):
    """(allocator-like, symbols-like) adapters from a v2 trace meta."""
    allocations = [
        AllocationInfo(addr=a[1], size=a[2], requested_size=a[3],
                       tid=a[4], callsite=a[5], serial=a[0])
        for a in meta.get("allocations", ())
    ]
    symbols = [GlobalSymbol(name=s[0], addr=s[1], size=s[2])
               for s in meta.get("globals", ())]
    return _StaticRegions(allocations), _StaticRegions(symbols)


def replay_outcome(records: Iterable[TraceRecord],
                   meta: Optional[Dict[str, Any]] = None, *,
                   period: Optional[int] = None,
                   seed: int = 1,
                   detector_config: Optional[DetectorConfig] = None,
                   true_sharing_fraction: Optional[float] = None):
    """Replay a recorded access stream through machine + detector.

    ``meta`` is the trace's ``#meta`` dict (see
    :func:`repro.trace.storage.load_trace_meta`); it supplies the
    machine config to re-drive coherence under and the allocation map /
    global symbols findings are attributed to. Without it the machine
    runs the default config and findings fall back to unattributed
    regions.

    ``period`` optionally downsamples the stream PMU-style before it
    reaches the detector (the machine always sees every record), so
    sampling effects can be studied offline on one recording.

    Returns a :class:`~repro.run.RunOutcome` whose
    ``result.metadata`` carries ``replay: True``, the three-way
    ``verdict`` and the per-object classifications.
    """
    from repro.run import RunOutcome, RunSummary, ThreadSummary
    from repro.sim.machine import Machine
    from repro.sim.params import MachineConfig

    meta = meta or {}
    machine_cfg = (MachineConfig.from_dict(meta["machine"])
                   if meta.get("machine") else MachineConfig())
    machine = Machine(machine_cfg,
                      jitter_seed=int(meta.get("jitter_seed", 0xC0FFEE)))
    detector = FalseSharingDetector(
        detector_config,
        line_size=machine_cfg.cache_line_size,
        word_size=machine_cfg.word_size)
    fraction = (true_sharing_fraction if true_sharing_fraction is not None
                else detector.config.true_sharing_fraction)

    sampler = None
    if period is not None:
        if period < 1:
            raise ConfigError(f"replay period must be >= 1, got {period}")
        rng = random.Random(seed)
        spread = int(period * 0.25)
        sampler = [period + (rng.randint(-spread, spread) if spread else 0)]

    threads: Dict[int, ThreadSummary] = {}
    count = 0
    replayed = 0
    for r in records:
        count += 1
        # Machine path: ground-truth coherence under the recorded config.
        machine.access_tuple(r.core, r.addr, r.is_write, r.index)
        summary = threads.get(r.tid)
        if summary is None:
            summary = ThreadSummary(
                tid=r.tid, name=f"tid{r.tid}", core=r.core,
                start_clock=0, end_clock=None, instructions=0,
                mem_accesses=0, mem_cycles=0, barrier_waits=0)
            threads[r.tid] = summary
        summary.mem_accesses += 1
        summary.mem_cycles += r.latency
        summary.instructions += 1
        # Detector path, optionally downsampled.
        if sampler is not None:
            sampler[0] -= 1
            if sampler[0] > 0:
                continue
            sampler[0] = period + (rng.randint(-spread, spread)
                                   if spread else 0)
        sample = MemorySample(tid=r.tid, core=r.core, addr=r.addr,
                              is_write=r.is_write, latency=r.latency,
                              size=r.size, timestamp=r.index)
        detector.on_sample(sample, r.tid != 0)
        replayed += 1

    allocator, symbols = _regions_from_meta(meta)
    objects: List[Dict[str, Any]] = []
    kinds = set()
    for profile in detector.build_objects(allocator, symbols):
        kind = profile.classify(fraction)
        kinds.add(kind.value)
        objects.append({
            "label": profile.label,
            "kind": kind.value,
            "object_kind": profile.kind,
            "start": profile.start,
            "size": profile.size,
            "invalidations": profile.invalidations,
            "accesses": profile.accesses,
            "writes": profile.writes,
        })
    if "false sharing" in kinds:
        verdict = "false sharing"
    elif "true sharing" in kinds:
        verdict = "true sharing"
    else:
        verdict = "no sharing"
    objects.sort(key=lambda o: o["invalidations"], reverse=True)

    metadata: Dict[str, Any] = {
        "replay": True,
        "verdict": verdict,
        "objects": objects,
        "trace_records": count,
        "replayed_samples": replayed,
        "period": period,
        "machine_invalidations":
            machine.directory.total_invalidations(),
        "machine_cycles": machine.total_cycles,
    }
    for key in ("workload", "live_verdict", "truncated"):
        if key in meta:
            metadata[key] = meta[key]
    result = RunSummary(
        runtime=int(meta.get("runtime", machine.total_cycles)),
        steps=count,
        invalidations=machine.directory.total_invalidations(),
        threads=threads,
        metadata=metadata,
    )
    return RunOutcome(result=result)
