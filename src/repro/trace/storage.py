"""On-disk trace format.

One access per line, whitespace-separated, with a versioned header::

    #repro-trace v1
    <index> <tid> <core> <addr-hex> <R|W> <latency> <size>

Plain text compresses well and is diffable; traces at simulation scale
are at most a few hundred thousand lines.
"""

from __future__ import annotations

import gzip
import io
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.errors import ReproError
from repro.trace.recorder import TraceRecord

HEADER = "#repro-trace v1"


class TraceFormatError(ReproError):
    """The trace file is malformed or has an unsupported version."""


def _open(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_trace(records: Iterable[TraceRecord],
               path: Union[str, Path]) -> int:
    """Write records to ``path`` (gzipped when it ends in .gz).

    Returns the number of records written.
    """
    count = 0
    with _open(path, "w") as fh:
        fh.write(HEADER + "\n")
        for r in records:
            fh.write(f"{r.index} {r.tid} {r.core} {r.addr:x} "
                     f"{'W' if r.is_write else 'R'} {r.latency} "
                     f"{r.size}\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Yield records from a trace file written by :func:`save_trace`."""
    with _open(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if header != HEADER:
            raise TraceFormatError(
                f"bad trace header {header!r} (expected {HEADER!r})")
        for lineno, line in enumerate(fh, start=2):
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 7:
                raise TraceFormatError(
                    f"{path}:{lineno}: expected 7 fields, got {len(parts)}")
            try:
                yield TraceRecord(
                    index=int(parts[0]), tid=int(parts[1]),
                    core=int(parts[2]), addr=int(parts[3], 16),
                    is_write=parts[4] == "W", latency=int(parts[5]),
                    size=int(parts[6]))
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: {exc}") from exc
