"""On-disk trace format.

One access per line, whitespace-separated, with a versioned header::

    #repro-trace v1
    <index> <tid> <core> <addr-hex> <R|W> <latency> <size>

Version 2 adds one optional metadata line directly after the header — a
JSON object describing the recorded run (workload identity, machine
config, allocation map, global symbols) so a trace can be replayed
through the machine and detector without the original process::

    #repro-trace v2
    #meta {"workload": {...}, "machine": {...}, "allocations": [...], ...}
    <records as in v1>

Readers skip any ``#``-prefixed line, so v1 consumers that predate the
meta line still load v2 record streams. Plain text compresses well and
is diffable; traces at simulation scale are at most a few hundred
thousand lines.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Any, Dict, Iterable, Iterator, Optional, Union

from repro.errors import ReproError
from repro.trace.recorder import TraceRecord

HEADER_V1 = "#repro-trace v1"
HEADER_V2 = "#repro-trace v2"
#: Headers :func:`load_trace` accepts.
HEADERS = (HEADER_V1, HEADER_V2)
#: Back-compat alias: the header :func:`save_trace` writes without meta.
HEADER = HEADER_V1

META_PREFIX = "#meta "


class TraceFormatError(ReproError):
    """The trace file is malformed or has an unsupported version."""


def _open(path: Union[str, Path], mode: str):
    path = Path(path)
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t")
    return open(path, mode)


def save_trace(records: Iterable[TraceRecord],
               path: Union[str, Path],
               meta: Optional[Dict[str, Any]] = None) -> int:
    """Write records to ``path`` (gzipped when it ends in .gz).

    With ``meta`` (a JSON-serializable dict, e.g. from
    :func:`repro.trace.record.trace_meta`) the v2 format is written —
    header plus one ``#meta`` line; without it the output is
    byte-identical to the original v1 format.

    Returns the number of records written.
    """
    count = 0
    with _open(path, "w") as fh:
        if meta is None:
            fh.write(HEADER_V1 + "\n")
        else:
            fh.write(HEADER_V2 + "\n")
            fh.write(META_PREFIX + json.dumps(
                meta, sort_keys=True, separators=(",", ":")) + "\n")
        for r in records:
            fh.write(f"{r.index} {r.tid} {r.core} {r.addr:x} "
                     f"{'W' if r.is_write else 'R'} {r.latency} "
                     f"{r.size}\n")
            count += 1
    return count


def load_trace(path: Union[str, Path]) -> Iterator[TraceRecord]:
    """Yield records from a trace file written by :func:`save_trace`.

    Accepts both v1 and v2 files; comment lines (``#``-prefixed,
    including the v2 meta line) are skipped.
    """
    with _open(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if header not in HEADERS:
            raise TraceFormatError(
                f"bad trace header {header!r} (expected one of {HEADERS})")
        for lineno, line in enumerate(fh, start=2):
            if line.startswith("#"):
                continue
            parts = line.split()
            if not parts:
                continue
            if len(parts) != 7:
                raise TraceFormatError(
                    f"{path}:{lineno}: expected 7 fields, got {len(parts)}")
            try:
                yield TraceRecord(
                    index=int(parts[0]), tid=int(parts[1]),
                    core=int(parts[2]), addr=int(parts[3], 16),
                    is_write=parts[4] == "W", latency=int(parts[5]),
                    size=int(parts[6]))
            except ValueError as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: {exc}") from exc


def load_trace_meta(path: Union[str, Path]) -> Optional[Dict[str, Any]]:
    """The ``#meta`` dict of a v2 trace, or ``None`` for v1 / no meta."""
    with _open(path, "r") as fh:
        header = fh.readline().rstrip("\n")
        if header not in HEADERS:
            raise TraceFormatError(
                f"bad trace header {header!r} (expected one of {HEADERS})")
        if header != HEADER_V2:
            return None
        line = fh.readline()
        if not line.startswith(META_PREFIX):
            return None
        try:
            meta = json.loads(line[len(META_PREFIX):])
        except ValueError as exc:
            raise TraceFormatError(f"{path}:2: malformed meta: {exc}") \
                from exc
        if not isinstance(meta, dict):
            raise TraceFormatError(
                f"{path}:2: meta must be a JSON object, "
                f"got {type(meta).__name__}")
        return meta
