"""Access-trace recording, storage and replay.

Several tools in the paper's related-work section are *offline*: DARWIN
collects coherence events in a first round and analyses accesses in a
second; simulation-based detectors analyse full traces. This package
provides that infrastructure for the reproduction:

- :class:`~repro.trace.recorder.TraceRecorder` — an engine observer that
  captures every access of a run;
- :func:`~repro.trace.storage.save_trace` /
  :func:`~repro.trace.storage.load_trace` — compact on-disk format;
- :func:`~repro.trace.replay.downsample` — PMU-style 1/N sampling over a
  trace;
- :func:`~repro.trace.replay.replay_into_detector` — drive any detector
  from a stored trace, enabling deterministic offline analysis and
  detector A/B comparisons on identical access streams;
- :func:`~repro.trace.record.record_workload` /
  :func:`~repro.trace.replay.replay_outcome` — the full ``repro record``
  / ``repro replay`` pipeline: self-describing v2 traces (machine
  config + allocation map in the ``#meta`` line) replayed through a
  fresh coherence machine and the detector, yielding the same
  three-way verdict as the live run.
"""

from repro.trace.recorder import TraceRecord, TraceRecorder
from repro.trace.record import record_workload, trace_meta, workload_verdict
from repro.trace.replay import (
    downsample,
    replay_into_detector,
    replay_outcome,
)
from repro.trace.storage import (
    load_trace,
    load_trace_meta,
    save_trace,
)

__all__ = [
    "TraceRecord",
    "TraceRecorder",
    "downsample",
    "load_trace",
    "load_trace_meta",
    "record_workload",
    "replay_into_detector",
    "replay_outcome",
    "save_trace",
    "trace_meta",
    "workload_verdict",
]
