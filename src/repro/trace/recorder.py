"""Recording full access traces from a simulation."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.sim.engine import Observer


@dataclass(frozen=True)
class TraceRecord:
    """One recorded memory access."""

    index: int  # global access sequence number (interleaving order)
    tid: int
    core: int
    addr: int
    is_write: bool
    latency: int
    size: int


class TraceRecorder(Observer):
    """Engine observer that records every access in interleaving order.

    ``cost_per_access`` defaults to zero so that recording does not
    perturb the timing of the traced run (a "magic" tracer); set it to a
    positive value to model a real tracing tool's overhead.

    ``limit`` bounds memory use; recording stops silently once reached
    (``truncated`` tells you whether it did).
    """

    def __init__(self, cost_per_access: int = 0,
                 limit: Optional[int] = None):
        self.cost_per_access = cost_per_access
        self.limit = limit
        self.records: List[TraceRecord] = []
        self.truncated = False
        self._counter = 0

    def on_access(self, tid: int, core: int, addr: int, is_write: bool,
                  latency: int, size: int, line: int) -> None:
        index = self._counter
        self._counter += 1
        if self.limit is not None and len(self.records) >= self.limit:
            self.truncated = True
            return
        self.records.append(TraceRecord(
            index=index, tid=tid, core=core, addr=addr,
            is_write=is_write, latency=latency, size=size))

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self):
        return iter(self.records)
