"""Ownership-based invalidation tracking (Zhao et al., VEE 2011).

Prior work computes cache invalidations with per-line *ownership sets*:
"when a thread updates a cache line owned by others, this access incurs a
cache invalidation, and then resets the ownership to the current thread".
The set needs one bit per thread per line, so it "cannot easily scale to
more than 32 threads because of excessive memory consumption" — the
motivation for Cheetah's two-entry table.

This implementation serves two purposes in the reproduction:

- a correctness oracle: on the same access stream, the two-entry table
  must agree with the ownership rule on which lines are heavily
  invalidated (tests assert this);
- a memory-economics ablation: :meth:`bits_used` quantifies the bitmap
  cost that the two-entry table avoids.
"""

from __future__ import annotations

from typing import Dict, Set


class OwnershipTracker:
    """Per-line ownership sets with the Zhao et al. invalidation rule."""

    def __init__(self) -> None:
        self._owners: Dict[int, Set[int]] = {}
        self._invalidations: Dict[int, int] = {}
        self._max_tid = -1

    def record(self, line: int, tid: int, is_write: bool) -> bool:
        """Apply one access; returns True when it incurs an invalidation."""
        self._max_tid = max(self._max_tid, tid)
        owners = self._owners.get(line)
        if owners is None:
            owners = set()
            self._owners[line] = owners
        if not is_write:
            owners.add(tid)
            return False
        others = owners - {tid}
        owners_reset = {tid}
        self._owners[line] = owners_reset
        if others:
            self._invalidations[line] = self._invalidations.get(line, 0) + 1
            return True
        return False

    def invalidations(self, line: int) -> int:
        return self._invalidations.get(line, 0)

    def total_invalidations(self) -> int:
        return sum(self._invalidations.values())

    def lines_with_invalidations(self, minimum: int = 1) -> Dict[int, int]:
        return {line: count for line, count in self._invalidations.items()
                if count >= minimum}

    def bits_used(self) -> int:
        """Bitmap bits this scheme needs: one bit per thread per line.

        The two-entry table stores at most two (tid, type) entries per
        line regardless of thread count — this is the memory-scaling
        comparison of Section 2.3.
        """
        if self._max_tid < 0:
            return 0
        return len(self._owners) * (self._max_tid + 1)
