"""Predator-style full-instrumentation detector (Liu et al., PPoPP 2014).

Predator is the state of the art the paper compares against: it
instruments *every* memory access at compile time, so it detects the
largest number of false sharing instances — including small ones Cheetah's
sparse sampling misses (histogram, reverse_index, word_count) — but costs
roughly 6x in runtime (Section 4.2.3 and Section 6.1).

Here Predator is an :class:`~repro.sim.engine.Observer`: the engine calls
it on every access and charges ``cost_per_access`` cycles, reproducing the
overhead economics. Detection state is the same word-granularity shadow
data Cheetah keeps, but exact rather than sampled, and with Predator's
*predictive* twist: because full word-level history is available, findings
can be re-evaluated for a hypothetical cache-line size
(:meth:`findings_for_line_size`), the feature Predator uses to predict
false sharing that would appear on machines with larger lines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.baselines.ownership import OwnershipTracker
from repro.sim.engine import Observer

# Calibrated so that memory-bound workloads slow down by roughly the
# paper's 6x: the observer charges this many cycles per access on top of
# the access latency.
DEFAULT_COST_PER_ACCESS = 32


@dataclass
class PredatorFinding:
    """One detected sharing instance at (virtual) cache-line granularity."""

    line: int
    line_size: int
    invalidations: int
    accesses: int
    writes: int
    tids: Set[int] = field(default_factory=set)
    shared_word_accesses: int = 0
    label: str = ""

    @property
    def is_false_sharing(self) -> bool:
        """Disjoint per-thread words => false sharing, same rule as Cheetah."""
        if len(self.tids) < 2 or not self.accesses:
            return False
        return self.shared_word_accesses / self.accesses < 0.5


class _WordRecord:
    __slots__ = ("reads", "writes")

    def __init__(self) -> None:
        self.reads: Dict[int, int] = {}
        self.writes: Dict[int, int] = {}

    def record(self, tid: int, is_write: bool) -> None:
        counter = self.writes if is_write else self.reads
        counter[tid] = counter.get(tid, 0) + 1

    @property
    def tids(self) -> Set[int]:
        return set(self.reads) | set(self.writes)

    @property
    def total(self) -> int:
        return sum(self.reads.values()) + sum(self.writes.values())

    @property
    def truly_shared(self) -> bool:
        """True when the word itself is contended between threads.

        Predator has no parallel-phase gating, so a word written by one
        thread and read *once* by another (a post-join reduction) must not
        count as true sharing; repeated cross-thread traffic on the same
        word does.
        """
        tids = self.tids
        if len(tids) < 2 or not self.writes:
            return False
        for tid in tids:
            other_traffic = (self.reads.get(tid, 0) + self.writes.get(tid, 0))
            writes_elsewhere = any(w for t, w in self.writes.items()
                                   if t != tid)
            if writes_elsewhere and other_traffic >= 2:
                return True
        return False


class PredatorDetector(Observer):
    """Observes every access; detects sharing exactly (no sampling loss)."""

    def __init__(self, line_size: int = 64, word_size: int = 4,
                 min_invalidations: int = 100,
                 cost_per_access: int = DEFAULT_COST_PER_ACCESS):
        self.line_size = line_size
        self.word_size = word_size
        self.min_invalidations = min_invalidations
        self.cost_per_access = cost_per_access
        self._line_shift = line_size.bit_length() - 1
        self._ownership = OwnershipTracker()
        # Word-granularity history over the whole run: word -> record.
        self._words: Dict[int, _WordRecord] = {}
        self._line_writes: Dict[int, int] = {}
        self._line_accesses: Dict[int, int] = {}
        self.accesses_observed = 0

    # -- Observer interface --------------------------------------------------

    def on_access(self, tid: int, core: int, addr: int, is_write: bool,
                  latency: int, size: int, line: int) -> None:
        self.accesses_observed += 1
        self._ownership.record(line, tid, is_write)
        self._line_accesses[line] = self._line_accesses.get(line, 0) + 1
        if is_write:
            self._line_writes[line] = self._line_writes.get(line, 0) + 1
        word = addr // self.word_size
        record = self._words.get(word)
        if record is None:
            record = _WordRecord()
            self._words[word] = record
        record.record(tid, is_write)

    # -- detection ------------------------------------------------------------

    def findings(self, allocator=None, symbols=None) -> List[PredatorFinding]:
        """Sharing instances at the machine's real line size."""
        return self.findings_for_line_size(self.line_size, allocator, symbols)

    def findings_for_line_size(self, line_size: int, allocator=None,
                               symbols=None) -> List[PredatorFinding]:
        """Predictive detection for a hypothetical ``line_size``.

        For the machine's own line size the invalidation counts come from
        the ownership history; for other sizes they are re-derived from
        word-level thread footprints (Predator's prediction mode: false
        sharing "can be affected by ... the size of the cache line").
        """
        words_per_line = line_size // self.word_size
        grouped: Dict[int, List[Tuple[int, _WordRecord]]] = {}
        for word, record in self._words.items():
            vline = word // words_per_line
            grouped.setdefault(vline, []).append((word, record))

        results: List[PredatorFinding] = []
        for vline, members in grouped.items():
            tids: Set[int] = set()
            accesses = 0
            writes = 0
            shared = 0
            for _, record in members:
                tids |= record.tids
                total = record.total
                accesses += total
                writes += sum(record.writes.values())
                if record.truly_shared:
                    shared += total
            if len(tids) < 2:
                continue
            invalidations = self._invalidations_for(vline, line_size, members)
            if invalidations < self.min_invalidations:
                continue
            finding = PredatorFinding(
                line=vline, line_size=line_size,
                invalidations=invalidations, accesses=accesses,
                writes=writes, tids=tids, shared_word_accesses=shared,
                label=self._label(vline * line_size, allocator, symbols),
            )
            results.append(finding)
        results.sort(key=lambda f: f.invalidations, reverse=True)
        return results

    def false_sharing_findings(self, allocator=None,
                               symbols=None) -> List[PredatorFinding]:
        return [f for f in self.findings(allocator, symbols)
                if f.is_false_sharing]

    # -- internals ---------------------------------------------------------------

    def _invalidations_for(self, vline: int, line_size: int,
                           members: List[Tuple[int, _WordRecord]]) -> int:
        if line_size == self.line_size:
            return self._ownership.invalidations(vline)
        # Estimate for a hypothetical line size: writes to words of a line
        # touched by multiple threads are potential invalidations.
        tids = set()
        for _, record in members:
            tids |= record.tids
        if len(tids) < 2:
            return 0
        return sum(sum(r.writes.values()) for _, r in members)

    @staticmethod
    def _label(addr: int, allocator, symbols) -> str:
        if allocator is not None and allocator.contains(addr):
            info = allocator.find(addr)
            if info is not None:
                return f"heap:{info.callsite}"
        if symbols is not None and symbols.contains(addr):
            symbol = symbols.find(addr)
            if symbol is not None:
                return f"global:{symbol.name}"
        return f"region:{addr:#x}"
