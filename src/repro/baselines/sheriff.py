"""Sheriff-style detection baseline (Liu & Berger, OOPSLA 2011).

Sheriff turns threads into processes and uses page protection to capture
*writes* at page granularity, twinning pages and diffing them at
synchronisation boundaries. Consequences reproduced here:

- it observes **writes only** — read-write false sharing is invisible
  (the paper: Sheriff "reports write-write false sharing problems");
- its interception is page-granular: every *first* write a thread makes
  to a page per epoch costs a protection fault (expensive), subsequent
  writes to the same page in the same epoch are free — giving the
  paper's ~20% overhead profile instead of per-access instrumentation
  cost;
- detection compares per-word write footprints between threads within
  an epoch, at cache-line granularity.

Epochs are delimited by synchronisation; here an epoch is a fixed
window of simulated cycles, which is what Sheriff's periodic timer
fallback does for programs with rare synchronisation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.sim.engine import Observer

PAGE_SIZE = 4096
#: Cycles charged for a page-protection fault (mprotect + signal + twin
#: copy, amortised) — the dominant Sheriff cost.
DEFAULT_FAULT_COST = 450
#: Default epoch length in cycles (Sheriff's timer-driven commit).
DEFAULT_EPOCH_CYCLES = 50_000


@dataclass
class SheriffFinding:
    """A line with write-write sharing between threads."""

    line: int
    writes: int
    tids: Set[int] = field(default_factory=set)
    shared_word_writes: int = 0
    label: str = ""

    @property
    def is_false_sharing(self) -> bool:
        """Disjoint written words => false sharing (write-write only)."""
        if len(self.tids) < 2:
            return False
        return self.shared_word_writes < self.writes * 0.5


class SheriffDetector(Observer):
    """Page-protection write-capture baseline.

    Only writes are observed; the per-access cost is paid on the first
    write to each (thread, page) per epoch — the page-fault-driven
    economics that keep Sheriff's overhead around 20%.
    """

    cost_per_access = 0  # charged selectively via on_access's return path

    def __init__(self, line_size: int = 64, word_size: int = 4,
                 fault_cost: int = DEFAULT_FAULT_COST,
                 epoch_cycles: int = DEFAULT_EPOCH_CYCLES,
                 min_writes: int = 50):
        self.line_size = line_size
        self.word_size = word_size
        self.fault_cost = fault_cost
        self.epoch_cycles = epoch_cycles
        self.min_writes = min_writes
        self._line_shift = line_size.bit_length() - 1
        # (tid, page) -> epoch index of last fault.
        self._page_epoch: Dict[Tuple[int, int], int] = {}
        # word -> {tid: writes} accumulated across the run.
        self._word_writes: Dict[int, Dict[int, int]] = {}
        self._clock_hint = 0
        self.faults = 0
        self.writes_observed = 0
        self.fault_cycles_charged = 0

    # -- Observer interface --------------------------------------------------

    def on_access(self, tid: int, core: int, addr: int, is_write: bool,
                  latency: int, size: int, line: int) -> Optional[int]:
        # Sheriff only sees writes (reads never fault on twinned pages).
        if not is_write:
            return None
        self.writes_observed += 1
        self._clock_hint += latency
        epoch = self._clock_hint // self.epoch_cycles
        page = addr // PAGE_SIZE
        key = (tid, page)
        cost = None
        if self._page_epoch.get(key) != epoch:
            self._page_epoch[key] = epoch
            self.faults += 1
            self.fault_cycles_charged += self.fault_cost
            cost = self.fault_cost
        word = addr // self.word_size
        per_tid = self._word_writes.get(word)
        if per_tid is None:
            per_tid = {}
            self._word_writes[word] = per_tid
        per_tid[tid] = per_tid.get(tid, 0) + 1
        return cost

    # -- detection ------------------------------------------------------------

    def findings(self, allocator=None, symbols=None) -> List[SheriffFinding]:
        """Write-write sharing instances at cache-line granularity."""
        words_per_line = self.line_size // self.word_size
        grouped: Dict[int, List[Tuple[int, Dict[int, int]]]] = {}
        for word, per_tid in self._word_writes.items():
            line = word // words_per_line
            grouped.setdefault(line, []).append((word, per_tid))
        results = []
        for line, members in grouped.items():
            tids: Set[int] = set()
            writes = 0
            shared = 0
            for _, per_tid in members:
                tids |= set(per_tid)
                word_writes = sum(per_tid.values())
                writes += word_writes
                if len(per_tid) > 1:
                    shared += word_writes
            if len(tids) < 2 or writes < self.min_writes:
                continue
            results.append(SheriffFinding(
                line=line, writes=writes, tids=tids,
                shared_word_writes=shared,
                label=self._label(line << self._line_shift, allocator,
                                  symbols)))
        results.sort(key=lambda f: f.writes, reverse=True)
        return results

    def false_sharing_findings(self, allocator=None,
                               symbols=None) -> List[SheriffFinding]:
        return [f for f in self.findings(allocator, symbols)
                if f.is_false_sharing]

    @staticmethod
    def _label(addr: int, allocator, symbols) -> str:
        if allocator is not None and allocator.contains(addr):
            info = allocator.find(addr)
            if info is not None:
                return f"heap:{info.callsite}"
        if symbols is not None and symbols.contains(addr):
            symbol = symbols.find(addr)
            if symbol is not None:
                return f"global:{symbol.name}"
        return f"region:{addr:#x}"
