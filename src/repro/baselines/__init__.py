"""Baseline detectors the paper compares against.

- :mod:`repro.baselines.predator` — Predator (Liu et al., PPoPP'14), the
  state of the art: compiler-instrumentation observing *every* access
  (~6x overhead), detecting the largest number of instances, including
  ones Cheetah's sampling misses (Section 4.2.3);
- :mod:`repro.baselines.ownership` — the ownership rule of Zhao et al.
  (VEE'11), which needs one bit per thread per line (the memory-scaling
  problem Cheetah's two-entry table removes, Section 2.3);
- :mod:`repro.baselines.sheriff` — Sheriff (Liu & Berger, OOPSLA'11):
  page-protection write capture, ~20% overhead, write-write-only
  detection (Section 6.1's OS-related category).
"""

from repro.baselines.ownership import OwnershipTracker
from repro.baselines.predator import PredatorDetector, PredatorFinding
from repro.baselines.sheriff import SheriffDetector, SheriffFinding

__all__ = [
    "OwnershipTracker",
    "PredatorDetector",
    "PredatorFinding",
    "SheriffDetector",
    "SheriffFinding",
]
