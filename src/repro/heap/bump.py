"""Naive shared bump allocator (default-allocator baseline).

Unlike :class:`repro.heap.allocator.CheetahAllocator`, all threads carve
from one shared cursor, so consecutive small allocations by *different*
threads land on the same cache line — the classic source of inter-object
false sharing that Hoard-style per-thread heaps eliminate. Used by tests
and the ablation benchmark to demonstrate that design choice.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional

from repro.errors import InvalidFreeError
from repro.heap.allocator import AllocationInfo
from repro.heap.arena import Arena, HEAP_BASE, DEFAULT_ARENA_SIZE
from repro.heap.sizeclass import size_class_of


class BumpAllocator:
    """Shared-cursor allocator: no per-thread segregation, no reuse."""

    def __init__(self, arena: Optional[Arena] = None, line_size: int = 64):
        self.arena = arena or Arena(HEAP_BASE, DEFAULT_ARENA_SIZE, line_size)
        self.line_size = line_size
        self._allocs: Dict[int, AllocationInfo] = {}
        self._starts: List[int] = []
        self._serial = 0
        self.total_allocated = 0
        self.total_freed = 0

    def allocate(self, size: int, tid: int, callsite: str = "<unknown>") -> int:
        cls = size_class_of(size)
        addr = self.arena.carve(cls, align=min(cls, 8))
        self._serial += 1
        self._allocs[addr] = AllocationInfo(
            addr=addr, size=cls, requested_size=size, tid=tid,
            callsite=callsite, serial=self._serial,
        )
        bisect.insort(self._starts, addr)
        self.total_allocated += cls
        return addr

    def free(self, addr: int, tid: int) -> None:
        info = self._allocs.get(addr)
        if info is None or not info.live:
            raise InvalidFreeError(f"free of unknown or dead address {addr:#x}")
        info.live = False
        self.total_freed += info.size

    def find(self, addr: int) -> Optional[AllocationInfo]:
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        info = self._allocs[self._starts[idx]]
        if info.contains(addr):
            return info
        return None

    def contains(self, addr: int) -> bool:
        return self.arena.contains(addr)

    def line_index(self, addr: int) -> int:
        return self.arena.line_index(addr)

    def live_allocations(self) -> List[AllocationInfo]:
        return [a for a in self._allocs.values() if a.live]

    def all_allocations(self) -> List[AllocationInfo]:
        return list(self._allocs.values())
