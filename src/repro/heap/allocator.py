"""Hoard-style per-thread heap with callsite tracking (paper Section 2.2).

Design points reproduced from the paper:

- all memory comes from one pre-allocated arena, so shadow-memory lookups
  are a bit shift (:meth:`CheetahAllocator.line_index`);
- objects are rounded to power-of-two size classes;
- each thread owns its superblocks, so "two objects in the same cache line
  will never be allocated to two different threads" — inter-object false
  sharing is impossible by construction (at the cost of not being able to
  observe problems the *default* allocator would cause; see
  :class:`repro.heap.bump.BumpAllocator` for that baseline);
- every allocation records its callsite and requested size, so the
  reporter can print "a heap object with the following callsite" plus the
  source line, as in Figure 5.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import InvalidFreeError
from repro.heap.arena import Arena, HEAP_BASE, DEFAULT_ARENA_SIZE
from repro.heap.sizeclass import size_class_of

SUPERBLOCK_SIZE = 64 * 1024


@dataclass
class AllocationInfo:
    """Metadata for one heap allocation."""

    addr: int
    size: int  # size-class size actually reserved
    requested_size: int
    tid: int
    callsite: str
    serial: int  # monotonically increasing allocation number
    live: bool = True

    @property
    def end(self) -> int:
        return self.addr + self.size

    def contains(self, addr: int) -> bool:
        return self.addr <= addr < self.end

    def __str__(self) -> str:
        return (f"object {self.addr:#x}..{self.end:#x} "
                f"(size {self.requested_size}) from {self.callsite}")


class _SuperBlock:
    """A thread-private run of one size class, carved from the arena."""

    __slots__ = ("base", "end", "cursor", "size_class")

    def __init__(self, base: int, length: int, size_class: int):
        self.base = base
        self.end = base + length
        self.cursor = base
        self.size_class = size_class

    def take(self) -> Optional[int]:
        if self.cursor + self.size_class > self.end:
            return None
        addr = self.cursor
        self.cursor += self.size_class
        return addr


class CheetahAllocator:
    """Per-thread heap over a fixed arena, with allocation metadata.

    The allocator answers two queries the detector needs:

    - :meth:`find` — which allocation (if any) contains an address, used
      to attribute falsely-shared cache lines to objects and callsites;
    - :meth:`line_index` — the shadow-memory index of an address's line.
    """

    def __init__(self, arena: Optional[Arena] = None, line_size: int = 64):
        self.arena = arena or Arena(HEAP_BASE, DEFAULT_ARENA_SIZE, line_size)
        self.line_size = line_size
        self._blocks: Dict[tuple, _SuperBlock] = {}  # (tid, class) -> block
        self._free_lists: Dict[tuple, List[int]] = {}
        self._allocs: Dict[int, AllocationInfo] = {}
        self._starts: List[int] = []  # sorted live+dead allocation starts
        self._serial = 0
        self.total_allocated = 0
        self.total_freed = 0

    # -- allocation ---------------------------------------------------------

    def allocate(self, size: int, tid: int, callsite: str = "<unknown>") -> int:
        """Allocate ``size`` bytes on behalf of thread ``tid``."""
        cls = size_class_of(size)
        key = (tid, cls)
        free_list = self._free_lists.get(key)
        if free_list:
            addr = free_list.pop()
        else:
            addr = self._carve(key, cls)
        self._record(addr, cls, size, tid, callsite)
        return addr

    def free(self, addr: int, tid: int) -> None:
        """Release allocation at ``addr``.

        The block returns to the *owning* thread's free list (Hoard-style),
        so reuse can never hand one line to two threads.
        """
        info = self._allocs.get(addr)
        if info is None or not info.live:
            raise InvalidFreeError(f"free of unknown or dead address {addr:#x}")
        info.live = False
        self._free_lists.setdefault((info.tid, info.size), []).append(addr)
        self.total_freed += info.size

    def _carve(self, key: tuple, cls: int) -> int:
        block = self._blocks.get(key)
        if block is not None:
            addr = block.take()
            if addr is not None:
                return addr
        length = max(SUPERBLOCK_SIZE, cls)
        base = self.arena.carve(length, align=max(self.line_size, cls if cls <= 4096 else self.line_size))
        block = _SuperBlock(base, length, cls)
        self._blocks[key] = block
        addr = block.take()
        assert addr is not None
        return addr

    def _record(self, addr: int, cls: int, size: int, tid: int,
                callsite: str) -> None:
        self._serial += 1
        info = AllocationInfo(addr=addr, size=cls, requested_size=size,
                              tid=tid, callsite=callsite, serial=self._serial)
        if addr not in self._allocs:
            bisect.insort(self._starts, addr)
        self._allocs[addr] = info
        self.total_allocated += cls

    # -- queries ------------------------------------------------------------

    def find(self, addr: int) -> Optional[AllocationInfo]:
        """The allocation whose range contains ``addr``, if any.

        Dead allocations remain findable (most recent occupant of the
        address), so post-mortem reports can attribute accesses to objects
        freed before the report ran.
        """
        idx = bisect.bisect_right(self._starts, addr) - 1
        if idx < 0:
            return None
        info = self._allocs[self._starts[idx]]
        if info.contains(addr):
            return info
        return None

    def contains(self, addr: int) -> bool:
        """True when ``addr`` is inside the heap arena."""
        return self.arena.contains(addr)

    def line_index(self, addr: int) -> int:
        """Shadow-memory line index (bit shift from arena base)."""
        return self.arena.line_index(addr)

    def live_allocations(self) -> List[AllocationInfo]:
        return [a for a in self._allocs.values() if a.live]

    def all_allocations(self) -> List[AllocationInfo]:
        return list(self._allocs.values())
