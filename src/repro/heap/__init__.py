"""Simulated heap allocators.

Cheetah replaces the default allocator with a custom heap built on Heap
Layers: a fixed mmap'd arena, power-of-two size classes, and Hoard-style
per-thread heaps so that two threads never share a cache line across
*different* objects (Section 2.2). :class:`CheetahAllocator` reproduces
that design; :class:`BumpAllocator` is the naive shared allocator used as
a baseline to demonstrate the inter-object false sharing the custom heap
prevents.
"""

from repro.heap.allocator import AllocationInfo, CheetahAllocator
from repro.heap.arena import Arena, GLOBALS_BASE, HEAP_BASE
from repro.heap.bump import BumpAllocator
from repro.heap.sizeclass import size_class_of

__all__ = [
    "AllocationInfo",
    "Arena",
    "BumpAllocator",
    "CheetahAllocator",
    "GLOBALS_BASE",
    "HEAP_BASE",
    "size_class_of",
]
