"""Power-of-two size classes (paper Section 2.2).

Cheetah "manages objects based on the unit of power of two". Requests are
rounded up to the next power of two, with a minimum class so that tiny
objects still occupy a full word.
"""

from __future__ import annotations

MIN_SIZE_CLASS = 8


def size_class_of(size: int) -> int:
    """Smallest power-of-two class that holds ``size`` bytes.

    >>> size_class_of(1)
    8
    >>> size_class_of(8)
    8
    >>> size_class_of(9)
    16
    >>> size_class_of(4000)
    4096
    """
    if size <= 0:
        raise ValueError(f"allocation size must be positive, got {size}")
    if size <= MIN_SIZE_CLASS:
        return MIN_SIZE_CLASS
    return 1 << (size - 1).bit_length()
