"""The mmap-style arena backing the simulated heap.

Cheetah pre-allocates one fixed-size block with ``mmap`` and serves every
allocation from it, because the shadow-memory technique needs a known,
contiguous heap range so a cache line's metadata index is a bit shift away
(Section 2.2). The arena here is pure address arithmetic — no bytes are
stored — but it preserves exactly those properties: a fixed base, a fixed
size, bump-carving of superblocks, and O(1) address-to-line indexing.

The default bases echo the paper's report output (Figure 5 shows a heap
object at 0x400004b8): globals live at 0x10000000 and the heap at
0x40000000.
"""

from __future__ import annotations

from repro.errors import OutOfMemoryError

GLOBALS_BASE = 0x10000000
HEAP_BASE = 0x40000000
DEFAULT_ARENA_SIZE = 1 << 30  # 1 GiB of simulated address space


class Arena:
    """A fixed contiguous address range carved by bumping."""

    def __init__(self, base: int = HEAP_BASE, size: int = DEFAULT_ARENA_SIZE,
                 line_size: int = 64):
        if base % line_size:
            raise ValueError("arena base must be cache-line aligned")
        self.base = base
        self.size = size
        self.line_size = line_size
        self._line_shift = line_size.bit_length() - 1
        self._cursor = base

    @property
    def end(self) -> int:
        return self.base + self.size

    @property
    def used(self) -> int:
        return self._cursor - self.base

    def contains(self, addr: int) -> bool:
        """True when ``addr`` falls inside the arena's range."""
        return self.base <= addr < self.end

    def line_index(self, addr: int) -> int:
        """Shadow-memory index of the cache line holding ``addr``.

        This is the bit-shift lookup the paper describes: the index of the
        line relative to the arena base, usable to index a flat metadata
        array.
        """
        return (addr - self.base) >> self._line_shift

    def carve(self, size: int, align: int = 1) -> int:
        """Reserve ``size`` bytes (aligned to ``align``) and return the base."""
        addr = self._cursor
        if align > 1:
            addr = (addr + align - 1) & ~(align - 1)
        if addr + size > self.end:
            raise OutOfMemoryError(
                f"arena exhausted: need {size} bytes at {addr:#x}, "
                f"arena ends at {self.end:#x}"
            )
        self._cursor = addr + size
        return addr
