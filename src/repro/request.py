"""One request object naming a run end-to-end: :class:`RunRequest`.

Before the v2 API, choosing *how* a run executes meant three ad-hoc
selection knobs scattered over two config dataclasses and the CLI:
``MachineConfig.kernel`` (burst kernel), ``MachineConfig.mode``
(simulate / predict / sampled) and ``CheetahConfig.detector_mode``
(offline / windowed) — plus the PMU period and adaptive switches living
in a third config. Every layer (CLI ``build_configs``, ``Session``, the
run service, and now the HTTP job body of ``repro serve``) re-assembled
those configs with its own plumbing.

:class:`RunRequest` collapses all of that into one frozen, validated,
JSON-round-trippable dataclass. Each layer builds *from* it:

- the CLI maps parsed flags onto a request
  (:func:`repro.config.build_configs` returns it in
  ``CLIConfigs.request``);
- ``Session.from_request(request)`` builds the API facade;
- ``RunService.run_request(request)`` resolves it to a
  content-addressed :class:`~repro.service.spec.RunSpec` and serves it
  cache-first;
- the ``repro serve`` daemon accepts its dict form as the
  ``POST /v1/jobs`` body (``{"request": {...}}``).

The collapse is *lossless*: :meth:`machine_config`,
:meth:`pmu_config` and :meth:`cheetah_config` produce exactly the
configs the pre-v2 plumbing would have built, returning ``None`` when
every corresponding knob is at its default — which keeps
:meth:`~repro.service.spec.RunSpec.key` content hashes identical to
hand-built specs (``None`` configs canonicalize to their defaults).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.config import ConfigBase
from repro.core.profiler import CheetahConfig
from repro.errors import ConfigError
from repro.pmu.adaptive import AdaptiveConfig
from repro.pmu.sampler import PMUConfig
from repro.sim.params import MachineConfig

_KERNELS = ("fused", "vector", "auto")
_MODES = ("simulate", "predict", "sampled")
_DETECTORS = ("offline", "windowed")


@dataclass(frozen=True)
class RunRequest(ConfigBase):
    """Everything a caller states to run one workload, in one object.

    Attributes:
        workload: registry name (see ``repro list``).
        threads / scale / fixed / seed: workload construction knobs
            (``seed`` is the workload's rng seed).
        jitter_seed: the machine's timing-jitter seed.
        profile: attach the PMU and the Cheetah profiler. Profiling is
            also *implied* by any profiling-only knob below (``period``,
            ``adaptive``, ``detector``, ``true_sharing``, ``pmu``,
            ``cheetah``) — see :attr:`profiled` — mirroring the CLI,
            where ``--period``/``--detector``/``--adaptive`` switch a
            command into profiled mode.
        kernel: burst kernel (``fused`` / ``vector`` / ``auto``);
            ``None`` keeps the machine default.
        mode: execution mode (``simulate`` / ``predict`` / ``sampled``);
            ``None`` keeps the machine default.
        detector: detection mode (``offline`` / ``windowed``); ``None``
            keeps the Cheetah default.
        adaptive: enable the adaptive PMU sampling policy.
        period: PMU sampling period in instructions.
        true_sharing: include true-sharing instances in the report.
        line_size / cores: machine geometry overrides.
        numa_nodes / remote_fetch_penalty / remote_transfer_penalty:
            NUMA topology overrides (see
            :class:`~repro.sim.params.MachineConfig`); ``None`` keeps
            the machine default (single node, no penalties).
        machine / pmu / cheetah: full config overrides; the scalar knobs
            above are applied *on top* of them (an explicit ``kernel``
            wins over ``machine.kernel``).
    """

    workload: str
    threads: Optional[int] = None
    scale: float = 1.0
    fixed: bool = False
    seed: int = 0
    jitter_seed: int = 0xC0FFEE
    profile: bool = False
    kernel: Optional[str] = None
    mode: Optional[str] = None
    detector: Optional[str] = None
    adaptive: bool = False
    period: Optional[int] = None
    true_sharing: bool = False
    line_size: Optional[int] = None
    cores: Optional[int] = None
    numa_nodes: Optional[int] = None
    remote_fetch_penalty: Optional[int] = None
    remote_transfer_penalty: Optional[int] = None
    machine: Optional[MachineConfig] = None
    pmu: Optional[PMUConfig] = None
    cheetah: Optional[CheetahConfig] = None

    def __post_init__(self) -> None:
        if not isinstance(self.workload, str) or not self.workload:
            raise ConfigError(
                "RunRequest.workload must be a non-empty registry name, "
                f"got {self.workload!r}")
        if self.kernel is not None and self.kernel not in _KERNELS:
            raise ConfigError(
                f"kernel must be one of {_KERNELS}, got {self.kernel!r}")
        if self.mode is not None and self.mode not in _MODES:
            raise ConfigError(
                f"mode must be one of {_MODES}, got {self.mode!r}")
        if self.detector is not None and self.detector not in _DETECTORS:
            raise ConfigError(
                f"detector must be one of {_DETECTORS}, "
                f"got {self.detector!r}")
        if self.threads is not None and self.threads < 1:
            raise ConfigError(f"threads must be >= 1, got {self.threads}")
        if self.scale <= 0:
            raise ConfigError(f"scale must be positive, got {self.scale}")
        if self.period is not None and self.period < 1:
            raise ConfigError(f"period must be >= 1, got {self.period}")
        if self.numa_nodes is not None and self.numa_nodes < 1:
            raise ConfigError(
                f"numa_nodes must be >= 1, got {self.numa_nodes}")
        for name in ("remote_fetch_penalty", "remote_transfer_penalty"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ConfigError(f"{name} must be >= 0, got {value}")

    # -- derived state -------------------------------------------------------

    @property
    def profiled(self) -> bool:
        """Whether this request runs under the PMU + Cheetah.

        True when ``profile`` is set explicitly or any profiling-only
        knob is present.
        """
        return bool(self.profile or self.period is not None or self.adaptive
                    or self.detector is not None or self.true_sharing
                    or self.pmu is not None or self.cheetah is not None)

    def machine_config(self) -> Optional[MachineConfig]:
        """The machine config this request names, or ``None`` for the
        defaults (``None`` and ``MachineConfig()`` hash identically in a
        :class:`~repro.service.spec.RunSpec`)."""
        if (self.machine is None and self.kernel is None and self.mode is None
                and self.line_size is None and self.cores is None
                and self.numa_nodes is None
                and self.remote_fetch_penalty is None
                and self.remote_transfer_penalty is None):
            return None
        base = self.machine or MachineConfig()
        changes: Dict[str, Any] = {}
        if self.kernel is not None:
            changes["kernel"] = self.kernel
        if self.mode is not None:
            changes["mode"] = self.mode
        if self.line_size is not None:
            changes["cache_line_size"] = self.line_size
        if self.cores is not None:
            changes["num_cores"] = self.cores
        if self.numa_nodes is not None:
            changes["numa_nodes"] = self.numa_nodes
        if self.remote_fetch_penalty is not None:
            changes["remote_fetch_penalty"] = self.remote_fetch_penalty
        if self.remote_transfer_penalty is not None:
            changes["remote_transfer_penalty"] = self.remote_transfer_penalty
        return base.replace(**changes) if changes else base

    def pmu_config(self) -> Optional[PMUConfig]:
        """The PMU config, or ``None`` for the defaults."""
        if self.pmu is None and self.period is None and not self.adaptive:
            return None
        base = self.pmu or PMUConfig()
        if self.period is not None:
            base = base.replace(period=self.period)
        if self.adaptive:
            line = (self.line_size if self.line_size is not None
                    else MachineConfig().cache_line_size)
            base = base.replace(
                adaptive=AdaptiveConfig(enabled=True, line_size=line))
        return base

    def cheetah_config(self) -> Optional[CheetahConfig]:
        """The Cheetah config, or ``None`` for the defaults."""
        if (self.cheetah is None and self.detector is None
                and not self.true_sharing):
            return None
        base = self.cheetah or CheetahConfig()
        changes: Dict[str, Any] = {}
        if self.detector is not None:
            changes["detector_mode"] = self.detector
        if self.true_sharing:
            changes["report_true_sharing"] = True
        return base.replace(**changes) if changes else base

    # -- the three resolutions every layer shares ----------------------------

    def to_spec(self):
        """The content-addressed :class:`~repro.service.spec.RunSpec`."""
        from repro.service.spec import RunSpec
        return RunSpec(
            workload=self.workload, threads=self.threads, scale=self.scale,
            fixed=self.fixed, workload_seed=self.seed,
            jitter_seed=self.jitter_seed, with_cheetah=self.profiled,
            machine=self.machine_config(), pmu=self.pmu_config(),
            cheetah=self.cheetah_config())

    def session(self, *, obs: Any = None, observer: Any = None,
                check: bool = False):
        """A :class:`~repro.api.Session` configured from this request.

        ``obs`` / ``observer`` / ``check`` are execution-observation
        concerns, not part of the request's content-addressed identity,
        so they stay arguments rather than fields.
        """
        from repro.api import Session
        return Session(
            self.workload, threads=self.threads, scale=self.scale,
            fixed=self.fixed, seed=self.seed, jitter_seed=self.jitter_seed,
            machine=self.machine_config(), pmu=self.pmu_config(),
            cheetah=self.cheetah_config(), obs=obs, observer=observer,
            check=check)

    def execute(self):
        """Run this request directly (no cache): the daemon's miss path
        and the CLI's ``--no-cache`` path resolve to the same call."""
        return self.to_spec().execute()

    # -- (de)serialization ---------------------------------------------------

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRequest":
        """Build a request from a plain mapping (the HTTP body form).

        Nested ``machine`` / ``pmu`` / ``cheetah`` mappings decode
        through their own ``from_dict`` (their ``Optional[...]`` field
        types defeat :class:`ConfigBase`'s automatic recursion).
        """
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"RunRequest.from_dict expects a mapping, "
                f"got {type(data).__name__}")
        converted = dict(data)
        for name, config_cls in (("machine", MachineConfig),
                                 ("pmu", PMUConfig),
                                 ("cheetah", CheetahConfig)):
            value = converted.get(name)
            if isinstance(value, Mapping):
                converted[name] = config_cls.from_dict(value)
        return super().from_dict(converted)  # type: ignore[return-value]
