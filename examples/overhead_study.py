#!/usr/bin/env python
"""Overhead study: what does always-on Cheetah profiling cost?

Reproduces a slice of Figure 4: for a few representative applications,
runtime under Cheetah normalized to the native runtime — plus the same
comparison for the Predator-style full-instrumentation baseline, showing
why sampling matters for deployability.

Run:
    python examples/overhead_study.py
"""

from repro.baselines.predator import PredatorDetector
from repro.run import run_workload
from repro.workloads import get_workload

APPS = ("histogram", "swaptions", "streamcluster", "kmeans")


def main() -> None:
    print(f"{'application':>15s} {'native':>12s} {'Cheetah':>9s} "
          f"{'Predator':>9s}")
    for name in APPS:
        cls = get_workload(name)
        native = run_workload(cls(), jitter_seed=11).runtime
        cheetah = run_workload(cls(), jitter_seed=11,
                               with_cheetah=True).runtime
        predator = run_workload(cls(), jitter_seed=11,
                                observer=PredatorDetector()).runtime
        print(f"{name:>15s} {native:>12,} "
              f"{cheetah / native:>8.2f}x {predator / native:>8.2f}x")
    print("\nCheetah's PMU sampling keeps overhead in the percent range "
          "(paper: ~7% average);\nfull instrumentation costs multiples "
          "(paper: ~6x for Predator) — too much for production.")


if __name__ == "__main__":
    main()
