#!/usr/bin/env python
"""Mid-run reporting: "interrupted by the user" (paper Section 2.4).

Cheetah reports "either at the end of an execution, or when interrupted
by the user". Long-running services can't wait for the end; this
example installs checkpoints that snapshot the report while the program
is still running and shows detection firing long before completion.

Run:
    python examples/interrupt_report.py
"""

from repro import CheetahProfiler, Engine, MachineConfig, PMU, PMUConfig
from repro.heap.allocator import CheetahAllocator
from repro.symbols.table import SymbolTable
from repro.workloads.phoenix import LinearRegression


def main() -> None:
    workload = LinearRegression(num_threads=8)
    symbols = SymbolTable()
    workload.setup(symbols)
    config = MachineConfig()
    engine = Engine(config=config, symbols=symbols,
                    pmu=PMU(PMUConfig(period=64)),
                    allocator=CheetahAllocator(line_size=64))
    profiler = CheetahProfiler()
    profiler.attach(engine)

    snapshots = []

    def interrupt(eng, now):
        report = profiler.report_now(now)
        best = report.best()
        snapshots.append((now, report))
        found = (f"{len(report.significant)} significant, top: "
                 f"{best.profile.label} ({best.improvement:.2f}x)"
                 if best else "nothing significant yet")
        print(f"  [t={now:>9,}] {found}")

    print("interrupting the run every ~200k cycles:")
    for cycle in range(200_000, 1_200_001, 200_000):
        engine.add_checkpoint(cycle, interrupt)

    result = engine.run(workload.main)
    final = profiler.finalize(result)
    print(f"\nfinal report at t={result.runtime:,}:")
    best = final.best()
    print(f"  {best.profile.label}: predicted {best.improvement:.2f}x")
    first_hit = next((t for t, rep in snapshots if rep.significant), None)
    if first_hit:
        print(f"\nthe instance was already visible at t={first_hit:,} — "
              f"{100 * first_hit / result.runtime:.0f}% into the run.")


if __name__ == "__main__":
    main()
