#!/usr/bin/env python
"""Profiling your own code: write a workload, find the bug, fix it.

This example builds a small producer/statistics program *with a planted
false sharing bug* directly against the public API (no predefined
workload), lets Cheetah find it, and then uses the word-level report to
choose the padding.

The bug: per-thread statistics structs of 16 bytes packed into one
array, so four threads share each 64-byte line.

Run:
    python examples/custom_workload.py
"""

from repro import profile, run_plain

NUM_THREADS = 8
ITEMS_PER_THREAD = 1200
STATS_STRIDE_BUGGY = 16  # four 16-byte structs per 64-byte line
STATS_STRIDE_FIXED = 64  # one struct per line


def make_program(stats_stride):
    """A fork-join program: threads consume private queues and bump
    per-thread statistics (count, sum, min, max = 4 words)."""

    def worker(api, queue, stats):
        for item in range(ITEMS_PER_THREAD):
            # Read the next item from this thread's private queue.
            yield from api.load(queue + (item % 256) * 4)
            yield from api.work(4)  # process it
            # Update the four statistics words (the falsely-shared part).
            yield from api.loop(stats, 4, 4, read=True, write=True, work=1)

    def main(api):
        queues = yield from api.malloc(NUM_THREADS * 1024,
                                       callsite="pipeline.py:queues")
        # Initialise the queues serially (fills the serial-phase samples
        # Cheetah calibrates its prediction against).
        yield from api.loop(queues, 4, NUM_THREADS * 256, read=False,
                            write=True, work=1)
        yield from api.loop(queues, 4, NUM_THREADS * 256, write=False,
                            work=1, repeat=2)
        stats = yield from api.malloc(NUM_THREADS * stats_stride,
                                      callsite="pipeline.py:stats")
        tids = []
        for i in range(NUM_THREADS):
            tid = yield from api.spawn(worker, queues + i * 1024,
                                       stats + i * stats_stride)
            tids.append(tid)
        yield from api.join_all(tids)
        # Merge the statistics serially.
        yield from api.loop(stats, stats_stride, NUM_THREADS, write=False,
                            work=2)

    return main


def main() -> None:
    print("=== profiling the buggy layout (16-byte stats structs) ===\n")
    result, report = profile(make_program(STATS_STRIDE_BUGGY))
    print(report.render())

    best = report.best()
    if best is None:
        print("nothing significant found")
        return

    print("\nThe word map shows each thread on its own words of shared "
          "lines -> false sharing.")
    print("Fix: pad the stats struct to one cache line (16 -> 64 bytes).")

    buggy = run_plain(make_program(STATS_STRIDE_BUGGY))
    fixed = run_plain(make_program(STATS_STRIDE_FIXED))
    real = buggy.runtime / fixed.runtime
    print(f"\nreal speedup:      {real:.2f}x")
    print(f"Cheetah predicted: {best.improvement:.2f}x")

    print("\n=== re-profiling the fixed layout ===")
    _, clean_report = profile(make_program(STATS_STRIDE_FIXED))
    if clean_report.significant:
        print("still reported (unexpected)")
    else:
        print("Cheetah reports no significant false sharing. Bug fixed.")


if __name__ == "__main__":
    main()
