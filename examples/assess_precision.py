#!/usr/bin/env python
"""Regenerate the paper's Table 1: how precise are the predictions?

For linear_regression and streamcluster at 2/4/8/16 threads, compare
Cheetah's predicted improvement (from a profiled run of the unfixed
program) with the real improvement (unfixed vs fixed native runs).

Run (takes a couple of minutes):
    python examples/assess_precision.py [--fast]
"""

import sys

from repro.experiments import table1


def main() -> None:
    fast = "--fast" in sys.argv
    if fast:
        result = table1.run(seeds=(11,), thread_counts=(16, 4))
    else:
        result = table1.run()
    print(result.render())
    print(f"\nworst |diff|: {result.worst_diff_percent:.1f}% "
          "(paper: <10% on every row)")


if __name__ == "__main__":
    main()
