#!/usr/bin/env python
"""Quickstart: detect false sharing in the paper's Figure 1 microbenchmark.

Eight threads increment adjacent 4-byte array elements — logically
independent work that shares cache lines. We run it natively, run it
under Cheetah, print Cheetah's report, then apply the padding fix and
compare the measured speedup with Cheetah's prediction.

Everything goes through :class:`repro.Session` — one object holding the
workload and configuration, with ``.run()`` (native), ``.profile()``
(PMU + Cheetah) and ``.report()`` computed lazily and cached.

Run:
    python examples/quickstart.py
"""

from repro import Session


def main() -> None:
    threads = 8
    session = Session("array_increment", threads=threads)

    print("=== 1. native run (with the false sharing bug) ===")
    buggy = session.run().result
    print(f"runtime: {buggy.runtime:,} cycles, "
          f"{buggy.total_accesses:,} memory accesses, "
          f"{buggy.machine.directory.total_invalidations():,} "
          "cache invalidations (ground truth)\n")

    print("=== 2. the same run under Cheetah ===")
    profiled = session.profile().result
    report = session.report()
    overhead = profiled.runtime / buggy.runtime
    print(f"profiling overhead: {(overhead - 1) * 100:+.1f}%\n")
    print(report.render())

    print("\n=== 3. apply the padding fix and compare ===")
    fixed = Session("array_increment", threads=threads,
                    fixed=True).run().result
    real = buggy.runtime / fixed.runtime
    best = report.best()
    predicted = best.improvement if best else float("nan")
    print(f"real speedup from padding:      {real:.2f}x")
    print(f"Cheetah's predicted speedup:    {predicted:.2f}x")
    if best:
        diff = (predicted - real) / real * 100
        print(f"prediction error:               {diff:+.1f}%")
        print("\n(Cheetah predicts the *best case* of fixing — Section 3.1"
              " —\nso a modest optimistic bias on compute-diluted kernels "
              "is expected.)")


if __name__ == "__main__":
    main()
