#!/usr/bin/env python
"""The paper's flagship case study (Sections 4.2.1, Figures 5 and 6).

Phoenix linear_regression passes one ``tid_args`` array of 56-byte
per-thread structs to its workers; each worker updates its own struct's
accumulators per input point, and adjacent structs share cache lines.
Cheetah pinpoints the allocation site, shows the word-level access map
(each word touched by exactly one thread — the signature of FALSE
sharing), and predicts the speedup of padding the struct, which we then
verify by actually applying the fix.

Run:
    python examples/case_study_linear_regression.py [num_threads]
"""

import sys

from repro import profile, run_plain
from repro.workloads.phoenix import (
    LINEAR_REGRESSION_CALLSITE, LinearRegression,
)


def main() -> None:
    threads = int(sys.argv[1]) if len(sys.argv) > 1 else 16

    print(f"=== profiling linear_regression with {threads} threads ===\n")
    result, report = profile(LinearRegression(num_threads=threads))
    print(report.render())

    best = report.best()
    if best is None:
        print("no significant instance found (try more threads)")
        return

    assert best.profile.label == LINEAR_REGRESSION_CALLSITE

    print("\n=== the fix: pad lreg_args to a full cache line ===")
    print("typedef struct { ... long long SX, SY, SXX, SYY, SXY;")
    print("                 char padding[64 - sizeof(...)...]; } lreg_args;")

    original = run_plain(LinearRegression(num_threads=threads))
    fixed = run_plain(LinearRegression(num_threads=threads, fixed=True))
    real = original.runtime / fixed.runtime

    print(f"\nruntime before fix: {original.runtime:>12,} cycles")
    print(f"runtime after  fix: {fixed.runtime:>12,} cycles")
    print(f"real improvement:   {real:.2f}x")
    print(f"Cheetah predicted:  {best.improvement:.2f}x "
          f"({(best.improvement - real) / real * 100:+.1f}% off)")
    print("\n(paper at 16 threads: predicted 6.44x, real 6.7x; single "
          "runs vary with\ncontention timing — Table 1 averages several "
          "seeds, see examples/assess_precision.py)")


if __name__ == "__main__":
    main()
