#!/usr/bin/env python
"""Offline, DARWIN-style two-round analysis with recorded traces.

Round 1: run the program once under a (zero-perturbation) tracer and
save the full access trace to disk. Round 2: analyse the trace offline —
replay it through Cheetah's detector at different sampling rates without
re-running the program, and compare against the exact (unsampled)
verdict.

Run:
    python examples/offline_analysis.py [trace-file]
"""

import sys
import tempfile
from pathlib import Path

from repro.core.detection import DetectorConfig, FalseSharingDetector
from repro.run import run_workload
from repro.trace import (
    TraceRecorder, downsample, load_trace, replay_into_detector,
    save_trace,
)
from repro.workloads.phoenix import LinearRegression


def main() -> None:
    path = Path(sys.argv[1]) if len(sys.argv) > 1 else (
        Path(tempfile.gettempdir()) / "linear_regression.trace.gz")

    print("=== round 1: record the full access trace ===")
    recorder = TraceRecorder()
    outcome = run_workload(LinearRegression(num_threads=8),
                           jitter_seed=11, observer=recorder)
    count = save_trace(recorder, path)
    print(f"recorded {count:,} accesses "
          f"({outcome.result.total_accesses:,} executed) -> {path}")

    print("\n=== round 2: offline analysis at several sampling rates ===")
    allocator = outcome.result.allocator
    symbols = outcome.result.symbols
    print(f"{'period':>8} {'samples':>9} {'instances':>10} "
          f"{'invalidations':>14}")
    for period in (1, 32, 256, 2048):
        detector = FalseSharingDetector(
            DetectorConfig(min_invalidations=4))
        records = load_trace(path)
        if period > 1:
            records = downsample(records, period=period)
        replayed = replay_into_detector(records, detector,
                                        serial_tids={0})
        profiles = detector.build_objects(allocator, symbols)
        invals = profiles[0].invalidations if profiles else 0
        print(f"{period:>8} {replayed:>9,} {len(profiles):>10} "
              f"{invals:>14}")

    print("\nperiod=1 is the exact (Predator-equivalent) analysis; the "
          "hot object stays\nvisible under sparse sampling while its "
          "invalidation counts shrink proportionally.")


if __name__ == "__main__":
    main()
