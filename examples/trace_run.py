#!/usr/bin/env python
"""Trace a profiled run and read its metrics.

Runs the histogram workload under Cheetah with the observability layer
attached, writes a Chrome ``trace_event`` file you can drop into
https://ui.perfetto.dev, and prints the headline metrics — including the
conservation identity tying the live access counters to the run's
ground truth (see docs/observability.md).

Run:
    python examples/trace_run.py
"""

from repro import ObsConfig, Session

TRACE_PATH = "histogram.trace.json"


def main() -> None:
    session = Session("histogram", threads=8,
                      obs=ObsConfig(trace_accesses=False))
    outcome = session.profile()

    outcome.obs.write_trace(TRACE_PATH)
    tracer = outcome.obs.tracer
    print(f"trace: {TRACE_PATH} ({len(tracer.events):,} events, "
          f"{tracer.dropped:,} dropped)")
    print("open it at https://ui.perfetto.dev ('Open trace file'):")
    print("  - one track per thread (quanta, joins, lifetime spans)")
    print("  - one track per core (coherence misses)")
    print("  - a 'phases' track (serial vs parallel)\n")

    metrics = outcome.metrics
    counters = metrics["counters"]
    print("headline metrics:")
    print(f"  runtime:          "
          f"{metrics['gauges']['sim_runtime_cycles']:,} cycles")
    by_outcome = counters["machine_accesses_total"]
    for outcome_kind in sorted(by_outcome):
        print(f"  accesses[{outcome_kind}]: {by_outcome[outcome_kind]:,}")
    print(f"  invalidations:    {counters['coherence_invalidations_total']:,}")
    print(f"  PMU samples:      {counters['pmu_samples_total']['memory']:,} "
          f"memory / {counters['pmu_samples_total']['trap']:,} trap")
    print(f"  detector lines:   "
          f"{metrics['gauges']['detector_detailed_lines']} detailed")

    # Conservation: the per-access counters sum to the ground truth.
    assert sum(by_outcome.values()) == outcome.result.total_accesses
    print("\nconservation holds: sum(machine_accesses_total) == "
          f"{outcome.result.total_accesses:,} ground-truth accesses")


if __name__ == "__main__":
    main()
