"""Documentation consistency checks: the docs must not drift from the
code they describe."""

import re
from pathlib import Path

import pytest

from repro.experiments.full_report import SECTIONS
from repro.workloads import FIGURE4_NAMES, all_workload_names

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestTopLevelDocs:
    def test_required_documents_exist(self):
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "docs/architecture.md", "docs/algorithm.md",
                     "docs/calibration.md", "docs/workloads.md"):
            assert (ROOT / name).is_file(), f"missing {name}"

    def test_readme_links_resolve(self):
        readme = read("README.md")
        for target in re.findall(r"\]\(([^)#]+\.md)\)", readme):
            assert (ROOT / target).is_file(), f"broken link: {target}"

    def test_examples_listed_in_readme_exist(self):
        readme = read("README.md")
        for script in re.findall(r"`(\w+\.py)`", readme):
            if script.startswith("test_") or script == "conftest.py":
                continue  # benchmark files, checked separately
            assert (ROOT / "examples" / script).is_file(), script

    def test_design_mentions_every_figure4_workload(self):
        text = read("docs/workloads.md")
        for name in FIGURE4_NAMES:
            assert name in text, f"{name} undocumented"

    def test_experiments_md_covers_all_paper_artifacts(self):
        text = read("EXPERIMENTS.md")
        for artifact in ("Figure 1", "Figure 4", "Figure 5", "Figure 7",
                         "Table 1", "4.2.3"):
            assert artifact in text


class TestBenchmarksCoverArtifacts:
    def test_one_benchmark_file_per_artifact(self):
        benches = {p.name for p in (ROOT / "benchmarks").glob("test_*.py")}
        for required in ("test_figure1.py", "test_figure4.py",
                         "test_figure5.py", "test_figure7.py",
                         "test_table1.py", "test_comparison.py"):
            assert required in benches

    def test_full_report_covers_all_paper_artifacts(self):
        titles = " ".join(title for title, _ in SECTIONS)
        for artifact in ("Figure 1", "Figure 4", "Figure 5", "Figure 7",
                         "Table 1", "4.2.3"):
            assert artifact in titles


class TestWorkloadDocstrings:
    def test_every_workload_class_documents_itself(self):
        from repro.workloads.base import get_workload
        for name in all_workload_names():
            cls = get_workload(name)
            assert cls.__doc__ and len(cls.__doc__) > 30, name

    def test_documented_bugs_cite_the_paper_sections(self):
        from repro.workloads.base import get_workload
        lr = get_workload("linear_regression")
        sc = get_workload("streamcluster")
        assert "Figure 6" in lr.__doc__ or "Figure 5" in lr.__doc__
        assert "32" in sc.__doc__  # the wrong CACHE_LINE value
