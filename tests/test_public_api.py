"""Pins the frozen v1 public surface of the ``repro`` package.

These tests are the API contract: a change that adds to, removes from,
or renames anything in ``repro.__all__`` must bump ``__api_version__``
and edit the expected set here *deliberately*. Everything outside the
surface is reachable only through its defining submodule (or, for the
pre-v1 names, through a DeprecationWarning shim).
"""

import warnings

import pytest

import repro

#: The frozen v1 surface, verbatim. Do not edit casually — this list is
#: the compatibility promise pinned by test_surface_is_exactly_v1.
V1_SURFACE = {
    # the front door and the canonical runner
    "Session", "run_workload", "RunOutcome", "RunSummary", "DEFAULT_SEEDS",
    # config dataclasses
    "MachineConfig", "LatencyModel", "PMUConfig", "DetectorConfig",
    "CheetahConfig", "ObsConfig",
    # reporting and errors
    "CheetahReport", "ReproError",
    # the run service
    "RunService", "RunSpec", "ResultStore", "Scheduler", "JobFailure",
    "cached_run", "default_cache_dir", "using_service",
    # metadata
    "__version__", "__api_version__",
}

#: Pre-v1 names that still import, but only through the deprecation shim.
DEPRECATED_NAMES = (
    "profile", "run_plain", "Engine", "RunResult", "PMU",
    "CheetahProfiler", "SymbolTable", "Observability", "CheetahAllocator",
)


class TestFrozenSurface:
    def test_api_version_is_one(self):
        assert repro.__api_version__ == 1

    def test_surface_is_exactly_v1(self):
        assert set(repro.__all__) == V1_SURFACE

    def test_every_name_resolves_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in sorted(V1_SURFACE):
                assert getattr(repro, name) is not None

    def test_no_deprecated_name_in_surface(self):
        assert not set(DEPRECATED_NAMES) & set(repro.__all__)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_an_api

    def test_dir_lists_surface_and_shims(self):
        listing = dir(repro)
        for name in V1_SURFACE | set(DEPRECATED_NAMES):
            assert name in listing


class TestDeprecatedShims:
    @pytest.mark.parametrize("name", DEPRECATED_NAMES)
    def test_shim_warns_and_resolves(self, name):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = getattr(repro, name)
        assert value is not None
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_shim_resolves_to_real_object(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            from repro.sim.engine import Engine
            assert repro.Engine is Engine
            from repro.obs import Observability
            assert repro.Observability is Observability

    def test_profile_shim_still_works(self):
        from repro.workloads.micro import ArrayIncrement
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result, report = repro.profile(
                ArrayIncrement(num_threads=2, scale=0.1))
        assert result.runtime > 0
        assert report is not None
