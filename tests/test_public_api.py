"""Pins the frozen v2 public surface of the ``repro`` package.

These tests are the API contract: a change that adds to, removes from,
or renames anything in ``repro.__all__`` must bump ``__api_version__``
and edit the expected set here *deliberately*. Everything outside the
surface is reachable only through its defining submodule (or, for the
pre-v1 names, through a DeprecationWarning shim).

v2 is a strict superset of v1: ``test_v1_names_survive`` guards the
compatibility promise that nothing a v1 caller imported ever goes away
within the v2 line.
"""

import warnings

import pytest

import repro

#: The v1 surface, kept verbatim as the backward-compatibility floor.
V1_SURFACE = {
    # the front door and the canonical runner
    "Session", "run_workload", "RunOutcome", "RunSummary", "DEFAULT_SEEDS",
    # config dataclasses
    "MachineConfig", "LatencyModel", "PMUConfig", "DetectorConfig",
    "CheetahConfig", "ObsConfig",
    # reporting and errors
    "CheetahReport", "ReproError",
    # the run service
    "RunService", "RunSpec", "ResultStore", "Scheduler", "JobFailure",
    "cached_run", "default_cache_dir", "using_service",
    # metadata
    "__version__", "__api_version__",
}

#: The frozen v2 surface, verbatim. Do not edit casually — this set is
#: the compatibility promise pinned by test_surface_is_exactly_v2.
V2_SURFACE = V1_SURFACE | {
    # the unified request object (one front door for every layer)
    "RunRequest",
    # streaming (windowed online) detection
    "StreamingConfig", "StreamingDetector", "StreamingFinding",
    # analytical entry points
    "predict_outcome", "sampled_outcome",
    # the serve daemon and its cross-run findings store
    "ServeConfig", "FindingsSink",
}

#: The workload-registry API, exposed *additively* on top of the frozen
#: v2 surface (``__api_version__`` stays 2; nothing a v2 caller imports
#: moved or changed meaning).
WORKLOAD_API_NAMES = {
    "GroundTruth", "Verdict", "Workload", "get_workload", "iter_workloads",
}

#: Pre-v1 names that still import, but only through the deprecation shim.
DEPRECATED_NAMES = (
    "profile", "run_plain", "Engine", "RunResult", "PMU",
    "CheetahProfiler", "SymbolTable", "Observability", "CheetahAllocator",
)


class TestFrozenSurface:
    def test_api_version_is_two(self):
        assert repro.__api_version__ == 2

    def test_surface_is_exactly_v2_plus_workload_api(self):
        assert set(repro.__all__) == V2_SURFACE | WORKLOAD_API_NAMES

    def test_v1_names_survive(self):
        """v2 removed nothing a v1 caller could import."""
        assert V1_SURFACE <= set(repro.__all__)

    def test_v2_names_survive(self):
        """The workload-API extension removed nothing from v2."""
        assert V2_SURFACE <= set(repro.__all__)

    def test_every_name_resolves_without_warning(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            for name in sorted(V2_SURFACE | WORKLOAD_API_NAMES):
                assert getattr(repro, name) is not None

    def test_no_deprecated_name_in_surface(self):
        assert not set(DEPRECATED_NAMES) & set(repro.__all__)

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_an_api

    def test_dir_lists_surface_and_shims(self):
        listing = dir(repro)
        for name in V2_SURFACE | WORKLOAD_API_NAMES | set(DEPRECATED_NAMES):
            assert name in listing


class TestDeprecatedShims:
    @pytest.mark.parametrize("name", DEPRECATED_NAMES)
    def test_shim_warns_and_resolves(self, name):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = getattr(repro, name)
        assert value is not None
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_shim_resolves_to_real_object(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            from repro.sim.engine import Engine
            assert repro.Engine is Engine
            from repro.obs import Observability
            assert repro.Observability is Observability

    def test_profile_shim_still_works(self):
        from repro.workloads.micro import ArrayIncrement
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result, report = repro.profile(
                ArrayIncrement(num_threads=2, scale=0.1))
        assert result.runtime > 0
        assert report is not None


class TestV2Names:
    """The v2 additions are the real objects, not re-exports of shims."""

    def test_run_request_front_door(self):
        request = repro.RunRequest(workload="histogram", threads=2)
        assert request.to_spec().workload == "histogram"

    def test_serve_config_round_trips(self):
        config = repro.ServeConfig(port=0, workers=1)
        assert repro.ServeConfig.from_dict(config.to_dict()) == config

    def test_findings_sink_constructs(self, tmp_path):
        sink = repro.FindingsSink(tmp_path / "sink")
        assert sink.stats()["rows"] == 0

    def test_streaming_types_are_core_types(self):
        from repro.core.streaming import StreamingDetector, StreamingFinding
        assert repro.StreamingDetector is StreamingDetector
        assert repro.StreamingFinding is StreamingFinding

    def test_predict_entry_points_are_predict_package(self):
        from repro.predict import predict_outcome, sampled_outcome
        assert repro.predict_outcome is predict_outcome
        assert repro.sampled_outcome is sampled_outcome


class TestWorkloadAPINames:
    """The additive workload-registry names are the real objects."""

    def test_names_are_workloads_package_objects(self):
        from repro.workloads import (
            GroundTruth, Verdict, Workload, get_workload, iter_workloads,
        )
        assert repro.GroundTruth is GroundTruth
        assert repro.Verdict is Verdict
        assert repro.Workload is Workload
        assert repro.get_workload is get_workload
        assert repro.iter_workloads is iter_workloads

    def test_ground_truth_is_queryable(self):
        cls = repro.get_workload("linear_regression")
        truth = cls.ground_truth
        assert truth.verdict is repro.Verdict.FALSE_SHARING
        assert truth.significant

    def test_iter_workloads_filters(self):
        names = [cls.name
                 for cls in repro.iter_workloads(suite="concurrent")]
        assert "producer_consumer_ring" in names
        assert "linear_regression" not in names


class TestDeprecatedWorkloadFlags:
    """The old boolean pair still reads, derived from ground_truth,
    with a DeprecationWarning — on classes and on instances."""

    @pytest.mark.parametrize("attr", ["documented_false_sharing",
                                      "significant_false_sharing"])
    def test_class_access_warns(self, attr):
        cls = repro.get_workload("linear_regression")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            value = getattr(cls, attr)
        assert value is True
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)
        assert any("ground_truth" in str(w.message) for w in caught)

    def test_instance_access_warns_and_derives(self):
        cls = repro.get_workload("kmeans")
        workload = cls(num_threads=2, scale=0.1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            assert workload.documented_false_sharing is False
            assert workload.significant_false_sharing is False
        assert any(issubclass(w.category, DeprecationWarning)
                   for w in caught)

    def test_negligible_false_sharing_derivation(self):
        cls = repro.get_workload("histogram")
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            assert cls.documented_false_sharing is True
            assert cls.significant_false_sharing is False
