"""Additional engine coverage: API helpers, checkpoints, burst-boundary
behaviour, observer+PMU composition, RunResult accessors."""

import pytest

from repro.errors import SimulationError
from repro.pmu.sampler import PMU, PMUConfig
from repro.sim.engine import Engine, Observer
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig


def quiet_engine(**kwargs):
    kwargs.setdefault("machine", Machine(MachineConfig(), timing_jitter=0))
    return Engine(**kwargs)


class TestApiHelpers:
    def test_fence_is_visible_no_memory_traffic(self):
        def main(api):
            yield from api.fence()
        result = quiet_engine().run(main)
        assert result.threads[0].mem_accesses == 0
        assert result.threads[0].instructions == 1

    def test_work_zero_is_skipped(self):
        def main(api):
            yield from api.work(0)
            yield from api.work(-5)
        result = quiet_engine().run(main)
        assert result.runtime == 0

    def test_spawn_with_name(self):
        def child(api):
            yield from api.work(1)
        def main(api):
            tid = yield from api.spawn(child, name="renderer")
            yield from api.join(tid)
        result = quiet_engine().run(main)
        assert result.threads[1].name == "renderer"

    def test_default_thread_name_from_function(self):
        def encoder_worker(api):
            yield from api.work(1)
        def main(api):
            tid = yield from api.spawn(encoder_worker)
            yield from api.join(tid)
        result = quiet_engine().run(main)
        assert result.threads[1].name == "encoder_worker"

    def test_load_returns_none_value(self):
        # Loads have no modelled value; the API returns None.
        def main(api):
            value = yield from api.load(0x100)
            assert value is None
        quiet_engine().run(main)


class TestCallsiteCapture:
    def test_nested_helper_reports_workload_frame(self):
        def allocate_buffer(api, size):
            addr = yield from api.malloc(size)
            return addr
        def main(api):
            addr = yield from allocate_buffer(api, 64)
            yield from api.store(addr)
        engine = quiet_engine()
        engine.run(main)
        info = engine.allocator.all_allocations()[0]
        # The deepest non-API frame is inside this test file.
        assert info.callsite.startswith("test_engine_more.py:")

    def test_callsites_distinguish_sites(self):
        def main(api):
            a = yield from api.malloc(64)
            b = yield from api.malloc(64)
            yield from api.store(a)
            yield from api.store(b)
        engine = quiet_engine()
        engine.run(main)
        sites = [i.callsite for i in engine.allocator.all_allocations()]
        assert len(set(sites)) == 2


class TestBurstBoundaries:
    def test_two_threads_interleave_within_bursts(self):
        # A long burst must not run to completion atomically: the
        # min-clock discipline interleaves at access granularity, which
        # the invalidation counts depend on.
        def worker(api, addr):
            yield from api.loop(addr, 0, 1, read=True, write=True,
                                repeat=200)
        def main(api):
            buf = yield from api.malloc(64)
            t1 = yield from api.spawn(worker, buf)
            t2 = yield from api.spawn(worker, buf + 4)
            yield from api.join(t1)
            yield from api.join(t2)
        engine = quiet_engine()
        result = engine.run(main)
        # If bursts ran atomically there would be exactly 2 transfers;
        # interleaved execution produces orders of magnitude more.
        assert result.machine.directory.total_invalidations() > 50

    def test_repeat_zero_burst_is_noop(self):
        def main(api):
            yield from api.loop(0x1000, 4, 5, repeat=0)
            yield from api.work(7)
        result = quiet_engine().run(main)
        assert result.runtime == 7
        assert result.threads[0].mem_accesses == 0


class TestCheckpoints:
    def test_checkpoint_at_zero_fires_immediately(self):
        seen = []
        def main(api):
            yield from api.work(100)
        engine = quiet_engine()
        engine.add_checkpoint(0, lambda e, t: seen.append(t))
        engine.run(main)
        assert seen and seen[0] >= 0

    def test_checkpoint_beyond_end_never_fires(self):
        seen = []
        def main(api):
            yield from api.work(10)
        engine = quiet_engine()
        engine.add_checkpoint(10**12, lambda e, t: seen.append(t))
        engine.run(main)
        assert seen == []

    def test_callback_can_inspect_live_threads(self):
        # Two children keep the scheduler alternating in bounded quanta,
        # so the checkpoint observes them mid-flight. (Pending checkpoints
        # also bound the quantum themselves — see
        # test_checkpoint_regression.py — so a single runnable thread
        # would work too; two threads additionally pin the states seen.)
        def child(api):
            for _ in range(100):
                yield from api.loop(0x3000, 4, 10, read=True, write=False,
                                    work=100)
        def main(api):
            t1 = yield from api.spawn(child)
            t2 = yield from api.spawn(child)
            yield from api.join(t1)
            yield from api.join(t2)
        states = []
        engine = quiet_engine()
        engine.add_checkpoint(
            50_000,
            lambda e, t: states.append(
                (e.threads[1].state.value, e.threads[2].state.value)))
        engine.run(main)
        assert states == [("runnable", "runnable")]


class TestComposition:
    def test_observer_and_pmu_together(self):
        class Counting(Observer):
            cost_per_access = 0
            def __init__(self):
                self.count = 0
            def on_access(self, *args):
                self.count += 1
        obs = Counting()
        pmu = PMU(PMUConfig(period=8, handler_cost=0, trap_cost=0,
                            thread_setup_cost=0))
        seen = []
        pmu.install_handler(seen.append)
        def main(api):
            yield from api.loop(0x1000, 4, 100, read=True, write=False)
        engine = quiet_engine(observer=obs, pmu=pmu)
        result = engine.run(main)
        assert obs.count == 100       # observer sees everything
        assert 5 <= len(seen) <= 25   # PMU samples sparsely


class TestRunResult:
    def test_accessors(self):
        def child(api):
            yield from api.loop(0x2000, 4, 10, read=True, write=False)
        def main(api):
            tid = yield from api.spawn(child)
            yield from api.join(tid)
        result = quiet_engine().run(main)
        assert result.thread_runtime(1) == result.threads[1].runtime
        assert result.total_accesses == 10
        assert result.total_instructions >= 10
        # The run records which burst kernel executed it.
        assert result.metadata["kernel"] in ("fused", "vector")
        assert isinstance(result.metadata["kernel_numpy"], bool)
