"""Tests for the Predator and ownership-tracking baselines."""

import pytest

from repro.baselines.ownership import OwnershipTracker
from repro.baselines.predator import PredatorDetector
from repro.core.cacheline import TwoEntryTable
from repro.heap.allocator import CheetahAllocator
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable


class TestOwnershipTracker:
    def test_first_write_no_invalidation(self):
        t = OwnershipTracker()
        assert t.record(1, tid=1, is_write=True) is False

    def test_write_over_other_owner_invalidates(self):
        t = OwnershipTracker()
        t.record(1, tid=1, is_write=True)
        assert t.record(1, tid=2, is_write=True) is True
        assert t.invalidations(1) == 1

    def test_reads_accumulate_owners(self):
        t = OwnershipTracker()
        t.record(1, tid=1, is_write=False)
        t.record(1, tid=2, is_write=False)
        assert t.record(1, tid=3, is_write=True) is True

    def test_write_resets_ownership_to_writer(self):
        t = OwnershipTracker()
        t.record(1, tid=1, is_write=False)
        t.record(1, tid=2, is_write=True)
        # Now only tid 2 owns: its own next write is free.
        assert t.record(1, tid=2, is_write=True) is False

    def test_same_thread_stream_never_invalidates(self):
        t = OwnershipTracker()
        for _ in range(10):
            assert not t.record(5, tid=1, is_write=True)
            t.record(5, tid=1, is_write=False)
        assert t.total_invalidations() == 0

    def test_bits_used_scales_with_threads_and_lines(self):
        # The memory-consumption argument of Section 2.3.
        t = OwnershipTracker()
        for line in range(10):
            for tid in range(64):
                t.record(line, tid=tid, is_write=False)
        assert t.bits_used() == 10 * 64

    def test_bits_used_zero_when_untouched(self):
        assert OwnershipTracker().bits_used() == 0

    def test_lines_with_invalidations(self):
        t = OwnershipTracker()
        t.record(1, tid=1, is_write=True)
        t.record(1, tid=2, is_write=True)
        t.record(2, tid=1, is_write=True)
        assert t.lines_with_invalidations(1) == {1: 1}


class TestTwoEntryTableAgreesWithOwnership:
    """The two-entry table is a bounded-memory approximation of the
    ownership rule; on write-write ping-pong streams they agree
    exactly, and in general the table never reports MORE invalidations
    from a single-writer stream."""

    def test_agreement_on_write_pingpong(self):
        table = TwoEntryTable()
        owner = OwnershipTracker()
        stream = [(tid, True) for tid in (1, 2, 1, 2, 2, 1, 1, 2)] * 5
        table_inv = sum(table.record_write(t) for t, w in stream)
        owner_inv = sum(owner.record(0, tid=t, is_write=w)
                        for t, w in stream)
        assert table_inv == owner_inv

    def test_single_writer_no_invalidations_in_either(self):
        table = TwoEntryTable()
        owner = OwnershipTracker()
        for _ in range(50):
            assert not table.record_write(1)
            assert not owner.record(0, tid=1, is_write=True)


def run_with_predator(program, min_invalidations=10, jitter_seed=3):
    config = MachineConfig()
    predator = PredatorDetector(min_invalidations=min_invalidations)
    engine = Engine(config=config,
                    machine=Machine(config, jitter_seed=jitter_seed),
                    observer=predator, symbols=SymbolTable(),
                    allocator=CheetahAllocator(line_size=64))
    result = engine.run(program)
    return result, predator, engine


def fs_program(api):
    buf = yield from api.malloc(64, callsite="fs.c:3")
    def worker(api, addr):
        yield from api.loop(addr, 0, 1, read=True, write=True, work=2,
                            repeat=300)
    t1 = yield from api.spawn(worker, buf)
    t2 = yield from api.spawn(worker, buf + 4)
    yield from api.join(t1)
    yield from api.join(t2)


class TestPredator:
    def test_observes_every_access(self):
        result, predator, _ = run_with_predator(fs_program)
        assert predator.accesses_observed == result.total_accesses

    def test_invalidations_match_ground_truth_exactly(self):
        # Full instrumentation means no sampling loss: Predator's counts
        # equal the coherence directory's.
        result, predator, _ = run_with_predator(fs_program)
        line = next(iter(
            result.machine.directory.lines_with_invalidations(10)))
        assert (predator._ownership.invalidations(line)
                == result.machine.directory.invalidations_of(line))

    def test_finds_false_sharing_with_label(self):
        result, predator, engine = run_with_predator(fs_program)
        findings = predator.false_sharing_findings(engine.allocator,
                                                   engine.symbols)
        assert findings
        assert findings[0].label == "heap:fs.c:3"
        assert findings[0].is_false_sharing

    def test_true_sharing_classified(self):
        def ts_program(api):
            buf = yield from api.malloc(64, callsite="ts.c:3")
            def worker(api):
                yield from api.loop(buf, 0, 1, read=True, write=True,
                                    work=2, repeat=300)
            t1 = yield from api.spawn(worker)
            t2 = yield from api.spawn(worker)
            yield from api.join(t1)
            yield from api.join(t2)
        result, predator, engine = run_with_predator(ts_program)
        findings = predator.findings(engine.allocator, engine.symbols)
        assert findings and not findings[0].is_false_sharing

    def test_single_reduction_read_does_not_make_true_sharing(self):
        # Predator has no phase gating; a single post-join read per word
        # (the main thread's merge) must not flip FS to TS.
        def merge_program(api):
            buf = yield from api.malloc(64, callsite="merge.c:3")
            def worker(api, addr):
                yield from api.loop(addr, 0, 1, read=True, write=True,
                                    work=2, repeat=300)
            t1 = yield from api.spawn(worker, buf)
            t2 = yield from api.spawn(worker, buf + 4)
            yield from api.join(t1)
            yield from api.join(t2)
            yield from api.loop(buf, 4, 16, write=False)  # merge read
        result, predator, engine = run_with_predator(merge_program)
        findings = predator.false_sharing_findings(engine.allocator,
                                                   engine.symbols)
        assert findings and findings[0].label == "heap:merge.c:3"

    def test_overhead_charged(self):
        config = MachineConfig()
        plain = Engine(config=config,
                       machine=Machine(config, jitter_seed=3),
                       allocator=CheetahAllocator(line_size=64))
        baseline = plain.run(fs_program).runtime
        result, predator, _ = run_with_predator(fs_program)
        assert result.runtime > baseline

    def test_min_invalidations_threshold(self):
        result, predator, engine = run_with_predator(
            fs_program, min_invalidations=10**9)
        assert predator.findings(engine.allocator, engine.symbols) == []

    def test_predictive_line_size_analysis(self):
        # Two threads on words 4 bytes apart: false sharing exists at any
        # line size >= 8; the virtual-line regrouping must see it at 128B.
        result, predator, engine = run_with_predator(fs_program)
        findings = predator.findings_for_line_size(128, engine.allocator,
                                                   engine.symbols)
        assert findings
        assert findings[0].line_size == 128

    def test_predictive_smaller_line_separates_words(self):
        # At a 4-byte "line" the two words no longer share: no finding.
        def spaced(api):
            buf = yield from api.malloc(64, callsite="sp.c:1")
            def worker(api, addr):
                yield from api.loop(addr, 0, 1, read=True, write=True,
                                    repeat=300)
            t1 = yield from api.spawn(worker, buf)
            t2 = yield from api.spawn(worker, buf + 32)
            yield from api.join(t1)
            yield from api.join(t2)
        result, predator, engine = run_with_predator(spaced)
        at64 = predator.findings_for_line_size(64)
        at16 = predator.findings_for_line_size(16)
        assert at64  # they share a 64-byte line
        tids_per_line16 = [f for f in at16 if len(f.tids) > 1]
        assert not tids_per_line16  # separated at 16-byte granularity
