"""Tests for the top-level package facade (repro.profile / run_plain)."""

import pytest

import repro
from repro import (
    CheetahConfig, MachineConfig, PMUConfig, profile, run_plain,
)
from repro.workloads.micro import ArrayIncrement


def tiny_fs_program(api):
    buf = yield from api.malloc(64, callsite="facade.c:1")
    def worker(api, addr):
        yield from api.loop(addr, 0, 1, read=True, write=True, work=2,
                            repeat=400)
    t1 = yield from api.spawn(worker, buf)
    t2 = yield from api.spawn(worker, buf + 4)
    yield from api.join(t1)
    yield from api.join(t2)


class TestRunPlain:
    def test_accepts_bare_generator_function(self):
        result = run_plain(tiny_fs_program)
        assert result.runtime > 0

    def test_accepts_workload_object(self):
        result = run_plain(ArrayIncrement(num_threads=2, scale=0.1))
        assert result.runtime > 0

    def test_custom_machine_config(self):
        cfg = MachineConfig(cache_line_size=32)
        result = run_plain(tiny_fs_program, machine_config=cfg)
        assert result.machine.config.cache_line_size == 32

    def test_workload_globals_are_defined(self):
        from repro.workloads.phoenix import Histogram
        result = run_plain(Histogram(num_threads=4, scale=0.05))
        assert result.symbols.lookup("thread_stats") is not None


class TestProfileFacade:
    def test_returns_result_and_report(self):
        result, report = profile(tiny_fs_program,
                                 pmu_config=PMUConfig(period=16))
        assert result.runtime > 0
        assert report.significant

    def test_custom_cheetah_config_respected(self):
        cfg = CheetahConfig(min_improvement=1e9)
        result, report = profile(tiny_fs_program,
                                 pmu_config=PMUConfig(period=16),
                                 cheetah_config=cfg)
        assert report.significant == []

    def test_version_exposed(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestLineSizeThroughFacade:
    def test_32_byte_machine_separates_the_words(self):
        # On 32-byte lines, words at offsets 0 and 4 still share; but at
        # offset 32 they do not.
        def spaced(api):
            buf = yield from api.malloc(64, callsite="sp.c:1")
            def worker(api, addr):
                yield from api.loop(addr, 0, 1, read=True, write=True,
                                    work=2, repeat=300)
            t1 = yield from api.spawn(worker, buf)
            t2 = yield from api.spawn(worker, buf + 32)
            yield from api.join(t1)
            yield from api.join(t2)
        cfg64 = MachineConfig(cache_line_size=64)
        cfg32 = MachineConfig(cache_line_size=32)
        r64 = run_plain(spaced, machine_config=cfg64)
        r32 = run_plain(spaced, machine_config=cfg32)
        assert r64.machine.directory.total_invalidations() > 100
        assert r32.machine.directory.total_invalidations() == 0
        assert r32.runtime < r64.runtime
