"""The unified v2 RunRequest: validation, resolution, equivalence."""

import pytest

from repro.core.profiler import CheetahConfig
from repro.errors import ConfigError
from repro.pmu.sampler import PMUConfig
from repro.request import RunRequest
from repro.service.spec import RunSpec
from repro.sim.params import MachineConfig


class TestValidation:
    def test_workload_required(self):
        with pytest.raises(ConfigError, match="workload"):
            RunRequest(workload="")

    def test_bad_kernel(self):
        with pytest.raises(ConfigError, match="kernel"):
            RunRequest(workload="histogram", kernel="turbo")

    def test_bad_mode(self):
        with pytest.raises(ConfigError, match="mode"):
            RunRequest(workload="histogram", mode="guess")

    def test_bad_detector(self):
        with pytest.raises(ConfigError, match="detector"):
            RunRequest(workload="histogram", detector="psychic")

    def test_bad_threads(self):
        with pytest.raises(ConfigError, match="threads"):
            RunRequest(workload="histogram", threads=0)

    def test_bad_scale(self):
        with pytest.raises(ConfigError, match="scale"):
            RunRequest(workload="histogram", scale=-1.0)

    def test_bad_period(self):
        with pytest.raises(ConfigError, match="period"):
            RunRequest(workload="histogram", period=0)


class TestProfiledImplication:
    def test_plain_request_is_not_profiled(self):
        assert not RunRequest(workload="histogram").profiled

    def test_each_profiling_knob_implies_profiled(self):
        assert RunRequest(workload="histogram", profile=True).profiled
        assert RunRequest(workload="histogram", period=5000).profiled
        assert RunRequest(workload="histogram", adaptive=True).profiled
        assert RunRequest(workload="histogram",
                          detector="windowed").profiled
        assert RunRequest(workload="histogram", true_sharing=True).profiled
        assert RunRequest(workload="histogram", pmu=PMUConfig()).profiled
        assert RunRequest(workload="histogram",
                          cheetah=CheetahConfig()).profiled


class TestConfigResolution:
    def test_default_request_resolves_to_none_configs(self):
        request = RunRequest(workload="histogram")
        assert request.machine_config() is None
        assert request.pmu_config() is None
        assert request.cheetah_config() is None

    def test_scalar_knobs_override_base_configs(self):
        request = RunRequest(
            workload="histogram", kernel="vector", mode="sampled",
            line_size=32, cores=8, detector="windowed", period=2000,
            true_sharing=True)
        machine = request.machine_config()
        assert machine.kernel == "vector"
        assert machine.mode == "sampled"
        assert machine.cache_line_size == 32
        assert machine.num_cores == 8
        assert request.pmu_config().period == 2000
        cheetah = request.cheetah_config()
        assert cheetah.detector_mode == "windowed"
        assert cheetah.report_true_sharing

    def test_explicit_knob_wins_over_full_config(self):
        request = RunRequest(
            workload="histogram",
            machine=MachineConfig(kernel="fused"), kernel="vector")
        assert request.machine_config().kernel == "vector"

    def test_adaptive_uses_line_size(self):
        request = RunRequest(workload="histogram", adaptive=True,
                             line_size=32)
        adaptive = request.pmu_config().adaptive
        assert adaptive.enabled
        assert adaptive.line_size == 32


class TestSpecEquivalence:
    """request.to_spec() hashes identically to the hand-built spec."""

    def test_default_request_key_matches_hand_built_spec(self):
        request = RunRequest(workload="histogram", threads=4)
        spec = RunSpec(workload="histogram", threads=4)
        assert request.to_spec().key() == spec.key()

    def test_profiled_request_key_matches(self):
        request = RunRequest(workload="histogram", threads=4,
                             detector="windowed")
        spec = RunSpec(
            workload="histogram", threads=4, with_cheetah=True,
            cheetah=CheetahConfig(detector_mode="windowed"))
        assert request.to_spec().key() == spec.key()

    def test_session_equivalence(self):
        """Session.from_request == the hand-configured Session."""
        from repro.api import Session
        request = RunRequest(workload="histogram", threads=2, scale=0.2,
                             detector="windowed")
        via_request = Session.from_request(request).profile()
        direct = Session("histogram", threads=2, scale=0.2,
                         detector_mode="windowed").profile()
        assert via_request.to_dict() == direct.to_dict()

    def test_from_request_rejects_non_request(self):
        from repro.api import Session
        with pytest.raises(ConfigError, match="RunRequest"):
            Session.from_request({"workload": "histogram"})

    def test_run_request_through_service(self, tmp_path):
        from repro.service import RunService
        service = RunService(cache_dir=tmp_path)
        request = RunRequest(workload="histogram", threads=2, scale=0.2)
        first = service.run_request(request)
        second = service.run_request(request)
        assert second.from_cache
        assert first.to_dict() == second.to_dict()


class TestDictRoundTrip:
    def test_round_trip(self):
        request = RunRequest(
            workload="histogram", threads=4, scale=0.5, detector="windowed",
            kernel="vector", period=3000, machine=MachineConfig(num_cores=8))
        rebuilt = RunRequest.from_dict(request.to_dict())
        assert rebuilt == request

    def test_from_plain_json_mapping(self):
        rebuilt = RunRequest.from_dict({
            "workload": "histogram", "threads": 4,
            "machine": {"num_cores": 8}, "detector": "windowed"})
        assert rebuilt.machine == MachineConfig(num_cores=8)
        assert rebuilt.profiled

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown"):
            RunRequest.from_dict({"workload": "histogram", "speed": 11})

    def test_invalid_nested_config_rejected(self):
        with pytest.raises(ConfigError):
            RunRequest.from_dict({"workload": "histogram",
                                  "machine": {"num_cores": -1}})
