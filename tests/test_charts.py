"""Tests for the ASCII chart helpers."""

import pytest

from repro.experiments.charts import bar_chart, paired_bar_chart


class TestBarChart:
    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_bars_scale_to_max(self):
        text = bar_chart([("a", 1.0), ("b", 2.0)], width=10)
        lines = text.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_values_printed(self):
        text = bar_chart([("x", 1.234)], fmt="{:.2f}")
        assert "1.23" in text

    def test_labels_right_aligned(self):
        text = bar_chart([("long-name", 1), ("ab", 1)])
        lines = text.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_baseline_marker(self):
        text = bar_chart([("a", 0.5), ("b", 2.0)], width=20, baseline=1.0)
        assert "|" in text.splitlines()[0][text.index("|") + 1:]

    def test_zero_values_no_crash(self):
        assert bar_chart([("a", 0.0)])


class TestPairedBarChart:
    def test_empty(self):
        assert paired_bar_chart([], series=("a", "b")) == "(no data)"

    def test_legend_and_two_bars_per_row(self):
        text = paired_bar_chart([("8", 10, 20)],
                                series=("expectation", "reality"))
        assert "expectation" in text and "reality" in text
        lines = text.splitlines()
        assert len(lines) == 3  # legend + two bars
        assert "#" in lines[1] and "+" in lines[2]

    def test_scaling_shared_between_series(self):
        text = paired_bar_chart([("r", 10, 40)], series=("a", "b"),
                                width=40)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[2].count("+") == 40


class TestIntegrationWithRenders:
    def test_figure1_render_has_chart(self):
        from repro.experiments import figure1
        result = figure1.run(scale=0.05, seeds=(1,))
        text = result.render()
        assert "# = expectation" in text

    def test_figure4_render_has_chart(self):
        from repro.experiments import figure4
        result = figure4.run(scale=0.05, seeds=(1,), names=["swaptions"])
        assert "#" in result.render()
