"""Tests for the exception hierarchy."""

import pytest

from repro import errors


def test_all_errors_derive_from_repro_error():
    for name in ("SimulationError", "DeadlockError", "ThreadError",
                 "AllocationError", "OutOfMemoryError", "InvalidFreeError",
                 "ConfigError", "SymbolError", "ProfilerError"):
        cls = getattr(errors, name)
        assert issubclass(cls, errors.ReproError)


def test_deadlock_is_simulation_error():
    assert issubclass(errors.DeadlockError, errors.SimulationError)


def test_thread_error_is_simulation_error():
    assert issubclass(errors.ThreadError, errors.SimulationError)


def test_out_of_memory_is_allocation_error():
    assert issubclass(errors.OutOfMemoryError, errors.AllocationError)


def test_invalid_free_is_allocation_error():
    assert issubclass(errors.InvalidFreeError, errors.AllocationError)


def test_catching_base_class_catches_all():
    with pytest.raises(errors.ReproError):
        raise errors.DeadlockError("stuck")
