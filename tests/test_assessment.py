"""Tests for the performance-impact assessment — equations (1)-(4)."""

import pytest

from repro.core.assessment import (
    Assessment, AssessmentConfig, ThreadObservation, assess_object,
    serial_average,
)
from repro.core.detection import ObjectProfile
from repro.errors import ConfigError
from repro.runtime.phases import PhaseTracker


def profile(per_tid_cycles, per_tid_accesses):
    p = ObjectProfile(key=("heap", 1), kind="heap", start=0, end=64,
                      size=64, label="x.c:1")
    p.per_tid_cycles = dict(per_tid_cycles)
    p.per_tid_accesses = dict(per_tid_accesses)
    return p


def tracker_with_one_phase(spawn=100, join=1100, finish=1200,
                           tids=(1, 2)):
    t = PhaseTracker()
    for tid in tids:
        t.on_spawn(0, tid, now=spawn)
    for tid in tids:
        t.on_join(0, tid, now=join)
    t.finish(finish)
    return t


class TestConfig:
    def test_defaults(self):
        cfg = AssessmentConfig()
        assert cfg.serial_estimator == "median"

    def test_invalid_values(self):
        with pytest.raises(ConfigError):
            AssessmentConfig(default_nofs_cycles=0)
        with pytest.raises(ConfigError):
            AssessmentConfig(min_serial_samples=0)
        with pytest.raises(ConfigError):
            AssessmentConfig(serial_estimator="mode")


class TestSerialAverage:
    def test_default_when_too_few_samples(self):
        cfg = AssessmentConfig(min_serial_samples=8)
        assert serial_average([3] * 7, cfg) == cfg.default_nofs_cycles

    def test_median_robust_to_outliers(self):
        cfg = AssessmentConfig(serial_estimator="median")
        latencies = [3] * 99 + [500]
        assert serial_average(latencies, cfg) == 3.0

    def test_median_even_count(self):
        cfg = AssessmentConfig(serial_estimator="median",
                               min_serial_samples=2)
        assert serial_average([3, 5] * 5, cfg) == 4.0

    def test_mean_estimator(self):
        cfg = AssessmentConfig(serial_estimator="mean",
                               min_serial_samples=2)
        assert serial_average([2, 4, 6, 8], cfg) == 5.0

    def test_trimmed_estimator_drops_top_decile(self):
        cfg = AssessmentConfig(serial_estimator="trimmed",
                               min_serial_samples=2)
        latencies = [3] * 18 + [500, 500]
        assert serial_average(latencies, cfg) == 3.0


class TestEquations:
    def test_eq_1_2_3_single_thread(self):
        # Thread 1: RT=1000, sampled 100 accesses of 10 cycles on O, no
        # other accesses. With AverCycles_nofs=2:
        #   PredCycles_O = 2*100 = 200             (EQ 1)
        #   PredCycles_t = 1000 - 1000 + 200 = 200 (EQ 2)
        #   PredRT_t = 200/1000 * 1000 = 200       (EQ 3)
        p = profile({1: 1000}, {1: 100})
        threads = {1: ThreadObservation(tid=1, runtime=1000, accesses=100,
                                        cycles=1000)}
        t = tracker_with_one_phase(spawn=0, join=1000, finish=1000,
                                   tids=(1,))
        a = assess_object(p, threads, t, aver_nofs=2.0)
        assert a.pred_rt_per_thread[1] == pytest.approx(200.0)

    def test_unrelated_cycles_preserved(self):
        # Half the thread's sampled cycles are not on O: they remain.
        p = profile({1: 500}, {1: 50})
        threads = {1: ThreadObservation(tid=1, runtime=2000, accesses=100,
                                        cycles=1000)}
        t = tracker_with_one_phase(spawn=0, join=2000, finish=2000,
                                   tids=(1,))
        a = assess_object(p, threads, t, aver_nofs=2.0)
        # PredCycles_t = 1000 - 500 + 100 = 600 -> PredRT = 0.6 * 2000.
        assert a.pred_rt_per_thread[1] == pytest.approx(1200.0)

    def test_thread_without_object_accesses_unchanged(self):
        p = profile({1: 500}, {1: 50})
        threads = {
            1: ThreadObservation(tid=1, runtime=1000, accesses=60,
                                 cycles=600),
            2: ThreadObservation(tid=2, runtime=900, accesses=50,
                                 cycles=200),
        }
        t = tracker_with_one_phase(spawn=0, join=1000, finish=1000)
        a = assess_object(p, threads, t, aver_nofs=2.0)
        assert a.pred_rt_per_thread[2] == 900.0

    def test_thread_with_zero_sampled_cycles_unchanged(self):
        p = profile({}, {})
        threads = {1: ThreadObservation(tid=1, runtime=700, accesses=0,
                                        cycles=0)}
        t = tracker_with_one_phase(spawn=0, join=700, finish=700, tids=(1,))
        a = assess_object(p, threads, t, aver_nofs=2.0)
        assert a.pred_rt_per_thread[1] == 700.0

    def test_prediction_floored_at_one_cycle(self):
        # aver smaller than observed with all cycles on O cannot go <= 0.
        p = profile({1: 1000}, {1: 1})
        threads = {1: ThreadObservation(tid=1, runtime=1000, accesses=1,
                                        cycles=1000)}
        t = tracker_with_one_phase(spawn=0, join=1000, finish=1000,
                                   tids=(1,))
        a = assess_object(p, threads, t, aver_nofs=0.001)
        assert a.pred_rt_per_thread[1] > 0


class TestApplicationLevel:
    def test_eq4_phase_recomputation(self):
        # Serial 100 + parallel (slowest thread) + trailing serial 100.
        p = profile({1: 900, 2: 90}, {1: 100, 2: 10})
        threads = {
            1: ThreadObservation(tid=1, runtime=1000, accesses=100,
                                 cycles=1000),  # hot: mostly O
            2: ThreadObservation(tid=2, runtime=400, accesses=100,
                                 cycles=400),
        }
        t = PhaseTracker()
        t.on_spawn(0, 1, now=100)
        t.on_spawn(0, 2, now=100)
        t.on_join(0, 1, now=1100)
        t.on_join(0, 2, now=1100)
        t.finish(1200)
        a = assess_object(p, threads, t, aver_nofs=1.0)
        # Real: 100 + max(1000, 400) + 100 = 1200.
        assert a.real_runtime == 1200
        # Pred thread 1: (1000-900+100)/1000*1000 = 200;
        # pred thread 2: (400-90+10)/400*400 = 320 -> phase = 320.
        assert a.predicted_runtime == pytest.approx(100 + 320 + 100)
        assert a.improvement == pytest.approx(1200 / 520)

    def test_improvement_rate_percent(self):
        a = Assessment(improvement=5.76, real_runtime=100,
                       predicted_runtime=17.4, aver_nofs_cycles=3.0)
        assert a.improvement_rate_percent == pytest.approx(576.0)

    def test_fork_join_flag_propagates(self):
        p = profile({1: 10}, {1: 1})
        threads = {1: ThreadObservation(tid=1, runtime=10, accesses=1,
                                        cycles=10)}
        t = PhaseTracker()
        t.on_spawn(0, 1, now=0)
        t.on_spawn(1, 2, now=1)  # nested
        t.on_join(0, 1, now=10)
        t.finish(10)
        a = assess_object(p, threads, t, aver_nofs=1.0)
        assert not a.fork_join_ok

    def test_empty_phases_improvement_is_one(self):
        p = profile({}, {})
        t = PhaseTracker()
        t.finish(0)
        a = assess_object(p, {}, t, aver_nofs=1.0)
        assert a.improvement == 1.0

    def test_phase_without_observed_threads_uses_measured_length(self):
        p = profile({}, {})
        t = PhaseTracker()
        t.on_spawn(0, 9, now=10)
        t.on_join(0, 9, now=110)
        t.finish(120)
        a = assess_object(p, {}, t, aver_nofs=1.0)
        assert a.real_runtime == 120
        assert a.predicted_runtime == 120
