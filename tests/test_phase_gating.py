"""The parallel-phase gating claim of Section 2.4, demonstrated by
ablation through trace replay.

"It is very common that the main thread may allocate and initialize
objects before they are accessed by multiple child threads. Prior work,
including Predator, may wrongly report them as true sharing instances.
Cheetah avoids this problem by only recording detailed accesses inside
parallel phases."
"""

import pytest

from repro.core.detection import DetectorConfig, FalseSharingDetector, SharingKind
from repro.run import run_workload
from repro.trace import TraceRecorder, replay_into_detector
from repro.workloads.base import Workload


class InitThenShare(Workload):
    """Main initialises every word of the object, then each child
    hammers its own word — the classic init-then-parallel pattern."""

    name = ""  # not registered: test-local workload
    suite = "test"
    default_threads = 4

    def main(self, api):
        obj = yield from api.malloc(64, callsite="init.c:9")
        # Main-thread initialisation touches every word.
        yield from api.loop(obj, 4, 16, read=False, write=True, work=1,
                            repeat=3)
        args = [(obj + i * 4,) for i in range(self.num_threads)]
        yield from self.fork_join(api, self._worker, args)

    def _worker(self, api, mine):
        yield from api.loop(mine, 0, 1, read=True, write=True, work=2,
                            repeat=300)


def record():
    recorder = TraceRecorder()
    outcome = run_workload(InitThenShare(), jitter_seed=3,
                           observer=recorder)
    return outcome, recorder


def classify(outcome, recorder, gated):
    detector = FalseSharingDetector(DetectorConfig(min_invalidations=4))
    replay_into_detector(recorder, detector,
                         serial_tids={0} if gated else None)
    profiles = detector.build_objects(outcome.result.allocator,
                                      outcome.result.symbols)
    target = [p for p in profiles if p.label == "init.c:9"]
    return target[0] if target else None


class TestParallelPhaseGating:
    @pytest.fixture(scope="class")
    def traced(self):
        return record()

    def test_with_gating_classified_false_sharing(self, traced):
        outcome, recorder = traced
        profile = classify(outcome, recorder, gated=True)
        assert profile is not None
        assert profile.classify(0.5) is SharingKind.FALSE_SHARING
        # Main's init writes are absent from the word map.
        assert 0 not in profile.tids

    def test_without_gating_misclassified(self, traced):
        # The ablation: counting the main thread's init accesses makes
        # every word look multi-thread — the Predator mistake.
        outcome, recorder = traced
        profile = classify(outcome, recorder, gated=False)
        assert profile is not None
        assert 0 in profile.tids
        shared_fraction = profile.shared_word_accesses / profile.accesses
        gated_profile = classify(outcome, recorder, gated=True)
        gated_fraction = (gated_profile.shared_word_accesses
                          / gated_profile.accesses)
        # Gating strictly reduces apparent word sharing.
        assert gated_fraction < shared_fraction

    def test_online_profiler_gates_automatically(self):
        from repro import profile as cheetah_profile
        from repro.pmu.sampler import PMUConfig
        result, report = cheetah_profile(InitThenShare(),
                                         pmu_config=PMUConfig(period=8))
        assert report.significant
        best = report.best()
        assert best.kind is SharingKind.FALSE_SHARING
        assert 0 not in best.profile.tids
