"""Unit tests for the reference MESI oracle (repro.sim.check.oracle).

Every transition case (W1-W4, R1-R3) is exercised directly, plus the
ground-truth invalidation accounting and the always-on invariant checks.
"""

import pytest

from repro.errors import ValidationError
from repro.sim import coherence
from repro.sim.check.oracle import MODIFIED, SHARED, ReferenceMESI

LINE = 0x40


class TestWriteTransitions:
    def test_w3_first_write_is_cold(self):
        oracle = ReferenceMESI()
        assert oracle.access(0, LINE, True) == coherence.COLD
        assert oracle.dirty_owner(LINE) == 0
        assert oracle.holders(LINE) == {0}

    def test_w1_rewrite_by_owner_hits(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, True)
        assert oracle.access(0, LINE, True) == coherence.HIT
        assert oracle.invalidations_of(LINE) == 0

    def test_w2_sole_clean_holder_upgrades_silently(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, False)  # S by core 0, sole holder
        assert oracle.access(0, LINE, True) == coherence.HIT
        assert oracle.dirty_owner(LINE) == 0
        # A silent upgrade invalidates nothing: no other copies existed.
        assert oracle.invalidations_of(LINE) == 0

    def test_w3_refetch_after_invalidation_is_shared_clean(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, True)          # COLD, M by 0
        oracle.access(1, LINE, True)          # invalidates 0
        oracle.access(1, LINE, False)         # still held by 1
        # Core 1 drops implicitly only via invalidation; write from a
        # fresh line state needs both cores gone:
        oracle2 = ReferenceMESI()
        oracle2.access(0, LINE, True)
        oracle2.access(1, LINE, True)         # 0 invalidated
        # Now 0 writes again: others hold -> COHERENCE_WRITE, not COLD.
        assert oracle2.access(0, LINE, True) == coherence.COHERENCE_WRITE

    def test_w4_write_over_foreign_dirty_copy(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, True)
        assert oracle.access(1, LINE, True) == coherence.COHERENCE_WRITE
        assert oracle.holders(LINE) == {1}
        assert oracle.dirty_owner(LINE) == 1
        assert oracle.invalidations_of(LINE) == 1

    def test_w4_upgrade_from_shared_copy(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, False)
        oracle.access(1, LINE, False)
        # Core 1 holds a shared copy and writes: UPGRADE, core 0 dies.
        assert oracle.access(1, LINE, True) == coherence.UPGRADE
        assert oracle.holders(LINE) == {1}
        assert oracle.invalidations_of(LINE) == 1

    def test_w4_one_event_per_write_not_per_copy(self):
        oracle = ReferenceMESI()
        for core in range(4):
            oracle.access(core, LINE, False)
        oracle.access(5, LINE, True)  # kills four copies at once
        assert oracle.invalidations_of(LINE) == 1


class TestReadTransitions:
    def test_r3_first_read_is_cold(self):
        oracle = ReferenceMESI()
        assert oracle.access(0, LINE, False) == coherence.COLD
        assert oracle.dirty_owner(LINE) is None

    def test_r1_reread_hits(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, False)
        assert oracle.access(0, LINE, False) == coherence.HIT

    def test_r1_owner_read_of_own_dirty_line_hits(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, True)
        assert oracle.access(0, LINE, False) == coherence.HIT
        assert oracle.dirty_owner(LINE) == 0  # still Modified

    def test_r2_read_of_foreign_dirty_copy_downgrades(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, True)
        assert oracle.access(1, LINE, False) == coherence.COHERENCE_READ
        assert oracle.dirty_owner(LINE) is None
        assert oracle.holders(LINE) == {0, 1}

    def test_r3_second_core_clean_fetch_is_shared(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, False)
        assert oracle.access(1, LINE, False) == coherence.SHARED_CLEAN
        assert oracle.holders(LINE) == {0, 1}

    def test_reads_never_invalidate(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, True)
        for core in range(1, 8):
            oracle.access(core, LINE, False)
        assert oracle.invalidations_of(LINE) == 0


class TestBookkeeping:
    def test_ever_fetched(self):
        oracle = ReferenceMESI()
        assert not oracle.ever_fetched(LINE)
        oracle.access(0, LINE, False)
        assert oracle.ever_fetched(LINE)
        assert not oracle.ever_fetched(LINE + 1)

    def test_lines_are_independent(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, True)
        assert oracle.access(1, LINE + 1, True) == coherence.COLD
        assert oracle.invalidations_of(LINE) == 0
        assert oracle.invalidations_of(LINE + 1) == 0

    def test_invariants_catch_corrupt_state(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, True)
        oracle._states[LINE][1] = MODIFIED  # two writers
        with pytest.raises(ValidationError) as exc:
            oracle.check_invariants(LINE)
        assert exc.value.invariant == "single-writer"

    def test_invariants_catch_writer_with_readers(self):
        oracle = ReferenceMESI()
        oracle.access(0, LINE, True)
        oracle._states[LINE][1] = SHARED
        with pytest.raises(ValidationError) as exc:
            oracle.check_invariants(LINE)
        assert exc.value.invariant == "writer-excludes-readers"


class TestAgainstProductionDirectory:
    def test_random_trace_matches_directory(self):
        # The oracle and the production directory must produce identical
        # outcome tags, holder sets, dirty owners and invalidation counts
        # over a random (seeded) trace of contended accesses.
        import random
        rng = random.Random(1234)
        # line_shift=0 makes addr == line, so the trace drives the
        # directory and the oracle with identical line numbers.
        directory = coherence.CoherenceDirectory(line_shift=0)
        oracle = ReferenceMESI()
        for _ in range(2000):
            core = rng.randrange(4)
            line = rng.randrange(3)
            is_write = rng.random() < 0.5
            expected = oracle.access(core, line, is_write)
            got = directory.access(core, line, is_write)
            assert got == expected
            state = directory.state_of(line)
            assert state.holders == oracle.holders(line)
            assert state.dirty_owner == oracle.dirty_owner(line)
            assert state.invalidations == oracle.invalidations_of(line)
