"""Tests for the Section 2 assumption studies and mid-run reporting."""

import pytest

from repro import CheetahProfiler, Engine, MachineConfig, PMU, PMUConfig
from repro.errors import SimulationError
from repro.experiments import assumptions
from repro.heap.allocator import CheetahAllocator
from repro.symbols.table import SymbolTable
from repro.workloads.phoenix import LinearRegression


class TestOversubscription:
    @pytest.fixture(scope="class")
    def result(self):
        return assumptions.run_oversubscription(num_threads=4,
                                                core_counts=(4, 2, 1))

    def test_ground_truth_drops_with_core_sharing(self, result):
        truths = [r.ground_truth_invalidations for r in result.rows]
        assert truths[0] > truths[-1]
        # All threads on one core: no cross-core invalidations exist.
        assert truths[-1] == 0

    def test_cheetah_count_insensitive_to_core_mapping(self, result):
        # Assumption 1 means Cheetah never looks at cores: its sampled
        # count stays roughly constant -> over-reporting under sharing.
        counts = [r.cheetah_sampled_invalidations for r in result.rows]
        assert max(counts) > 0
        assert min(counts) > 0.7 * max(counts)

    def test_render(self, result):
        text = result.render()
        assert "Assumption 1" in text
        assert "no real invalidations remain" in text


class TestFiniteCache:
    @pytest.fixture(scope="class")
    def result(self):
        return assumptions.run_finite_cache()

    def test_eviction_reduces_ground_truth(self, result):
        truths = [r.ground_truth_invalidations for r in result.rows]
        assert truths[0] > 2 * truths[-1]

    def test_cheetah_overreports_under_tiny_caches(self, result):
        baseline = result.rows[0]
        worst = result.rows[-1]
        assert worst.overreport_ratio(baseline) > 1.5

    def test_infinite_and_huge_cache_agree(self, result):
        assert (result.rows[0].ground_truth_invalidations
                == result.rows[1].ground_truth_invalidations)


class TestMidRunReporting:
    def _build(self):
        wl = LinearRegression(num_threads=8)
        symbols = SymbolTable()
        wl.setup(symbols)
        config = MachineConfig()
        pmu = PMU(PMUConfig(period=64))
        engine = Engine(config=config, symbols=symbols, pmu=pmu,
                        allocator=CheetahAllocator(line_size=64))
        profiler = CheetahProfiler()
        profiler.attach(engine)
        return wl, engine, profiler

    def test_checkpoint_fires_once_at_time(self):
        wl, engine, profiler = self._build()
        fired = []
        engine.add_checkpoint(200_000, lambda e, t: fired.append(t))
        engine.run(wl.main)
        assert len(fired) == 1
        assert fired[0] >= 200_000

    def test_checkpoints_fire_in_order(self):
        wl, engine, profiler = self._build()
        fired = []
        engine.add_checkpoint(300_000, lambda e, t: fired.append("late"))
        engine.add_checkpoint(100_000, lambda e, t: fired.append("early"))
        engine.run(wl.main)
        assert fired == ["early", "late"]

    def test_checkpoint_after_run_rejected(self):
        wl, engine, profiler = self._build()
        engine.run(wl.main)
        with pytest.raises(SimulationError):
            engine.add_checkpoint(1, lambda e, t: None)

    def test_mid_run_report_detects_instance(self):
        # The paper: Cheetah reports "either at the end of an execution,
        # or when interrupted by the user".
        wl, engine, profiler = self._build()
        captured = {}
        engine.add_checkpoint(
            400_000, lambda e, t: captured.setdefault(
                "report", profiler.report_now(t)))
        result = engine.run(wl.main)
        report = captured["report"]
        assert report.significant
        assert (report.best().profile.label
                == "linear_regression-pthread.c:139")
        assert report.runtime >= 400_000
        # Final report still works after the snapshot.
        final = profiler.finalize(result)
        assert final.significant

    def test_report_now_without_attach_rejected(self):
        from repro.errors import ProfilerError
        with pytest.raises(ProfilerError):
            CheetahProfiler().report_now()

    def test_snapshot_does_not_mutate_tracker(self):
        wl, engine, profiler = self._build()
        engine.add_checkpoint(200_000,
                              lambda e, t: profiler.report_now(t))
        result = engine.run(wl.main)
        # The real tracker closed at program end, not at the checkpoint.
        assert result.phases.phases[-1].end == result.runtime
