"""Vectorized burst kernel (`repro.sim.kernel` + engine wiring).

Covers the jitter stream's exact reproduction of the machine's xorshift
sequence, the GF(2) jump tables, the batch planner, kernel selection,
fused-vs-vector bit-identity, the checked variant, the vector mutation
self-test, and the `_BurstState` positivity invariant.
"""

import pytest

from repro.errors import SimulationError, ValidationError
from repro.pmu.sampler import PMU, PMUConfig
from repro.runtime.thread import _BurstState
from repro.sim import kernel
from repro.sim.engine import Engine, Observer
from repro.sim.machine import Machine
from repro.sim.ops import LoopAccess
from repro.sim.params import MachineConfig


def scalar_draws(state, n, mod):
    """Reference: n draws exactly as Machine.access_tuple produces them."""
    out = []
    for _ in range(n):
        state = kernel.xorshift_step(state)
        out.append(state % mod)
    return out, state


class TestJump:
    def test_jump_matches_iteration(self):
        state = 0xC0FFEE
        walked = state
        for n in range(0, 70):
            assert kernel.jump(state, n) == walked
            walked = kernel.xorshift_step(walked)

    def test_jump_large(self):
        state = 12345
        walked = state
        for _ in range(1000):
            walked = kernel.xorshift_step(walked)
        assert kernel.jump(state, 1000) == walked

    def test_jump_zero_is_identity(self):
        assert kernel.jump(0xDEAD, 0) == 0xDEAD


class TestJitterStream:
    MOD = 3  # timing_jitter=2

    def test_take_span_matches_scalar(self):
        anchor = 0xC0FFEE
        stream = kernel.JitterStream(self.MOD - 1, anchor)
        draws, end = scalar_draws(anchor, 500, self.MOD)
        assert stream.take_span(500) == sum(draws)
        assert stream.state_at() == end

    def test_interleaved_spans_and_scalar_escapes(self):
        # Span, then a few draws consumed scalar-side (sync must catch
        # up inside the buffer), then another span — positions must
        # track the single global sequence exactly.
        anchor = 999
        stream = kernel.JitterStream(self.MOD - 1, anchor)
        draws, _ = scalar_draws(anchor, 2000, self.MOD)
        consumed = 0
        machine_state = anchor
        for span, escape in ((100, 3), (7, 1), (650, 16), (900, 0)):
            stream.sync(machine_state)
            assert stream.take_span(span) == sum(
                draws[consumed:consumed + span])
            consumed += span
            machine_state = stream.state_at()
            for _ in range(escape):
                machine_state = kernel.xorshift_step(machine_state)
            consumed += escape

    def test_sync_past_buffer_rebases(self):
        anchor = 42
        stream = kernel.JitterStream(self.MOD - 1, anchor)
        stream.take_span(10)
        # Jump the "machine" far past anything buffered.
        far = kernel.jump(anchor, 10 + kernel._CHUNK * 4)
        stream.sync(far)
        assert stream.state_at() == far
        draws, end = scalar_draws(far, 64, self.MOD)
        assert stream.take_span(64) == sum(draws)
        assert stream.state_at() == end

    def test_compaction_keeps_sequence(self):
        anchor = 7
        stream = kernel.JitterStream(self.MOD - 1, anchor)
        total = 0
        n = kernel._COMPACT_AT * 2 + 12345
        step = 4099
        taken = 0
        while taken < n:
            k = min(step, n - taken)
            total += stream.take_span(k)
            taken += k
        draws, end = scalar_draws(anchor, n, self.MOD)
        assert total == sum(draws)
        assert stream.state_at() == end

    def test_mod_one_spans_are_zero(self):
        # timing_jitter=0 -> every draw is state % 1 == 0.
        stream = kernel.JitterStream(0, 0xBEEF)
        assert stream.take_span(300) == 0
        _, end = scalar_draws(0xBEEF, 300, 1)
        assert stream.state_at() == end


class TestPlanSpan:
    def make_machine(self):
        return Machine(MachineConfig(num_cores=4), timing_jitter=0)

    def test_untouched_lines_plan_zero(self):
        m = self.make_machine()
        assert kernel.plan_span(m, 0, 0x1000, 8, 16, 0, 160, False) == 0

    def test_private_sweep_covers_all_repeats(self):
        m = self.make_machine()
        for i in range(16):
            m.access(0, 0x1000 + i * 8, True)
        # 16 iterations * 8B stride = 2 lines, both dirty-owned by core 0.
        assert kernel.plan_span(m, 0, 0x1000, 8, 16, 0, 160, True) == 160

    def test_write_plan_stops_at_shared_line(self):
        m = self.make_machine()
        for i in range(16):
            m.access(0, 0x1000 + i * 8, True)
        m.access(1, 0x1040, False)  # second line now shared with core 1
        covered = kernel.plan_span(m, 0, 0x1000, 8, 16, 0, 160, True)
        assert covered == 8  # first line's 8 iterations only

    def test_read_plan_allows_shared_holder(self):
        m = self.make_machine()
        m.access(0, 0x1000, False)
        m.access(1, 0x1000, False)  # shared, both hold it
        assert kernel.plan_span(m, 0, 0x1000, 0, 1, 0, 50, False) == 50
        assert kernel.plan_span(m, 0, 0x1000, 0, 1, 0, 50, True) == 0

    def test_left_total_cap_is_respected(self):
        m = self.make_machine()
        for i in range(16):
            m.access(0, 0x1000 + i * 8, True)
        assert kernel.plan_span(m, 0, 0x1000, 8, 16, 0, 5, True) == 5

    def test_mid_sweep_index(self):
        m = self.make_machine()
        for i in range(16):
            m.access(0, 0x1000 + i * 8, True)
        m.access(1, 0x1000, False)  # first line shared -> stops the wrap
        covered = kernel.plan_span(m, 0, 0x1000, 8, 16, 12, 100, True)
        assert covered == 4  # iterations 12..15 on the still-private line


def fingerprint(result):
    machine = result.machine
    return (result.runtime, result.steps, result.total_accesses,
            result.total_instructions, machine.total_cycles,
            machine._jitter_state,
            {tid: (t.clock, t.instructions, t.mem_accesses, t.mem_cycles)
             for tid, t in result.threads.items()})


def run_kernel(program, kernel_choice, *, check=False, observer=None,
               pmu_period=None):
    config = MachineConfig(num_cores=4, kernel=kernel_choice)
    machine = Machine(config, check=check)
    pmu = None
    if pmu_period:
        pmu = PMU(PMUConfig(period=pmu_period))
    engine = Engine(machine=machine, observer=observer, pmu=pmu)
    result = engine.run(program)
    return result


def mixed_program(api):
    buf = yield from api.malloc(4096)

    def worker(api, base):
        # Long private read+write burst, then a short shared phase.
        yield from api.loop(base, 8, 32, read=True, write=True,
                            work=1, repeat=40)
        yield from api.loop(buf, 0, 1, read=True, write=False, repeat=9)
        yield from api.loop(base, 8, 3, read=True, write=True, repeat=2)

    tids = []
    for i in range(4):
        tid = yield from api.spawn(worker, buf + 512 + i * 640)
        tids.append(tid)
    yield from api.join_all(tids)


def serial_program(api):
    buf = yield from api.malloc(4096)
    yield from api.loop(buf, 8, 64, read=True, write=True, work=2,
                        repeat=100)
    yield from api.loop(buf, 8, 1, read=True, write=False, repeat=1)


class TestKernelSelection:
    def test_auto_picks_vector_when_clean(self):
        result = run_kernel(serial_program, "auto")
        assert result.metadata["kernel"] == "vector"
        assert result.metadata["kernel_numpy"] == kernel.HAVE_NUMPY

    def test_fused_choice_is_respected(self):
        result = run_kernel(serial_program, "fused")
        assert result.metadata["kernel"] == "fused"

    def test_auto_falls_back_under_observer(self):
        class Counter(Observer):
            seen = 0

            def on_access(self, tid, core, addr, is_write, latency, size,
                          line):
                Counter.seen += 1
                return None

        result = run_kernel(serial_program, "auto", observer=Counter())
        assert result.metadata["kernel"] == "fused"
        assert Counter.seen == result.total_accesses

    def test_auto_falls_back_under_sanitizer(self):
        result = run_kernel(serial_program, "auto", check=True)
        assert result.metadata["kernel"] == "fused"

    def test_explicit_vector_under_sanitizer_runs_checked(self):
        result = run_kernel(serial_program, "vector", check=True)
        assert result.metadata["kernel"] == "vector-checked"


class TestBitIdentity:
    @pytest.mark.parametrize("program", [serial_program, mixed_program])
    def test_vector_matches_fused(self, program):
        assert fingerprint(run_kernel(program, "vector")) == \
            fingerprint(run_kernel(program, "fused"))

    @pytest.mark.parametrize("program", [serial_program, mixed_program])
    def test_checked_vector_matches_fused(self, program):
        checked = run_kernel(program, "vector", check=True)
        assert checked.metadata["kernel"] == "vector-checked"
        assert fingerprint(checked) == fingerprint(
            run_kernel(program, "fused"))

    def test_vector_matches_fused_with_pmu(self):
        vec = run_kernel(mixed_program, "vector", pmu_period=1000)
        fused = run_kernel(mixed_program, "fused", pmu_period=1000)
        assert fingerprint(vec) == fingerprint(fused)

    def test_single_iteration_bursts(self):
        def program(api):
            buf = yield from api.malloc(256)
            for _ in range(5):
                yield from api.loop(buf, 0, 1, read=True, write=True,
                                    repeat=1)
        assert fingerprint(run_kernel(program, "vector")) == \
            fingerprint(run_kernel(program, "fused"))

    def test_adaptive_optout_does_not_change_outputs(self):
        # Far more consecutive sub-MIN_SPAN bursts than _VECTOR_ADAPT:
        # the kernel flips the thread back to fused mid-run; outputs
        # must not move.
        def program(api):
            buf = yield from api.malloc(256)
            for _ in range(200):
                yield from api.loop(buf, 8, 2, read=True, write=True,
                                    repeat=1)
        assert fingerprint(run_kernel(program, "vector")) == \
            fingerprint(run_kernel(program, "fused"))


class TestVectorMutationSelftest:
    def test_broken_planner_is_caught(self):
        from repro.sim.check.mutation import run_vector_mutation_selftest
        caught = run_vector_mutation_selftest()
        assert isinstance(caught, ValidationError)
        assert caught.invariant == "vector-plan-mismatch"


class TestBurstStateInvariants:
    def test_positive_extents_accepted(self):
        state = _BurstState(LoopAccess(0x100, 8, 4, repeat=2))
        assert state.count == 4 and state.repeat_total == 2

    @pytest.mark.parametrize("count,repeat", [(0, 5), (5, 0), (0, 0)])
    def test_zero_extents_rejected(self, count, repeat):
        op = LoopAccess(0x100, 8, 1, repeat=1)
        op.count = count
        op.repeat = repeat
        with pytest.raises(SimulationError, match="positive extents"):
            _BurstState(op)

    def test_negative_extents_rejected(self):
        op = LoopAccess(0x100, 8, 1, repeat=1)
        op.count = -3
        with pytest.raises(SimulationError, match="positive extents"):
            _BurstState(op)

    def test_zero_trip_loops_stay_noops(self):
        # The engine filters zero-trip loops before building burst
        # state, so programs using them still run (and do nothing).
        def program(api):
            buf = yield from api.malloc(64)
            yield from api.loop(buf, 8, 0, repeat=5)
            yield from api.loop(buf, 8, 5, repeat=0)
        result = run_kernel(program, "vector")
        assert result.total_accesses == 0


class TestPlanCache:
    def _key(self, n):
        return (0, 0x1000 + 64 * n, 8, 16, True)

    def test_hit_and_miss(self):
        cache = kernel.PlanCache(cap=4)
        assert cache.get(self._key(0)) is None
        cache.put(self._key(0), 7)
        assert cache.get(self._key(0)) == 7
        assert self._key(0) in cache
        assert len(cache) == 1

    def test_eviction_is_lru_not_fifo(self):
        cache = kernel.PlanCache(cap=2)
        cache.put(self._key(0), 1)
        cache.put(self._key(1), 1)
        # Touch key 0 so key 1 becomes the least recently used.
        assert cache.get(self._key(0)) == 1
        cache.put(self._key(2), 1)
        assert self._key(0) in cache
        assert self._key(1) not in cache
        assert self._key(2) in cache

    def test_put_refreshes_recency_and_updates_version(self):
        cache = kernel.PlanCache(cap=2)
        cache.put(self._key(0), 1)
        cache.put(self._key(1), 1)
        cache.put(self._key(0), 9)  # re-put: newer version, fresh recency
        cache.put(self._key(2), 1)
        assert cache.get(self._key(0)) == 9
        assert self._key(1) not in cache
        assert len(cache) == 2

    def test_size_stays_bounded_under_churn(self):
        cache = kernel.PlanCache(cap=8)
        for n in range(1000):
            cache.put(self._key(n), n)
        assert len(cache) == 8
        assert cache.keys() == [self._key(n) for n in range(992, 1000)]

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError, match="cap"):
            kernel.PlanCache(cap=0)

    def test_engine_plan_cache_bounded_across_run(self):
        # Regression: the engine's burst-plan memo must not grow without
        # bound over a run with many distinct burst shapes.
        def program(api):
            bufs = []
            for _ in range(8):
                buf = yield from api.malloc(512)
                bufs.append(buf)
            for rep in range(1, 5):
                for buf in bufs:
                    yield from api.loop(buf, 8, 16, repeat=rep)
        result = run_kernel(program, "vector")
        assert result.total_accesses > 0
        # Shapes used: 8 buffers x 4 repeats, well under the cap.
        # Force a tiny cap and re-run to prove eviction keeps it bounded.
        import repro.sim.engine as engine_mod
        original = engine_mod._PLAN_CACHE_MAX
        engine_mod._PLAN_CACHE_MAX = 4
        try:
            bounded = run_kernel(program, "vector")
        finally:
            engine_mod._PLAN_CACHE_MAX = original
        assert bounded.total_accesses == result.total_accesses
        assert bounded.runtime == result.runtime
