"""Cross-module integration tests: the paper's end-to-end claims at
reduced scale."""

import pytest

from repro import CheetahConfig, profile, run_plain
from repro.baselines.predator import PredatorDetector
from repro.core.detection import SharingKind
from repro.run import run_workload
from repro.heap.bump import BumpAllocator
from repro.pmu.sampler import PMU, PMUConfig
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable
from repro.workloads import get_workload
from repro.workloads.phoenix import (
    LINEAR_REGRESSION_CALLSITE, LinearRegression,
)

FAST_PMU = PMUConfig(period=64)


class TestLinearRegressionCaseStudy:
    """Section 4.2.1: the flagship detection + assessment story."""

    def test_detected_with_exact_callsite(self):
        result, report = profile(LinearRegression(num_threads=8, scale=0.5),
                                 pmu_config=FAST_PMU)
        assert report.significant
        best = report.best()
        assert best.profile.label == LINEAR_REGRESSION_CALLSITE
        assert best.kind is SharingKind.FALSE_SHARING

    def test_word_level_breakdown_shows_disjoint_threads(self):
        result, report = profile(LinearRegression(num_threads=8, scale=0.5),
                                 pmu_config=FAST_PMU)
        words = report.best().profile.word_summary
        assert len(words) >= 10  # several struct fields observed
        multi_tid_words = [w for w in words.values() if len(w["tids"]) > 1]
        # False sharing: the overwhelming majority of words are
        # single-thread.
        assert len(multi_tid_words) <= len(words) * 0.3

    def test_prediction_within_tolerance_of_real_fix(self):
        # Table 1's property at test scale: the per-run prediction lands
        # near the measured improvement of actually applying the fix.
        orig = run_plain(LinearRegression(num_threads=8, scale=0.5))
        fixed = run_plain(
            LinearRegression(num_threads=8, scale=0.5, fixed=True))
        real = orig.runtime / fixed.runtime
        result, report = profile(LinearRegression(num_threads=8, scale=0.5),
                                 pmu_config=FAST_PMU)
        predicted = report.best().improvement
        assert predicted == pytest.approx(real, rel=0.35)
        assert predicted > 2.0

    def test_points_object_not_reported(self):
        # The read-only points buffer shares lines across nothing: only
        # tid_args may be reported.
        result, report = profile(LinearRegression(num_threads=8, scale=0.5),
                                 pmu_config=FAST_PMU)
        labels = {r.profile.label for r in report.significant}
        assert labels == {LINEAR_REGRESSION_CALLSITE}


class TestFigure7Story:
    """Cheetah misses negligible instances; Predator finds them."""

    @pytest.mark.parametrize("name", ["histogram", "reverse_index",
                                      "word_count"])
    def test_cheetah_misses_negligible_fs(self, name):
        cls = get_workload(name)
        result, report = profile(cls(num_threads=16, scale=0.5))
        assert report.significant == []

    @pytest.mark.parametrize("name", ["histogram", "reverse_index",
                                      "word_count"])
    def test_predator_finds_what_cheetah_missed(self, name):
        cls = get_workload(name)
        wl = cls(num_threads=16, scale=0.5)
        symbols = SymbolTable()
        wl.setup(symbols)
        config = MachineConfig()
        predator = PredatorDetector(min_invalidations=20)
        engine = Engine(config=config, machine=Machine(config),
                        symbols=symbols, observer=predator)
        engine.run(wl.main)
        findings = predator.false_sharing_findings(engine.allocator,
                                                   engine.symbols)
        assert findings, f"Predator must detect the {name} instance"


class TestAllocatorAblation:
    """The Hoard-style heap prevents inter-object false sharing that the
    naive bump allocator creates (Section 2.2)."""

    @staticmethod
    def _program(api):
        # Each thread allocates its own tiny object, then hammers it.
        def worker(api):
            mine = yield from api.malloc(8, callsite="tiny.c:1")
            yield from api.loop(mine, 0, 1, read=True, write=True,
                                work=2, repeat=400)
        tids = []
        for _ in range(4):
            tids.append((yield from api.spawn(worker)))
        yield from api.join_all(tids)

    def test_bump_allocator_creates_inter_object_fs(self):
        config = MachineConfig()
        engine = Engine(config=config,
                        machine=Machine(config, jitter_seed=1),
                        allocator=BumpAllocator(line_size=64))
        result = engine.run(self._program)
        assert result.machine.directory.total_invalidations() > 100

    def test_cheetah_allocator_prevents_it(self):
        result = run_plain(self._program)
        assert result.machine.directory.total_invalidations() == 0

    def test_runtime_gap_between_allocators(self):
        config = MachineConfig()
        bump_engine = Engine(config=config,
                             machine=Machine(config, jitter_seed=1),
                             allocator=BumpAllocator(line_size=64))
        bump_rt = bump_engine.run(self._program).runtime
        hoard_rt = run_plain(self._program).runtime
        assert bump_rt > hoard_rt * 1.5


class TestOverheadEconomics:
    def test_cheetah_overhead_far_below_predator(self):
        cls = get_workload("histogram")
        wl_args = dict(num_threads=16, scale=0.4)
        native = run_workload(cls(**wl_args), jitter_seed=2).runtime
        cheetah = run_workload(cls(**wl_args), jitter_seed=2,
                               with_cheetah=True).runtime
        predator = PredatorDetector()
        instrumented = run_workload(cls(**wl_args), jitter_seed=2,
                                    observer=predator).runtime
        cheetah_overhead = cheetah / native
        predator_overhead = instrumented / native
        assert cheetah_overhead < 1.25
        assert predator_overhead > 3.0


class TestCacheLineSizeSensitivity:
    def test_streamcluster_fs_disappears_on_32_byte_lines(self):
        # On a machine whose lines really are 32 bytes, the authors'
        # padding is correct and there is no false sharing.
        cls = get_workload("streamcluster")
        cfg64 = MachineConfig(cache_line_size=64)
        cfg32 = MachineConfig(cache_line_size=32)
        out64 = run_workload(cls(num_threads=8, scale=0.3),
                             machine_config=cfg64, jitter_seed=1)
        out32 = run_workload(cls(num_threads=8, scale=0.3),
                             machine_config=cfg32, jitter_seed=1)
        def slot_invalidations(out):
            alloc = out.result.allocator
            total = 0
            shift = out.result.machine.config.line_shift
            for line, count in (out.result.machine.directory
                                .lines_with_invalidations(1).items()):
                info = alloc.find(line << shift)
                if info is not None and "streamcluster" in info.callsite:
                    total += count
            return total
        assert slot_invalidations(out64) > 100
        assert slot_invalidations(out32) < 20
