"""Crash-safety and maintenance behavior of the on-disk result store."""

import json

import pytest

from repro.errors import ServiceError
from repro.run import RunOutcome, run_workload
from repro.service import ResultStore, RunSpec
from repro.workloads.micro import ArrayIncrement

SPEC = RunSpec(workload="array_increment", threads=2, scale=0.1,
               jitter_seed=7)


@pytest.fixture(scope="module")
def outcome():
    return run_workload(ArrayIncrement(num_threads=2, scale=0.1),
                        jitter_seed=7)


class TestRoundTrip:
    def test_get_on_empty_store_is_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.get(SPEC.key()) is None
        assert store.stats()["misses"] == 1

    def test_put_then_get(self, tmp_path, outcome):
        store = ResultStore(tmp_path)
        key = SPEC.key()
        store.put(key, outcome)
        cached = store.get(key)
        assert isinstance(cached, RunOutcome)
        assert cached.runtime == outcome.runtime
        assert cached.from_cache
        stats = store.stats()
        assert stats["entries"] == 1 and stats["hits"] == 1

    def test_get_survives_across_store_instances(self, tmp_path, outcome):
        key = SPEC.key()
        ResultStore(tmp_path).put(key, outcome)
        again = ResultStore(tmp_path)
        assert again.get(key).runtime == outcome.runtime

    def test_bad_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ServiceError, match="64-char"):
            store.get("../../etc/passwd")


class TestCrashSafety:
    def test_crash_before_rename_exposes_no_entry(self, tmp_path, outcome):
        """A worker dying between tmp write and rename leaves no entry."""
        def die(key, tmp_file):
            raise RuntimeError("killed mid-commit")

        store = ResultStore(tmp_path, write_hook=die)
        key = SPEC.key()
        with pytest.raises(RuntimeError):
            store.put(key, outcome)
        clean = ResultStore(tmp_path)
        assert clean.get(key) is None
        assert clean.stats()["entries"] == 0

    def test_gc_quarantines_tmp_leftover(self, tmp_path, outcome):
        def die(key, tmp_file):
            raise RuntimeError("killed mid-commit")

        store = ResultStore(tmp_path, write_hook=die)
        with pytest.raises(RuntimeError):
            store.put(SPEC.key(), outcome)
        result = ResultStore(tmp_path).gc()
        assert result["tmp_quarantined"] == 1
        quarantine = tmp_path / "v1" / "quarantine"
        files = list(quarantine.glob("*.tmp"))
        assert len(files) == 1
        reason = files[0].with_suffix(files[0].suffix + ".reason")
        assert "interrupted write" in reason.read_text()

    def test_corrupt_entry_quarantined_as_miss(self, tmp_path, outcome):
        store = ResultStore(tmp_path)
        key = SPEC.key()
        path = store.put(key, outcome)
        path.write_text("{ truncated", encoding="utf-8")
        assert store.get(key) is None
        assert store.stats()["entries"] == 0
        assert store.stats()["quarantined"] == 1
        assert list((tmp_path / "v1" / "quarantine").glob("*.json"))

    def test_key_mismatch_quarantined(self, tmp_path, outcome):
        store = ResultStore(tmp_path)
        key = SPEC.key()
        path = store.put(key, outcome)
        payload = json.loads(path.read_text())
        payload["key"] = "0" * 64
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(key) is None
        assert store.stats()["quarantined"] == 1

    def test_incompatible_schema_entry_degrades_to_miss(self, tmp_path,
                                                        outcome):
        store = ResultStore(tmp_path)
        key = SPEC.key()
        path = store.put(key, outcome)
        payload = json.loads(path.read_text())
        payload["outcome"]["schema_version"] = 999
        path.write_text(json.dumps(payload), encoding="utf-8")
        assert store.get(key) is None
        assert store.stats()["quarantined"] == 1


class TestMaintenance:
    def test_gc_max_entries_keeps_newest(self, tmp_path, outcome):
        import os
        store = ResultStore(tmp_path)
        keys = []
        for jitter in (1, 2, 3):
            spec = RunSpec(workload="array_increment", threads=2,
                           scale=0.1, jitter_seed=jitter)
            keys.append(spec.key())
            path = store.put(spec.key(), outcome)
            # Deterministic mtime ordering regardless of fs resolution.
            os.utime(path, (jitter, jitter))
        result = store.gc(max_entries=1)
        assert result["evicted"] == 2 and result["remaining"] == 1
        assert store.get(keys[-1]) is not None
        assert store.get(keys[0]) is None

    def test_gc_max_age_evicts_old(self, tmp_path, outcome):
        import os
        store = ResultStore(tmp_path)
        path = store.put(SPEC.key(), outcome)
        os.utime(path, (1, 1))  # epoch-old
        result = store.gc(max_age_seconds=3600)
        assert result["evicted"] == 1
        assert store.stats()["evictions"] == 1

    def test_clear_removes_everything(self, tmp_path, outcome):
        store = ResultStore(tmp_path)
        store.put(SPEC.key(), outcome)
        assert store.clear() == 1
        assert store.stats()["entries"] == 0
