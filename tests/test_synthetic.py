"""Tests sweeping the detector over the synthetic pattern matrix."""

import pytest

from repro import profile
from repro.core.detection import SharingKind
from repro.errors import ConfigError
from repro.run import run_workload
from repro.heap.bump import BumpAllocator
from repro.pmu.sampler import PMUConfig
from repro.sim.engine import Engine
from repro.sim.machine import Machine
from repro.sim.params import MachineConfig
from repro.symbols.table import SymbolTable
from repro.workloads.synthetic import PATTERNS, SyntheticSharing

FAST_PMU = PMUConfig(period=32)


def profile_pattern(pattern, **kwargs):
    wl = SyntheticSharing(pattern=pattern, **kwargs)
    return profile(wl, pmu_config=FAST_PMU)


class TestPatterns:
    def test_unknown_pattern_rejected(self):
        with pytest.raises(ConfigError):
            SyntheticSharing(pattern="weird")

    @pytest.mark.parametrize("pattern", PATTERNS)
    def test_all_patterns_run(self, pattern):
        out = run_workload(SyntheticSharing(pattern=pattern, scale=0.2),
                           jitter_seed=1)
        assert out.runtime > 0

    def test_false_pattern_detected_as_false_sharing(self):
        result, report = profile_pattern("false")
        assert report.significant
        assert report.best().kind is SharingKind.FALSE_SHARING

    def test_true_pattern_not_in_significant(self):
        result, report = profile_pattern("true")
        assert report.significant == []

    def test_read_pattern_produces_no_instances(self):
        result, report = profile_pattern("read")
        assert report.all_instances == []
        assert result.machine.directory.total_invalidations() == 0

    def test_private_pattern_clean(self):
        result, report = profile_pattern("private")
        assert report.significant == []
        assert result.machine.directory.total_invalidations() == 0

    def test_fixed_false_pattern_clean(self):
        result, report = profile_pattern("false", fixed=True)
        assert report.significant == []

    def test_false_pattern_ground_truth_invalidations(self):
        out = run_workload(SyntheticSharing(pattern="false"), jitter_seed=1)
        assert out.result.machine.directory.total_invalidations() > 200


class TestInterObjectPattern:
    def _run(self, allocator):
        wl = SyntheticSharing(pattern="inter_object")
        config = MachineConfig()
        symbols = SymbolTable()
        wl.setup(symbols)
        engine = Engine(config=config,
                        machine=Machine(config, jitter_seed=1),
                        symbols=symbols, allocator=allocator)
        return engine.run(wl.main)

    def test_bump_allocator_exhibits_the_bug(self):
        from repro.heap.allocator import CheetahAllocator
        bump = self._run(BumpAllocator(line_size=64))
        hoard = self._run(CheetahAllocator(line_size=64))
        assert bump.machine.directory.total_invalidations() > 200
        assert hoard.machine.directory.total_invalidations() == 0
        assert bump.runtime > hoard.runtime
